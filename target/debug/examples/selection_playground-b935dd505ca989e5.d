/root/repo/target/debug/examples/selection_playground-b935dd505ca989e5.d: examples/selection_playground.rs Cargo.toml

/root/repo/target/debug/examples/libselection_playground-b935dd505ca989e5.rmeta: examples/selection_playground.rs Cargo.toml

examples/selection_playground.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
