/root/repo/target/debug/examples/conv_encoder-0aa036d685cf97b6.d: examples/conv_encoder.rs

/root/repo/target/debug/examples/conv_encoder-0aa036d685cf97b6: examples/conv_encoder.rs

examples/conv_encoder.rs:
