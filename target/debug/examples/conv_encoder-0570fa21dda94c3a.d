/root/repo/target/debug/examples/conv_encoder-0570fa21dda94c3a.d: examples/conv_encoder.rs Cargo.toml

/root/repo/target/debug/examples/libconv_encoder-0570fa21dda94c3a.rmeta: examples/conv_encoder.rs Cargo.toml

examples/conv_encoder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
