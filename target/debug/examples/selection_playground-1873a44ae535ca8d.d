/root/repo/target/debug/examples/selection_playground-1873a44ae535ca8d.d: examples/selection_playground.rs Cargo.toml

/root/repo/target/debug/examples/libselection_playground-1873a44ae535ca8d.rmeta: examples/selection_playground.rs Cargo.toml

examples/selection_playground.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
