/root/repo/target/debug/examples/quickstart-44651e3cb30621f5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-44651e3cb30621f5: examples/quickstart.rs

examples/quickstart.rs:
