/root/repo/target/debug/examples/data_inspection-1c5532a901ceb8c1.d: examples/data_inspection.rs Cargo.toml

/root/repo/target/debug/examples/libdata_inspection-1c5532a901ceb8c1.rmeta: examples/data_inspection.rs Cargo.toml

examples/data_inspection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
