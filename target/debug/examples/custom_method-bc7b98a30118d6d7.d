/root/repo/target/debug/examples/custom_method-bc7b98a30118d6d7.d: examples/custom_method.rs

/root/repo/target/debug/examples/custom_method-bc7b98a30118d6d7: examples/custom_method.rs

examples/custom_method.rs:
