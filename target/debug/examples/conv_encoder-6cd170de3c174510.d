/root/repo/target/debug/examples/conv_encoder-6cd170de3c174510.d: examples/conv_encoder.rs Cargo.toml

/root/repo/target/debug/examples/libconv_encoder-6cd170de3c174510.rmeta: examples/conv_encoder.rs Cargo.toml

examples/conv_encoder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
