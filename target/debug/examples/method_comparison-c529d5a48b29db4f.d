/root/repo/target/debug/examples/method_comparison-c529d5a48b29db4f.d: examples/method_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libmethod_comparison-c529d5a48b29db4f.rmeta: examples/method_comparison.rs Cargo.toml

examples/method_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
