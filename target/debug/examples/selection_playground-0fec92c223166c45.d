/root/repo/target/debug/examples/selection_playground-0fec92c223166c45.d: examples/selection_playground.rs

/root/repo/target/debug/examples/selection_playground-0fec92c223166c45: examples/selection_playground.rs

examples/selection_playground.rs:
