/root/repo/target/debug/examples/data_inspection-3de7d66a14ead64c.d: examples/data_inspection.rs

/root/repo/target/debug/examples/data_inspection-3de7d66a14ead64c: examples/data_inspection.rs

examples/data_inspection.rs:
