/root/repo/target/debug/examples/tabular_stream-0cd240f3de15575c.d: examples/tabular_stream.rs

/root/repo/target/debug/examples/tabular_stream-0cd240f3de15575c: examples/tabular_stream.rs

examples/tabular_stream.rs:
