/root/repo/target/debug/examples/data_inspection-74d5dc500b874dbd.d: examples/data_inspection.rs

/root/repo/target/debug/examples/data_inspection-74d5dc500b874dbd: examples/data_inspection.rs

examples/data_inspection.rs:
