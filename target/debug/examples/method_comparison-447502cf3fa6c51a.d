/root/repo/target/debug/examples/method_comparison-447502cf3fa6c51a.d: examples/method_comparison.rs

/root/repo/target/debug/examples/method_comparison-447502cf3fa6c51a: examples/method_comparison.rs

examples/method_comparison.rs:
