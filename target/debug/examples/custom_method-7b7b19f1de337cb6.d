/root/repo/target/debug/examples/custom_method-7b7b19f1de337cb6.d: examples/custom_method.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_method-7b7b19f1de337cb6.rmeta: examples/custom_method.rs Cargo.toml

examples/custom_method.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
