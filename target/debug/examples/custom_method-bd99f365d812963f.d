/root/repo/target/debug/examples/custom_method-bd99f365d812963f.d: examples/custom_method.rs

/root/repo/target/debug/examples/custom_method-bd99f365d812963f: examples/custom_method.rs

examples/custom_method.rs:
