/root/repo/target/debug/examples/method_comparison-6c5905f46dd81b4e.d: examples/method_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libmethod_comparison-6c5905f46dd81b4e.rmeta: examples/method_comparison.rs Cargo.toml

examples/method_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
