/root/repo/target/debug/examples/checkpointing-4864b9eda668cb0d.d: examples/checkpointing.rs

/root/repo/target/debug/examples/checkpointing-4864b9eda668cb0d: examples/checkpointing.rs

examples/checkpointing.rs:
