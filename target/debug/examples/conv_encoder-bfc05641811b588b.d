/root/repo/target/debug/examples/conv_encoder-bfc05641811b588b.d: examples/conv_encoder.rs

/root/repo/target/debug/examples/conv_encoder-bfc05641811b588b: examples/conv_encoder.rs

examples/conv_encoder.rs:
