/root/repo/target/debug/examples/custom_method-14dfc3872fe785b1.d: examples/custom_method.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_method-14dfc3872fe785b1.rmeta: examples/custom_method.rs Cargo.toml

examples/custom_method.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
