/root/repo/target/debug/examples/method_comparison-bf1f77aa4ba028db.d: examples/method_comparison.rs

/root/repo/target/debug/examples/method_comparison-bf1f77aa4ba028db: examples/method_comparison.rs

examples/method_comparison.rs:
