/root/repo/target/debug/examples/tabular_stream-66e3badc624c505f.d: examples/tabular_stream.rs

/root/repo/target/debug/examples/tabular_stream-66e3badc624c505f: examples/tabular_stream.rs

examples/tabular_stream.rs:
