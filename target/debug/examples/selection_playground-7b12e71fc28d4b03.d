/root/repo/target/debug/examples/selection_playground-7b12e71fc28d4b03.d: examples/selection_playground.rs

/root/repo/target/debug/examples/selection_playground-7b12e71fc28d4b03: examples/selection_playground.rs

examples/selection_playground.rs:
