/root/repo/target/debug/examples/checkpointing-f78fa0c2bff7ed45.d: examples/checkpointing.rs Cargo.toml

/root/repo/target/debug/examples/libcheckpointing-f78fa0c2bff7ed45.rmeta: examples/checkpointing.rs Cargo.toml

examples/checkpointing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
