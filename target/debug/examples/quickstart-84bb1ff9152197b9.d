/root/repo/target/debug/examples/quickstart-84bb1ff9152197b9.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-84bb1ff9152197b9: examples/quickstart.rs

examples/quickstart.rs:
