/root/repo/target/debug/examples/tabular_stream-96df975fd405201b.d: examples/tabular_stream.rs Cargo.toml

/root/repo/target/debug/examples/libtabular_stream-96df975fd405201b.rmeta: examples/tabular_stream.rs Cargo.toml

examples/tabular_stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
