/root/repo/target/debug/examples/checkpointing-35e89a9ba0aaf45f.d: examples/checkpointing.rs

/root/repo/target/debug/examples/checkpointing-35e89a9ba0aaf45f: examples/checkpointing.rs

examples/checkpointing.rs:
