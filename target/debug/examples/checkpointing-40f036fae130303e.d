/root/repo/target/debug/examples/checkpointing-40f036fae130303e.d: examples/checkpointing.rs Cargo.toml

/root/repo/target/debug/examples/libcheckpointing-40f036fae130303e.rmeta: examples/checkpointing.rs Cargo.toml

examples/checkpointing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
