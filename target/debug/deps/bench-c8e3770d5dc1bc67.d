/root/repo/target/debug/deps/bench-c8e3770d5dc1bc67.d: crates/bench/src/bin/bench.rs

/root/repo/target/debug/deps/bench-c8e3770d5dc1bc67: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:
