/root/repo/target/debug/deps/table6-db3536b2e6b9a7fd.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-db3536b2e6b9a7fd: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
