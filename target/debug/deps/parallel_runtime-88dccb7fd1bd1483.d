/root/repo/target/debug/deps/parallel_runtime-88dccb7fd1bd1483.d: tests/parallel_runtime.rs

/root/repo/target/debug/deps/parallel_runtime-88dccb7fd1bd1483: tests/parallel_runtime.rs

tests/parallel_runtime.rs:
