/root/repo/target/debug/deps/fig6-3f92b9c0e86c2086.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-3f92b9c0e86c2086: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
