/root/repo/target/debug/deps/fig9-dac68dbe7f60f406.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-dac68dbe7f60f406: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
