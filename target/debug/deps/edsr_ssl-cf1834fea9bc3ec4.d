/root/repo/target/debug/deps/edsr_ssl-cf1834fea9bc3ec4.d: crates/ssl/src/lib.rs crates/ssl/src/distill.rs crates/ssl/src/encoder.rs crates/ssl/src/losses.rs

/root/repo/target/debug/deps/libedsr_ssl-cf1834fea9bc3ec4.rlib: crates/ssl/src/lib.rs crates/ssl/src/distill.rs crates/ssl/src/encoder.rs crates/ssl/src/losses.rs

/root/repo/target/debug/deps/libedsr_ssl-cf1834fea9bc3ec4.rmeta: crates/ssl/src/lib.rs crates/ssl/src/distill.rs crates/ssl/src/encoder.rs crates/ssl/src/losses.rs

crates/ssl/src/lib.rs:
crates/ssl/src/distill.rs:
crates/ssl/src/encoder.rs:
crates/ssl/src/losses.rs:
