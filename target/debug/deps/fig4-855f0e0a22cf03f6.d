/root/repo/target/debug/deps/fig4-855f0e0a22cf03f6.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-855f0e0a22cf03f6: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
