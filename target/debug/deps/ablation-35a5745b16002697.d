/root/repo/target/debug/deps/ablation-35a5745b16002697.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-35a5745b16002697: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
