/root/repo/target/debug/deps/bench-9b962d282ac3e1a8.d: crates/bench/src/bin/bench.rs

/root/repo/target/debug/deps/bench-9b962d282ac3e1a8: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:
