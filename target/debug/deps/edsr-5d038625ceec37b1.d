/root/repo/target/debug/deps/edsr-5d038625ceec37b1.d: src/bin/edsr.rs

/root/repo/target/debug/deps/edsr-5d038625ceec37b1: src/bin/edsr.rs

src/bin/edsr.rs:
