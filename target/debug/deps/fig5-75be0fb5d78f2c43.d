/root/repo/target/debug/deps/fig5-75be0fb5d78f2c43.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-75be0fb5d78f2c43.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
