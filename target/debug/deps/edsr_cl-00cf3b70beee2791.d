/root/repo/target/debug/deps/edsr_cl-00cf3b70beee2791.d: crates/cl/src/lib.rs crates/cl/src/checkpoint.rs crates/cl/src/error.rs crates/cl/src/eval.rs crates/cl/src/fault.rs crates/cl/src/guard.rs crates/cl/src/memory.rs crates/cl/src/methods/mod.rs crates/cl/src/methods/cassle.rs crates/cl/src/methods/der.rs crates/cl/src/methods/finetune.rs crates/cl/src/methods/lin_replay.rs crates/cl/src/methods/lump.rs crates/cl/src/methods/si.rs crates/cl/src/metrics.rs crates/cl/src/model.rs crates/cl/src/trainer.rs crates/cl/src/fault_tests.rs crates/cl/src/trainer_tests.rs

/root/repo/target/debug/deps/edsr_cl-00cf3b70beee2791: crates/cl/src/lib.rs crates/cl/src/checkpoint.rs crates/cl/src/error.rs crates/cl/src/eval.rs crates/cl/src/fault.rs crates/cl/src/guard.rs crates/cl/src/memory.rs crates/cl/src/methods/mod.rs crates/cl/src/methods/cassle.rs crates/cl/src/methods/der.rs crates/cl/src/methods/finetune.rs crates/cl/src/methods/lin_replay.rs crates/cl/src/methods/lump.rs crates/cl/src/methods/si.rs crates/cl/src/metrics.rs crates/cl/src/model.rs crates/cl/src/trainer.rs crates/cl/src/fault_tests.rs crates/cl/src/trainer_tests.rs

crates/cl/src/lib.rs:
crates/cl/src/checkpoint.rs:
crates/cl/src/error.rs:
crates/cl/src/eval.rs:
crates/cl/src/fault.rs:
crates/cl/src/guard.rs:
crates/cl/src/memory.rs:
crates/cl/src/methods/mod.rs:
crates/cl/src/methods/cassle.rs:
crates/cl/src/methods/der.rs:
crates/cl/src/methods/finetune.rs:
crates/cl/src/methods/lin_replay.rs:
crates/cl/src/methods/lump.rs:
crates/cl/src/methods/si.rs:
crates/cl/src/metrics.rs:
crates/cl/src/model.rs:
crates/cl/src/trainer.rs:
crates/cl/src/fault_tests.rs:
crates/cl/src/trainer_tests.rs:
