/root/repo/target/debug/deps/proptest-34e770c81af0af6e.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-34e770c81af0af6e.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
