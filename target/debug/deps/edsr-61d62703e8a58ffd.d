/root/repo/target/debug/deps/edsr-61d62703e8a58ffd.d: src/bin/edsr.rs

/root/repo/target/debug/deps/edsr-61d62703e8a58ffd: src/bin/edsr.rs

src/bin/edsr.rs:
