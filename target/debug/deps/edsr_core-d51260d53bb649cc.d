/root/repo/target/debug/deps/edsr_core-d51260d53bb649cc.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs Cargo.toml

/root/repo/target/debug/deps/libedsr_core-d51260d53bb649cc.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/method.rs:
crates/core/src/noise.rs:
crates/core/src/select.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
