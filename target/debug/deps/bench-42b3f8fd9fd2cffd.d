/root/repo/target/debug/deps/bench-42b3f8fd9fd2cffd.d: crates/bench/src/bin/bench.rs Cargo.toml

/root/repo/target/debug/deps/libbench-42b3f8fd9fd2cffd.rmeta: crates/bench/src/bin/bench.rs Cargo.toml

crates/bench/src/bin/bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
