/root/repo/target/debug/deps/edsr_bench-5e29f77764480f5b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libedsr_bench-5e29f77764480f5b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
