/root/repo/target/debug/deps/edsr_bench-0b7cfdb185af8c15.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libedsr_bench-0b7cfdb185af8c15.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libedsr_bench-0b7cfdb185af8c15.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
