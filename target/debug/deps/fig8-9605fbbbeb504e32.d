/root/repo/target/debug/deps/fig8-9605fbbbeb504e32.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-9605fbbbeb504e32: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
