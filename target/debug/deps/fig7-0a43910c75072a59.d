/root/repo/target/debug/deps/fig7-0a43910c75072a59.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-0a43910c75072a59: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
