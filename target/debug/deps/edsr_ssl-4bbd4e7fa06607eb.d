/root/repo/target/debug/deps/edsr_ssl-4bbd4e7fa06607eb.d: crates/ssl/src/lib.rs crates/ssl/src/distill.rs crates/ssl/src/encoder.rs crates/ssl/src/losses.rs

/root/repo/target/debug/deps/edsr_ssl-4bbd4e7fa06607eb: crates/ssl/src/lib.rs crates/ssl/src/distill.rs crates/ssl/src/encoder.rs crates/ssl/src/losses.rs

crates/ssl/src/lib.rs:
crates/ssl/src/distill.rs:
crates/ssl/src/encoder.rs:
crates/ssl/src/losses.rs:
