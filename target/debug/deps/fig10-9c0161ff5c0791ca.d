/root/repo/target/debug/deps/fig10-9c0161ff5c0791ca.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-9c0161ff5c0791ca: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
