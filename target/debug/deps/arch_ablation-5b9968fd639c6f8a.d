/root/repo/target/debug/deps/arch_ablation-5b9968fd639c6f8a.d: crates/bench/src/bin/arch_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libarch_ablation-5b9968fd639c6f8a.rmeta: crates/bench/src/bin/arch_ablation.rs Cargo.toml

crates/bench/src/bin/arch_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
