/root/repo/target/debug/deps/fig10-2195cecae57a1fa5.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-2195cecae57a1fa5: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
