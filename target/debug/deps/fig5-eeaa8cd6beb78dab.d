/root/repo/target/debug/deps/fig5-eeaa8cd6beb78dab.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-eeaa8cd6beb78dab: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
