/root/repo/target/debug/deps/table5-dbaf51b04d2cef12.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-dbaf51b04d2cef12: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
