/root/repo/target/debug/deps/edsr-7396804dd5e80eed.d: src/lib.rs

/root/repo/target/debug/deps/edsr-7396804dd5e80eed: src/lib.rs

src/lib.rs:
