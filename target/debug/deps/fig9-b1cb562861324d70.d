/root/repo/target/debug/deps/fig9-b1cb562861324d70.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-b1cb562861324d70: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
