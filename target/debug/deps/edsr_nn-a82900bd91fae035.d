/root/repo/target/debug/deps/edsr_nn-a82900bd91fae035.d: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/io.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

/root/repo/target/debug/deps/edsr_nn-a82900bd91fae035: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/io.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

crates/nn/src/lib.rs:
crates/nn/src/conv.rs:
crates/nn/src/io.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/params.rs:
