/root/repo/target/debug/deps/edsr-0379c52829454c2f.d: src/lib.rs

/root/repo/target/debug/deps/edsr-0379c52829454c2f: src/lib.rs

src/lib.rs:
