/root/repo/target/debug/deps/edsr_core-43ed03351357fdb3.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs

/root/repo/target/debug/deps/libedsr_core-43ed03351357fdb3.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs

/root/repo/target/debug/deps/libedsr_core-43ed03351357fdb3.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/method.rs:
crates/core/src/noise.rs:
crates/core/src/select.rs:
