/root/repo/target/debug/deps/table7-9fc9205149ec6daa.d: crates/bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-9fc9205149ec6daa: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
