/root/repo/target/debug/deps/ablation-4b8428db9f121b98.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-4b8428db9f121b98: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
