/root/repo/target/debug/deps/fig5-b6046e3d70579406.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-b6046e3d70579406: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
