/root/repo/target/debug/deps/edsr-f09141285d3079a5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libedsr-f09141285d3079a5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
