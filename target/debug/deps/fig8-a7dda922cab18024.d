/root/repo/target/debug/deps/fig8-a7dda922cab18024.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-a7dda922cab18024: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
