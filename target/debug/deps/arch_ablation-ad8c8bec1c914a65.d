/root/repo/target/debug/deps/arch_ablation-ad8c8bec1c914a65.d: crates/bench/src/bin/arch_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libarch_ablation-ad8c8bec1c914a65.rmeta: crates/bench/src/bin/arch_ablation.rs Cargo.toml

crates/bench/src/bin/arch_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
