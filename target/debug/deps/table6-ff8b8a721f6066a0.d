/root/repo/target/debug/deps/table6-ff8b8a721f6066a0.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-ff8b8a721f6066a0: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
