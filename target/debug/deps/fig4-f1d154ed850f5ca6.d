/root/repo/target/debug/deps/fig4-f1d154ed850f5ca6.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-f1d154ed850f5ca6: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
