/root/repo/target/debug/deps/edsr-7661278af2eb7348.d: src/bin/edsr.rs

/root/repo/target/debug/deps/edsr-7661278af2eb7348: src/bin/edsr.rs

src/bin/edsr.rs:
