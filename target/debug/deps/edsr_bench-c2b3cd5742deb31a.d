/root/repo/target/debug/deps/edsr_bench-c2b3cd5742deb31a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libedsr_bench-c2b3cd5742deb31a.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libedsr_bench-c2b3cd5742deb31a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
