/root/repo/target/debug/deps/table3-06ad5d47dea1a27b.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-06ad5d47dea1a27b: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
