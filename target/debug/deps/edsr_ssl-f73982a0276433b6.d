/root/repo/target/debug/deps/edsr_ssl-f73982a0276433b6.d: crates/ssl/src/lib.rs crates/ssl/src/distill.rs crates/ssl/src/encoder.rs crates/ssl/src/losses.rs Cargo.toml

/root/repo/target/debug/deps/libedsr_ssl-f73982a0276433b6.rmeta: crates/ssl/src/lib.rs crates/ssl/src/distill.rs crates/ssl/src/encoder.rs crates/ssl/src/losses.rs Cargo.toml

crates/ssl/src/lib.rs:
crates/ssl/src/distill.rs:
crates/ssl/src/encoder.rs:
crates/ssl/src/losses.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
