/root/repo/target/debug/deps/exp_all-c5955d3aa7232dfb.d: crates/bench/src/bin/exp_all.rs

/root/repo/target/debug/deps/exp_all-c5955d3aa7232dfb: crates/bench/src/bin/exp_all.rs

crates/bench/src/bin/exp_all.rs:
