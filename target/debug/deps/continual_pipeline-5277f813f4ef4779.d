/root/repo/target/debug/deps/continual_pipeline-5277f813f4ef4779.d: tests/continual_pipeline.rs

/root/repo/target/debug/deps/continual_pipeline-5277f813f4ef4779: tests/continual_pipeline.rs

tests/continual_pipeline.rs:
