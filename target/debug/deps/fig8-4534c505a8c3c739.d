/root/repo/target/debug/deps/fig8-4534c505a8c3c739.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-4534c505a8c3c739: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
