/root/repo/target/debug/deps/edsr_bench-5b79372a7be2eec0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/edsr_bench-5b79372a7be2eec0: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
