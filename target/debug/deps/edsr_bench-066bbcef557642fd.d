/root/repo/target/debug/deps/edsr_bench-066bbcef557642fd.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/edsr_bench-066bbcef557642fd: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
