/root/repo/target/debug/deps/edsr_bench-4941f8366f729304.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libedsr_bench-4941f8366f729304.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
