/root/repo/target/debug/deps/edsr_linalg-19c9a290ab736f1e.d: crates/linalg/src/lib.rs crates/linalg/src/eigen.rs crates/linalg/src/kmeans.rs crates/linalg/src/knn.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libedsr_linalg-19c9a290ab736f1e.rmeta: crates/linalg/src/lib.rs crates/linalg/src/eigen.rs crates/linalg/src/kmeans.rs crates/linalg/src/knn.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/kmeans.rs:
crates/linalg/src/knn.rs:
crates/linalg/src/pca.rs:
crates/linalg/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
