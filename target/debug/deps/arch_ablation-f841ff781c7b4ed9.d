/root/repo/target/debug/deps/arch_ablation-f841ff781c7b4ed9.d: crates/bench/src/bin/arch_ablation.rs

/root/repo/target/debug/deps/arch_ablation-f841ff781c7b4ed9: crates/bench/src/bin/arch_ablation.rs

crates/bench/src/bin/arch_ablation.rs:
