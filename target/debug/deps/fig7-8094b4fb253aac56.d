/root/repo/target/debug/deps/fig7-8094b4fb253aac56.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-8094b4fb253aac56: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
