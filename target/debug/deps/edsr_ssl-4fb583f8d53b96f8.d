/root/repo/target/debug/deps/edsr_ssl-4fb583f8d53b96f8.d: crates/ssl/src/lib.rs crates/ssl/src/distill.rs crates/ssl/src/encoder.rs crates/ssl/src/losses.rs

/root/repo/target/debug/deps/libedsr_ssl-4fb583f8d53b96f8.rlib: crates/ssl/src/lib.rs crates/ssl/src/distill.rs crates/ssl/src/encoder.rs crates/ssl/src/losses.rs

/root/repo/target/debug/deps/libedsr_ssl-4fb583f8d53b96f8.rmeta: crates/ssl/src/lib.rs crates/ssl/src/distill.rs crates/ssl/src/encoder.rs crates/ssl/src/losses.rs

crates/ssl/src/lib.rs:
crates/ssl/src/distill.rs:
crates/ssl/src/encoder.rs:
crates/ssl/src/losses.rs:
