/root/repo/target/debug/deps/table5-43dc00c8bd7c6366.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-43dc00c8bd7c6366: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
