/root/repo/target/debug/deps/fig5-b7146942004d370f.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-b7146942004d370f: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
