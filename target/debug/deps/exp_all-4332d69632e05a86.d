/root/repo/target/debug/deps/exp_all-4332d69632e05a86.d: crates/bench/src/bin/exp_all.rs

/root/repo/target/debug/deps/exp_all-4332d69632e05a86: crates/bench/src/bin/exp_all.rs

crates/bench/src/bin/exp_all.rs:
