/root/repo/target/debug/deps/table4-0cf0b6074f897ae8.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-0cf0b6074f897ae8: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
