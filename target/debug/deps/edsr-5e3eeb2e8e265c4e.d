/root/repo/target/debug/deps/edsr-5e3eeb2e8e265c4e.d: src/lib.rs

/root/repo/target/debug/deps/libedsr-5e3eeb2e8e265c4e.rlib: src/lib.rs

/root/repo/target/debug/deps/libedsr-5e3eeb2e8e265c4e.rmeta: src/lib.rs

src/lib.rs:
