/root/repo/target/debug/deps/fig9-24ffe97e8c5eb85f.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-24ffe97e8c5eb85f: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
