/root/repo/target/debug/deps/parallel_runtime-f90f40e1f0c31411.d: tests/parallel_runtime.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_runtime-f90f40e1f0c31411.rmeta: tests/parallel_runtime.rs Cargo.toml

tests/parallel_runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
