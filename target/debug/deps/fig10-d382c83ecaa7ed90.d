/root/repo/target/debug/deps/fig10-d382c83ecaa7ed90.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-d382c83ecaa7ed90: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
