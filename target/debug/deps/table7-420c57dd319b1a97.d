/root/repo/target/debug/deps/table7-420c57dd319b1a97.d: crates/bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-420c57dd319b1a97: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
