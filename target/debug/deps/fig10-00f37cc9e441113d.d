/root/repo/target/debug/deps/fig10-00f37cc9e441113d.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-00f37cc9e441113d: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
