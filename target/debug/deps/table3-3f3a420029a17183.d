/root/repo/target/debug/deps/table3-3f3a420029a17183.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-3f3a420029a17183: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
