/root/repo/target/debug/deps/edsr_data-e9b85cd4d541e3e0.d: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batch.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/grid.rs crates/data/src/presets.rs crates/data/src/synth.rs crates/data/src/tabular.rs crates/data/src/tasks.rs Cargo.toml

/root/repo/target/debug/deps/libedsr_data-e9b85cd4d541e3e0.rmeta: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batch.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/grid.rs crates/data/src/presets.rs crates/data/src/synth.rs crates/data/src/tabular.rs crates/data/src/tasks.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/augment.rs:
crates/data/src/batch.rs:
crates/data/src/csv.rs:
crates/data/src/dataset.rs:
crates/data/src/grid.rs:
crates/data/src/presets.rs:
crates/data/src/synth.rs:
crates/data/src/tabular.rs:
crates/data/src/tasks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
