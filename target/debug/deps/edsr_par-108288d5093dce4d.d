/root/repo/target/debug/deps/edsr_par-108288d5093dce4d.d: crates/par/src/lib.rs crates/par/src/pool.rs

/root/repo/target/debug/deps/libedsr_par-108288d5093dce4d.rlib: crates/par/src/lib.rs crates/par/src/pool.rs

/root/repo/target/debug/deps/libedsr_par-108288d5093dce4d.rmeta: crates/par/src/lib.rs crates/par/src/pool.rs

crates/par/src/lib.rs:
crates/par/src/pool.rs:
