/root/repo/target/debug/deps/edsr_nn-842fbd3318350974.d: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/io.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

/root/repo/target/debug/deps/libedsr_nn-842fbd3318350974.rlib: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/io.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

/root/repo/target/debug/deps/libedsr_nn-842fbd3318350974.rmeta: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/io.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

crates/nn/src/lib.rs:
crates/nn/src/conv.rs:
crates/nn/src/io.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/params.rs:
