/root/repo/target/debug/deps/edsr_nn-6c1e1ea58d1ca5ec.d: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/io.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

/root/repo/target/debug/deps/libedsr_nn-6c1e1ea58d1ca5ec.rlib: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/io.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

/root/repo/target/debug/deps/libedsr_nn-6c1e1ea58d1ca5ec.rmeta: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/io.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

crates/nn/src/lib.rs:
crates/nn/src/conv.rs:
crates/nn/src/io.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/params.rs:
