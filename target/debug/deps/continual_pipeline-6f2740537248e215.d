/root/repo/target/debug/deps/continual_pipeline-6f2740537248e215.d: tests/continual_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libcontinual_pipeline-6f2740537248e215.rmeta: tests/continual_pipeline.rs Cargo.toml

tests/continual_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
