/root/repo/target/debug/deps/arch_ablation-71d573a6b240af51.d: crates/bench/src/bin/arch_ablation.rs

/root/repo/target/debug/deps/arch_ablation-71d573a6b240af51: crates/bench/src/bin/arch_ablation.rs

crates/bench/src/bin/arch_ablation.rs:
