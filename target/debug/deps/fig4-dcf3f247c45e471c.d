/root/repo/target/debug/deps/fig4-dcf3f247c45e471c.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-dcf3f247c45e471c: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
