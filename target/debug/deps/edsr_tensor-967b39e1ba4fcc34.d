/root/repo/target/debug/deps/edsr_tensor-967b39e1ba4fcc34.d: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/matrix.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs Cargo.toml

/root/repo/target/debug/deps/libedsr_tensor-967b39e1ba4fcc34.rmeta: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/matrix.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/tape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
