/root/repo/target/debug/deps/edsr-fac9a1ebdb520cfc.d: src/bin/edsr.rs

/root/repo/target/debug/deps/edsr-fac9a1ebdb520cfc: src/bin/edsr.rs

src/bin/edsr.rs:
