/root/repo/target/debug/deps/edsr_par-27ca5688a483bdd9.d: crates/par/src/lib.rs crates/par/src/pool.rs Cargo.toml

/root/repo/target/debug/deps/libedsr_par-27ca5688a483bdd9.rmeta: crates/par/src/lib.rs crates/par/src/pool.rs Cargo.toml

crates/par/src/lib.rs:
crates/par/src/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
