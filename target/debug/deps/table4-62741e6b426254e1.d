/root/repo/target/debug/deps/table4-62741e6b426254e1.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-62741e6b426254e1: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
