/root/repo/target/debug/deps/edsr_tensor-3f5a76ce2d1d17df.d: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/matrix.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

/root/repo/target/debug/deps/libedsr_tensor-3f5a76ce2d1d17df.rlib: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/matrix.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

/root/repo/target/debug/deps/libedsr_tensor-3f5a76ce2d1d17df.rmeta: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/matrix.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

crates/tensor/src/lib.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/tape.rs:
