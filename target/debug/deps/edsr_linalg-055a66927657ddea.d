/root/repo/target/debug/deps/edsr_linalg-055a66927657ddea.d: crates/linalg/src/lib.rs crates/linalg/src/eigen.rs crates/linalg/src/kmeans.rs crates/linalg/src/knn.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libedsr_linalg-055a66927657ddea.rmeta: crates/linalg/src/lib.rs crates/linalg/src/eigen.rs crates/linalg/src/kmeans.rs crates/linalg/src/knn.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/kmeans.rs:
crates/linalg/src/knn.rs:
crates/linalg/src/pca.rs:
crates/linalg/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
