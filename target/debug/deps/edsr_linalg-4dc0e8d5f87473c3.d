/root/repo/target/debug/deps/edsr_linalg-4dc0e8d5f87473c3.d: crates/linalg/src/lib.rs crates/linalg/src/eigen.rs crates/linalg/src/kmeans.rs crates/linalg/src/knn.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/libedsr_linalg-4dc0e8d5f87473c3.rlib: crates/linalg/src/lib.rs crates/linalg/src/eigen.rs crates/linalg/src/kmeans.rs crates/linalg/src/knn.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/libedsr_linalg-4dc0e8d5f87473c3.rmeta: crates/linalg/src/lib.rs crates/linalg/src/eigen.rs crates/linalg/src/kmeans.rs crates/linalg/src/knn.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/kmeans.rs:
crates/linalg/src/knn.rs:
crates/linalg/src/pca.rs:
crates/linalg/src/stats.rs:
