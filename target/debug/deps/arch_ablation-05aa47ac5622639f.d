/root/repo/target/debug/deps/arch_ablation-05aa47ac5622639f.d: crates/bench/src/bin/arch_ablation.rs

/root/repo/target/debug/deps/arch_ablation-05aa47ac5622639f: crates/bench/src/bin/arch_ablation.rs

crates/bench/src/bin/arch_ablation.rs:
