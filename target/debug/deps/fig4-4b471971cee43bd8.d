/root/repo/target/debug/deps/fig4-4b471971cee43bd8.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-4b471971cee43bd8: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
