/root/repo/target/debug/deps/table5-11e232b5c42327a1.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-11e232b5c42327a1: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
