/root/repo/target/debug/deps/fig6-54c06514d4e11538.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-54c06514d4e11538: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
