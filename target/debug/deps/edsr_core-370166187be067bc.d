/root/repo/target/debug/deps/edsr_core-370166187be067bc.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs

/root/repo/target/debug/deps/libedsr_core-370166187be067bc.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs

/root/repo/target/debug/deps/libedsr_core-370166187be067bc.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/method.rs:
crates/core/src/noise.rs:
crates/core/src/select.rs:
