/root/repo/target/debug/deps/edsr_tensor-c614ad28d725ad8a.d: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/matrix.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

/root/repo/target/debug/deps/edsr_tensor-c614ad28d725ad8a: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/matrix.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

crates/tensor/src/lib.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/tape.rs:
