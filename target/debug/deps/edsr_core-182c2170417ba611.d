/root/repo/target/debug/deps/edsr_core-182c2170417ba611.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs Cargo.toml

/root/repo/target/debug/deps/libedsr_core-182c2170417ba611.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/method.rs:
crates/core/src/noise.rs:
crates/core/src/select.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
