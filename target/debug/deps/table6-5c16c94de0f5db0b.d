/root/repo/target/debug/deps/table6-5c16c94de0f5db0b.d: crates/bench/src/bin/table6.rs Cargo.toml

/root/repo/target/debug/deps/libtable6-5c16c94de0f5db0b.rmeta: crates/bench/src/bin/table6.rs Cargo.toml

crates/bench/src/bin/table6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
