/root/repo/target/debug/deps/fig6-b33fdb63e7feb4f6.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-b33fdb63e7feb4f6: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
