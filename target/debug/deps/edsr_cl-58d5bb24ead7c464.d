/root/repo/target/debug/deps/edsr_cl-58d5bb24ead7c464.d: crates/cl/src/lib.rs crates/cl/src/checkpoint.rs crates/cl/src/error.rs crates/cl/src/eval.rs crates/cl/src/fault.rs crates/cl/src/guard.rs crates/cl/src/memory.rs crates/cl/src/methods/mod.rs crates/cl/src/methods/cassle.rs crates/cl/src/methods/der.rs crates/cl/src/methods/finetune.rs crates/cl/src/methods/lin_replay.rs crates/cl/src/methods/lump.rs crates/cl/src/methods/si.rs crates/cl/src/metrics.rs crates/cl/src/model.rs crates/cl/src/trainer.rs crates/cl/src/fault_tests.rs crates/cl/src/trainer_tests.rs Cargo.toml

/root/repo/target/debug/deps/libedsr_cl-58d5bb24ead7c464.rmeta: crates/cl/src/lib.rs crates/cl/src/checkpoint.rs crates/cl/src/error.rs crates/cl/src/eval.rs crates/cl/src/fault.rs crates/cl/src/guard.rs crates/cl/src/memory.rs crates/cl/src/methods/mod.rs crates/cl/src/methods/cassle.rs crates/cl/src/methods/der.rs crates/cl/src/methods/finetune.rs crates/cl/src/methods/lin_replay.rs crates/cl/src/methods/lump.rs crates/cl/src/methods/si.rs crates/cl/src/metrics.rs crates/cl/src/model.rs crates/cl/src/trainer.rs crates/cl/src/fault_tests.rs crates/cl/src/trainer_tests.rs Cargo.toml

crates/cl/src/lib.rs:
crates/cl/src/checkpoint.rs:
crates/cl/src/error.rs:
crates/cl/src/eval.rs:
crates/cl/src/fault.rs:
crates/cl/src/guard.rs:
crates/cl/src/memory.rs:
crates/cl/src/methods/mod.rs:
crates/cl/src/methods/cassle.rs:
crates/cl/src/methods/der.rs:
crates/cl/src/methods/finetune.rs:
crates/cl/src/methods/lin_replay.rs:
crates/cl/src/methods/lump.rs:
crates/cl/src/methods/si.rs:
crates/cl/src/metrics.rs:
crates/cl/src/model.rs:
crates/cl/src/trainer.rs:
crates/cl/src/fault_tests.rs:
crates/cl/src/trainer_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
