/root/repo/target/debug/deps/edsr_core-3a079bb298c38274.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs crates/core/src/proptests.rs

/root/repo/target/debug/deps/edsr_core-3a079bb298c38274: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs crates/core/src/proptests.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/method.rs:
crates/core/src/noise.rs:
crates/core/src/select.rs:
crates/core/src/proptests.rs:
