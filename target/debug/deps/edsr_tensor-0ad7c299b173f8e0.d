/root/repo/target/debug/deps/edsr_tensor-0ad7c299b173f8e0.d: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/matrix.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

/root/repo/target/debug/deps/libedsr_tensor-0ad7c299b173f8e0.rlib: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/matrix.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

/root/repo/target/debug/deps/libedsr_tensor-0ad7c299b173f8e0.rmeta: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/matrix.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

crates/tensor/src/lib.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/tape.rs:
