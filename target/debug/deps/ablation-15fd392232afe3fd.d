/root/repo/target/debug/deps/ablation-15fd392232afe3fd.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-15fd392232afe3fd: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
