/root/repo/target/debug/deps/table7-8958d71dbc3767f2.d: crates/bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-8958d71dbc3767f2: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
