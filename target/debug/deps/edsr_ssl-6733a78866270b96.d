/root/repo/target/debug/deps/edsr_ssl-6733a78866270b96.d: crates/ssl/src/lib.rs crates/ssl/src/distill.rs crates/ssl/src/encoder.rs crates/ssl/src/losses.rs

/root/repo/target/debug/deps/edsr_ssl-6733a78866270b96: crates/ssl/src/lib.rs crates/ssl/src/distill.rs crates/ssl/src/encoder.rs crates/ssl/src/losses.rs

crates/ssl/src/lib.rs:
crates/ssl/src/distill.rs:
crates/ssl/src/encoder.rs:
crates/ssl/src/losses.rs:
