/root/repo/target/debug/deps/edsr_linalg-bc7410b75c60a439.d: crates/linalg/src/lib.rs crates/linalg/src/eigen.rs crates/linalg/src/kmeans.rs crates/linalg/src/knn.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/edsr_linalg-bc7410b75c60a439: crates/linalg/src/lib.rs crates/linalg/src/eigen.rs crates/linalg/src/kmeans.rs crates/linalg/src/knn.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/kmeans.rs:
crates/linalg/src/knn.rs:
crates/linalg/src/pca.rs:
crates/linalg/src/stats.rs:
