/root/repo/target/debug/deps/edsr_core-104ab3b947f90be7.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs crates/core/src/proptests.rs

/root/repo/target/debug/deps/edsr_core-104ab3b947f90be7: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs crates/core/src/proptests.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/method.rs:
crates/core/src/noise.rs:
crates/core/src/select.rs:
crates/core/src/proptests.rs:
