/root/repo/target/debug/deps/edsr_nn-b35ed04823474923.d: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/io.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

/root/repo/target/debug/deps/edsr_nn-b35ed04823474923: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/io.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

crates/nn/src/lib.rs:
crates/nn/src/conv.rs:
crates/nn/src/io.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/params.rs:
