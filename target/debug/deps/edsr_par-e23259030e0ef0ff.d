/root/repo/target/debug/deps/edsr_par-e23259030e0ef0ff.d: crates/par/src/lib.rs crates/par/src/pool.rs Cargo.toml

/root/repo/target/debug/deps/libedsr_par-e23259030e0ef0ff.rmeta: crates/par/src/lib.rs crates/par/src/pool.rs Cargo.toml

crates/par/src/lib.rs:
crates/par/src/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
