/root/repo/target/debug/deps/table7-52407ed35c9c1851.d: crates/bench/src/bin/table7.rs Cargo.toml

/root/repo/target/debug/deps/libtable7-52407ed35c9c1851.rmeta: crates/bench/src/bin/table7.rs Cargo.toml

crates/bench/src/bin/table7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
