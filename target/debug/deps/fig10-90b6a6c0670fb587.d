/root/repo/target/debug/deps/fig10-90b6a6c0670fb587.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-90b6a6c0670fb587.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
