/root/repo/target/debug/deps/edsr-a6764c0ddfafa627.d: src/bin/edsr.rs Cargo.toml

/root/repo/target/debug/deps/libedsr-a6764c0ddfafa627.rmeta: src/bin/edsr.rs Cargo.toml

src/bin/edsr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
