/root/repo/target/debug/deps/proptest-ded2b3d33a1ec231.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-ded2b3d33a1ec231.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
