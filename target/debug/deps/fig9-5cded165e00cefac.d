/root/repo/target/debug/deps/fig9-5cded165e00cefac.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-5cded165e00cefac: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
