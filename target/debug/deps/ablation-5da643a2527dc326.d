/root/repo/target/debug/deps/ablation-5da643a2527dc326.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-5da643a2527dc326: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
