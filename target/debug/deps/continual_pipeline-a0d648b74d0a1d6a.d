/root/repo/target/debug/deps/continual_pipeline-a0d648b74d0a1d6a.d: tests/continual_pipeline.rs

/root/repo/target/debug/deps/continual_pipeline-a0d648b74d0a1d6a: tests/continual_pipeline.rs

tests/continual_pipeline.rs:
