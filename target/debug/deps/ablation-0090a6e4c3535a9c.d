/root/repo/target/debug/deps/ablation-0090a6e4c3535a9c.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-0090a6e4c3535a9c.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
