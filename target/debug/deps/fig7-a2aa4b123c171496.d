/root/repo/target/debug/deps/fig7-a2aa4b123c171496.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-a2aa4b123c171496: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
