/root/repo/target/debug/deps/edsr-ff2c50f5deb60cc2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libedsr-ff2c50f5deb60cc2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
