/root/repo/target/debug/deps/edsr_nn-946093d48e6fbc18.d: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/io.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs Cargo.toml

/root/repo/target/debug/deps/libedsr_nn-946093d48e6fbc18.rmeta: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/io.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/conv.rs:
crates/nn/src/io.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
