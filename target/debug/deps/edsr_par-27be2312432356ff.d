/root/repo/target/debug/deps/edsr_par-27be2312432356ff.d: crates/par/src/lib.rs crates/par/src/pool.rs

/root/repo/target/debug/deps/edsr_par-27be2312432356ff: crates/par/src/lib.rs crates/par/src/pool.rs

crates/par/src/lib.rs:
crates/par/src/pool.rs:
