/root/repo/target/debug/deps/continual_pipeline-c8448211dc1be360.d: tests/continual_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libcontinual_pipeline-c8448211dc1be360.rmeta: tests/continual_pipeline.rs Cargo.toml

tests/continual_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
