/root/repo/target/debug/deps/bench-fe0882f2c7f7cd3e.d: crates/bench/src/bin/bench.rs Cargo.toml

/root/repo/target/debug/deps/libbench-fe0882f2c7f7cd3e.rmeta: crates/bench/src/bin/bench.rs Cargo.toml

crates/bench/src/bin/bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
