/root/repo/target/debug/deps/edsr_data-4fa8af5f0493da6c.d: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batch.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/grid.rs crates/data/src/presets.rs crates/data/src/synth.rs crates/data/src/tabular.rs crates/data/src/tasks.rs

/root/repo/target/debug/deps/libedsr_data-4fa8af5f0493da6c.rlib: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batch.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/grid.rs crates/data/src/presets.rs crates/data/src/synth.rs crates/data/src/tabular.rs crates/data/src/tasks.rs

/root/repo/target/debug/deps/libedsr_data-4fa8af5f0493da6c.rmeta: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batch.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/grid.rs crates/data/src/presets.rs crates/data/src/synth.rs crates/data/src/tabular.rs crates/data/src/tasks.rs

crates/data/src/lib.rs:
crates/data/src/augment.rs:
crates/data/src/batch.rs:
crates/data/src/csv.rs:
crates/data/src/dataset.rs:
crates/data/src/grid.rs:
crates/data/src/presets.rs:
crates/data/src/synth.rs:
crates/data/src/tabular.rs:
crates/data/src/tasks.rs:
