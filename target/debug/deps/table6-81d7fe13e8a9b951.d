/root/repo/target/debug/deps/table6-81d7fe13e8a9b951.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-81d7fe13e8a9b951: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
