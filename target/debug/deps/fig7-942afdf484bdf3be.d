/root/repo/target/debug/deps/fig7-942afdf484bdf3be.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-942afdf484bdf3be: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
