/root/repo/target/debug/deps/fig6-929a1fe77967fe3a.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-929a1fe77967fe3a: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
