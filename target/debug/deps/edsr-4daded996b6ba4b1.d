/root/repo/target/debug/deps/edsr-4daded996b6ba4b1.d: src/bin/edsr.rs Cargo.toml

/root/repo/target/debug/deps/libedsr-4daded996b6ba4b1.rmeta: src/bin/edsr.rs Cargo.toml

src/bin/edsr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
