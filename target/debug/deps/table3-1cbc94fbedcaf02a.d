/root/repo/target/debug/deps/table3-1cbc94fbedcaf02a.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-1cbc94fbedcaf02a: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
