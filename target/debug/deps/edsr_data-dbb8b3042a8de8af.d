/root/repo/target/debug/deps/edsr_data-dbb8b3042a8de8af.d: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batch.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/grid.rs crates/data/src/presets.rs crates/data/src/synth.rs crates/data/src/tabular.rs crates/data/src/tasks.rs

/root/repo/target/debug/deps/libedsr_data-dbb8b3042a8de8af.rlib: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batch.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/grid.rs crates/data/src/presets.rs crates/data/src/synth.rs crates/data/src/tabular.rs crates/data/src/tasks.rs

/root/repo/target/debug/deps/libedsr_data-dbb8b3042a8de8af.rmeta: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batch.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/grid.rs crates/data/src/presets.rs crates/data/src/synth.rs crates/data/src/tabular.rs crates/data/src/tasks.rs

crates/data/src/lib.rs:
crates/data/src/augment.rs:
crates/data/src/batch.rs:
crates/data/src/csv.rs:
crates/data/src/dataset.rs:
crates/data/src/grid.rs:
crates/data/src/presets.rs:
crates/data/src/synth.rs:
crates/data/src/tabular.rs:
crates/data/src/tasks.rs:
