/root/repo/target/debug/deps/edsr-a13504493c2dbf86.d: src/lib.rs

/root/repo/target/debug/deps/libedsr-a13504493c2dbf86.rlib: src/lib.rs

/root/repo/target/debug/deps/libedsr-a13504493c2dbf86.rmeta: src/lib.rs

src/lib.rs:
