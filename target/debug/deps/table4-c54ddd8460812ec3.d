/root/repo/target/debug/deps/table4-c54ddd8460812ec3.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-c54ddd8460812ec3: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
