/root/repo/target/debug/deps/proptest-7d862729284a2246.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7d862729284a2246.rlib: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7d862729284a2246.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
