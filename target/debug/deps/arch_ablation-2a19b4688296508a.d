/root/repo/target/debug/deps/arch_ablation-2a19b4688296508a.d: crates/bench/src/bin/arch_ablation.rs

/root/repo/target/debug/deps/arch_ablation-2a19b4688296508a: crates/bench/src/bin/arch_ablation.rs

crates/bench/src/bin/arch_ablation.rs:
