/root/repo/target/debug/deps/proptest-4bce3c60de1671d3.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-4bce3c60de1671d3: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
