/root/repo/target/debug/deps/exp_all-67f481457fbae192.d: crates/bench/src/bin/exp_all.rs

/root/repo/target/debug/deps/exp_all-67f481457fbae192: crates/bench/src/bin/exp_all.rs

crates/bench/src/bin/exp_all.rs:
