/root/repo/target/debug/deps/table5-c1770d60ff8341b5.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-c1770d60ff8341b5: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
