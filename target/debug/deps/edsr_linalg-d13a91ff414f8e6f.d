/root/repo/target/debug/deps/edsr_linalg-d13a91ff414f8e6f.d: crates/linalg/src/lib.rs crates/linalg/src/eigen.rs crates/linalg/src/kmeans.rs crates/linalg/src/knn.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/libedsr_linalg-d13a91ff414f8e6f.rlib: crates/linalg/src/lib.rs crates/linalg/src/eigen.rs crates/linalg/src/kmeans.rs crates/linalg/src/knn.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/libedsr_linalg-d13a91ff414f8e6f.rmeta: crates/linalg/src/lib.rs crates/linalg/src/eigen.rs crates/linalg/src/kmeans.rs crates/linalg/src/knn.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/kmeans.rs:
crates/linalg/src/knn.rs:
crates/linalg/src/pca.rs:
crates/linalg/src/stats.rs:
