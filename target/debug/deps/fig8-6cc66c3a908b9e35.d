/root/repo/target/debug/deps/fig8-6cc66c3a908b9e35.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-6cc66c3a908b9e35: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
