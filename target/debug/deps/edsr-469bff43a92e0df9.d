/root/repo/target/debug/deps/edsr-469bff43a92e0df9.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libedsr-469bff43a92e0df9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
