/root/repo/target/debug/deps/table6-7ad5662b56e383fb.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-7ad5662b56e383fb: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
