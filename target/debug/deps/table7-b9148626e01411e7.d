/root/repo/target/debug/deps/table7-b9148626e01411e7.d: crates/bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-b9148626e01411e7: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
