/root/repo/target/debug/deps/fig5-f2b0190ff0096ff4.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-f2b0190ff0096ff4: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
