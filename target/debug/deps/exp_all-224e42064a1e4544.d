/root/repo/target/debug/deps/exp_all-224e42064a1e4544.d: crates/bench/src/bin/exp_all.rs

/root/repo/target/debug/deps/exp_all-224e42064a1e4544: crates/bench/src/bin/exp_all.rs

crates/bench/src/bin/exp_all.rs:
