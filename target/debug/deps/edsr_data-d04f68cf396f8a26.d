/root/repo/target/debug/deps/edsr_data-d04f68cf396f8a26.d: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batch.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/grid.rs crates/data/src/presets.rs crates/data/src/synth.rs crates/data/src/tabular.rs crates/data/src/tasks.rs

/root/repo/target/debug/deps/edsr_data-d04f68cf396f8a26: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batch.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/grid.rs crates/data/src/presets.rs crates/data/src/synth.rs crates/data/src/tabular.rs crates/data/src/tasks.rs

crates/data/src/lib.rs:
crates/data/src/augment.rs:
crates/data/src/batch.rs:
crates/data/src/csv.rs:
crates/data/src/dataset.rs:
crates/data/src/grid.rs:
crates/data/src/presets.rs:
crates/data/src/synth.rs:
crates/data/src/tabular.rs:
crates/data/src/tasks.rs:
