/root/repo/target/debug/deps/edsr-fc116e3dd471105b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libedsr-fc116e3dd471105b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
