/root/repo/target/debug/deps/table4-c24a8fb191468100.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-c24a8fb191468100: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
