/root/repo/target/debug/deps/table3-a047852c5a9e8226.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-a047852c5a9e8226: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
