/root/repo/target/debug/deps/edsr_core-84d8a8b5f6dd558c.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs crates/core/src/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libedsr_core-84d8a8b5f6dd558c.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs crates/core/src/proptests.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/method.rs:
crates/core/src/noise.rs:
crates/core/src/select.rs:
crates/core/src/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
