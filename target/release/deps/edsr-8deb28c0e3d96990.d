/root/repo/target/release/deps/edsr-8deb28c0e3d96990.d: src/lib.rs

/root/repo/target/release/deps/libedsr-8deb28c0e3d96990.rlib: src/lib.rs

/root/repo/target/release/deps/libedsr-8deb28c0e3d96990.rmeta: src/lib.rs

src/lib.rs:
