/root/repo/target/release/deps/fig5-01b2bd92369be483.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-01b2bd92369be483: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
