/root/repo/target/release/deps/fig10-e403ef609753f809.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-e403ef609753f809: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
