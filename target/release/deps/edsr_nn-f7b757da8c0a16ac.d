/root/repo/target/release/deps/edsr_nn-f7b757da8c0a16ac.d: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/io.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

/root/repo/target/release/deps/libedsr_nn-f7b757da8c0a16ac.rlib: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/io.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

/root/repo/target/release/deps/libedsr_nn-f7b757da8c0a16ac.rmeta: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/io.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

crates/nn/src/lib.rs:
crates/nn/src/conv.rs:
crates/nn/src/io.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/params.rs:
