/root/repo/target/release/deps/fig6-7bf3658644a5c242.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-7bf3658644a5c242: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
