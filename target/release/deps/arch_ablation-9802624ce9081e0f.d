/root/repo/target/release/deps/arch_ablation-9802624ce9081e0f.d: crates/bench/src/bin/arch_ablation.rs

/root/repo/target/release/deps/arch_ablation-9802624ce9081e0f: crates/bench/src/bin/arch_ablation.rs

crates/bench/src/bin/arch_ablation.rs:
