/root/repo/target/release/deps/edsr_nn-c4d82d4605188c62.d: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/io.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

/root/repo/target/release/deps/libedsr_nn-c4d82d4605188c62.rlib: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/io.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

/root/repo/target/release/deps/libedsr_nn-c4d82d4605188c62.rmeta: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/io.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs

crates/nn/src/lib.rs:
crates/nn/src/conv.rs:
crates/nn/src/io.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/params.rs:
