/root/repo/target/release/deps/edsr_tensor-1ab856dd1e7881e0.d: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/matrix.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

/root/repo/target/release/deps/libedsr_tensor-1ab856dd1e7881e0.rlib: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/matrix.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

/root/repo/target/release/deps/libedsr_tensor-1ab856dd1e7881e0.rmeta: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/matrix.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

crates/tensor/src/lib.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/tape.rs:
