/root/repo/target/release/deps/fig4-2c2a2bc391c35e2a.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-2c2a2bc391c35e2a: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
