/root/repo/target/release/deps/table5-47f88d9aba0a39ae.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-47f88d9aba0a39ae: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
