/root/repo/target/release/deps/fig8-68116229e3b5a3d9.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-68116229e3b5a3d9: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
