/root/repo/target/release/deps/bench-f462c06ef7bdd562.d: crates/bench/src/bin/bench.rs

/root/repo/target/release/deps/bench-f462c06ef7bdd562: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:
