/root/repo/target/release/deps/proptest-60b3580e8e0994d1.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-60b3580e8e0994d1.rlib: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-60b3580e8e0994d1.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
