/root/repo/target/release/deps/table7-5079bd03eb002c22.d: crates/bench/src/bin/table7.rs

/root/repo/target/release/deps/table7-5079bd03eb002c22: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
