/root/repo/target/release/deps/fig6-ebe87150c886c359.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-ebe87150c886c359: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
