/root/repo/target/release/deps/fig9-c77ece0dfc608ac3.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-c77ece0dfc608ac3: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
