/root/repo/target/release/deps/fig4-ddf7a73d74f6c9ee.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-ddf7a73d74f6c9ee: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
