/root/repo/target/release/deps/edsr-20eabddecc77a84a.d: src/bin/edsr.rs

/root/repo/target/release/deps/edsr-20eabddecc77a84a: src/bin/edsr.rs

src/bin/edsr.rs:
