/root/repo/target/release/deps/edsr-fd686038c64e7b0c.d: src/lib.rs

/root/repo/target/release/deps/libedsr-fd686038c64e7b0c.rlib: src/lib.rs

/root/repo/target/release/deps/libedsr-fd686038c64e7b0c.rmeta: src/lib.rs

src/lib.rs:
