/root/repo/target/release/deps/table6-53bb38f59da5c035.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-53bb38f59da5c035: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
