/root/repo/target/release/deps/edsr_tensor-db1477b3be8b2839.d: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/matrix.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

/root/repo/target/release/deps/libedsr_tensor-db1477b3be8b2839.rlib: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/matrix.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

/root/repo/target/release/deps/libedsr_tensor-db1477b3be8b2839.rmeta: crates/tensor/src/lib.rs crates/tensor/src/gradcheck.rs crates/tensor/src/matrix.rs crates/tensor/src/rng.rs crates/tensor/src/tape.rs

crates/tensor/src/lib.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/tape.rs:
