/root/repo/target/release/deps/edsr_data-a98da4215187c4b0.d: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batch.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/grid.rs crates/data/src/presets.rs crates/data/src/synth.rs crates/data/src/tabular.rs crates/data/src/tasks.rs

/root/repo/target/release/deps/libedsr_data-a98da4215187c4b0.rlib: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batch.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/grid.rs crates/data/src/presets.rs crates/data/src/synth.rs crates/data/src/tabular.rs crates/data/src/tasks.rs

/root/repo/target/release/deps/libedsr_data-a98da4215187c4b0.rmeta: crates/data/src/lib.rs crates/data/src/augment.rs crates/data/src/batch.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/grid.rs crates/data/src/presets.rs crates/data/src/synth.rs crates/data/src/tabular.rs crates/data/src/tasks.rs

crates/data/src/lib.rs:
crates/data/src/augment.rs:
crates/data/src/batch.rs:
crates/data/src/csv.rs:
crates/data/src/dataset.rs:
crates/data/src/grid.rs:
crates/data/src/presets.rs:
crates/data/src/synth.rs:
crates/data/src/tabular.rs:
crates/data/src/tasks.rs:
