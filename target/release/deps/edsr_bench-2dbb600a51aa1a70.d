/root/repo/target/release/deps/edsr_bench-2dbb600a51aa1a70.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libedsr_bench-2dbb600a51aa1a70.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libedsr_bench-2dbb600a51aa1a70.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
