/root/repo/target/release/deps/fig7-76f46c3507f94bf4.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-76f46c3507f94bf4: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
