/root/repo/target/release/deps/table7-5d6d8a2792ada4c4.d: crates/bench/src/bin/table7.rs

/root/repo/target/release/deps/table7-5d6d8a2792ada4c4: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
