/root/repo/target/release/deps/table6-5814961b5443e885.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-5814961b5443e885: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
