/root/repo/target/release/deps/edsr_bench-4f152a1668a73612.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libedsr_bench-4f152a1668a73612.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libedsr_bench-4f152a1668a73612.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
