/root/repo/target/release/deps/fig9-754fd98408e1ad9a.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-754fd98408e1ad9a: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
