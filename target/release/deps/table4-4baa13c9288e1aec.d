/root/repo/target/release/deps/table4-4baa13c9288e1aec.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-4baa13c9288e1aec: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
