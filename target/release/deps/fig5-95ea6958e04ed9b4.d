/root/repo/target/release/deps/fig5-95ea6958e04ed9b4.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-95ea6958e04ed9b4: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
