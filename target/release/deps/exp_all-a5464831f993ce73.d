/root/repo/target/release/deps/exp_all-a5464831f993ce73.d: crates/bench/src/bin/exp_all.rs

/root/repo/target/release/deps/exp_all-a5464831f993ce73: crates/bench/src/bin/exp_all.rs

crates/bench/src/bin/exp_all.rs:
