/root/repo/target/release/deps/edsr_linalg-cf6ca427b375e389.d: crates/linalg/src/lib.rs crates/linalg/src/eigen.rs crates/linalg/src/kmeans.rs crates/linalg/src/knn.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs

/root/repo/target/release/deps/libedsr_linalg-cf6ca427b375e389.rlib: crates/linalg/src/lib.rs crates/linalg/src/eigen.rs crates/linalg/src/kmeans.rs crates/linalg/src/knn.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs

/root/repo/target/release/deps/libedsr_linalg-cf6ca427b375e389.rmeta: crates/linalg/src/lib.rs crates/linalg/src/eigen.rs crates/linalg/src/kmeans.rs crates/linalg/src/knn.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/kmeans.rs:
crates/linalg/src/knn.rs:
crates/linalg/src/pca.rs:
crates/linalg/src/stats.rs:
