/root/repo/target/release/deps/edsr_core-969315946ada78a1.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs

/root/repo/target/release/deps/libedsr_core-969315946ada78a1.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs

/root/repo/target/release/deps/libedsr_core-969315946ada78a1.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/method.rs:
crates/core/src/noise.rs:
crates/core/src/select.rs:
