/root/repo/target/release/deps/arch_ablation-0d17c37f51a9d233.d: crates/bench/src/bin/arch_ablation.rs

/root/repo/target/release/deps/arch_ablation-0d17c37f51a9d233: crates/bench/src/bin/arch_ablation.rs

crates/bench/src/bin/arch_ablation.rs:
