/root/repo/target/release/deps/edsr-667e40012fad6fd5.d: src/bin/edsr.rs

/root/repo/target/release/deps/edsr-667e40012fad6fd5: src/bin/edsr.rs

src/bin/edsr.rs:
