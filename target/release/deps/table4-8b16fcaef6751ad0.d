/root/repo/target/release/deps/table4-8b16fcaef6751ad0.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-8b16fcaef6751ad0: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
