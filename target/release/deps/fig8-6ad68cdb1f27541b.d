/root/repo/target/release/deps/fig8-6ad68cdb1f27541b.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-6ad68cdb1f27541b: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
