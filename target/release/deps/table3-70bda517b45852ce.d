/root/repo/target/release/deps/table3-70bda517b45852ce.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-70bda517b45852ce: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
