/root/repo/target/release/deps/edsr_linalg-b8dc7319b2eb8756.d: crates/linalg/src/lib.rs crates/linalg/src/eigen.rs crates/linalg/src/kmeans.rs crates/linalg/src/knn.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs

/root/repo/target/release/deps/libedsr_linalg-b8dc7319b2eb8756.rlib: crates/linalg/src/lib.rs crates/linalg/src/eigen.rs crates/linalg/src/kmeans.rs crates/linalg/src/knn.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs

/root/repo/target/release/deps/libedsr_linalg-b8dc7319b2eb8756.rmeta: crates/linalg/src/lib.rs crates/linalg/src/eigen.rs crates/linalg/src/kmeans.rs crates/linalg/src/knn.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/kmeans.rs:
crates/linalg/src/knn.rs:
crates/linalg/src/pca.rs:
crates/linalg/src/stats.rs:
