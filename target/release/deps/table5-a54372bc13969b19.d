/root/repo/target/release/deps/table5-a54372bc13969b19.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-a54372bc13969b19: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
