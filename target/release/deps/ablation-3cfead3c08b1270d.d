/root/repo/target/release/deps/ablation-3cfead3c08b1270d.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-3cfead3c08b1270d: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
