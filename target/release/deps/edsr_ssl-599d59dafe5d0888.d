/root/repo/target/release/deps/edsr_ssl-599d59dafe5d0888.d: crates/ssl/src/lib.rs crates/ssl/src/distill.rs crates/ssl/src/encoder.rs crates/ssl/src/losses.rs

/root/repo/target/release/deps/libedsr_ssl-599d59dafe5d0888.rlib: crates/ssl/src/lib.rs crates/ssl/src/distill.rs crates/ssl/src/encoder.rs crates/ssl/src/losses.rs

/root/repo/target/release/deps/libedsr_ssl-599d59dafe5d0888.rmeta: crates/ssl/src/lib.rs crates/ssl/src/distill.rs crates/ssl/src/encoder.rs crates/ssl/src/losses.rs

crates/ssl/src/lib.rs:
crates/ssl/src/distill.rs:
crates/ssl/src/encoder.rs:
crates/ssl/src/losses.rs:
