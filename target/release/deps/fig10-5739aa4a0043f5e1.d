/root/repo/target/release/deps/fig10-5739aa4a0043f5e1.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-5739aa4a0043f5e1: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
