/root/repo/target/release/deps/exp_all-be24af0166d7692f.d: crates/bench/src/bin/exp_all.rs

/root/repo/target/release/deps/exp_all-be24af0166d7692f: crates/bench/src/bin/exp_all.rs

crates/bench/src/bin/exp_all.rs:
