/root/repo/target/release/deps/fig7-9f5929677fffb0ac.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-9f5929677fffb0ac: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
