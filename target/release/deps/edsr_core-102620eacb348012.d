/root/repo/target/release/deps/edsr_core-102620eacb348012.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs

/root/repo/target/release/deps/libedsr_core-102620eacb348012.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs

/root/repo/target/release/deps/libedsr_core-102620eacb348012.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/method.rs crates/core/src/noise.rs crates/core/src/select.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/method.rs:
crates/core/src/noise.rs:
crates/core/src/select.rs:
