/root/repo/target/release/deps/edsr_par-9575e0cf7ea2f1f7.d: crates/par/src/lib.rs crates/par/src/pool.rs

/root/repo/target/release/deps/libedsr_par-9575e0cf7ea2f1f7.rlib: crates/par/src/lib.rs crates/par/src/pool.rs

/root/repo/target/release/deps/libedsr_par-9575e0cf7ea2f1f7.rmeta: crates/par/src/lib.rs crates/par/src/pool.rs

crates/par/src/lib.rs:
crates/par/src/pool.rs:
