/root/repo/target/release/deps/table3-4a34036d583200b9.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-4a34036d583200b9: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
