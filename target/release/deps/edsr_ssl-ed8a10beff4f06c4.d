/root/repo/target/release/deps/edsr_ssl-ed8a10beff4f06c4.d: crates/ssl/src/lib.rs crates/ssl/src/distill.rs crates/ssl/src/encoder.rs crates/ssl/src/losses.rs

/root/repo/target/release/deps/libedsr_ssl-ed8a10beff4f06c4.rlib: crates/ssl/src/lib.rs crates/ssl/src/distill.rs crates/ssl/src/encoder.rs crates/ssl/src/losses.rs

/root/repo/target/release/deps/libedsr_ssl-ed8a10beff4f06c4.rmeta: crates/ssl/src/lib.rs crates/ssl/src/distill.rs crates/ssl/src/encoder.rs crates/ssl/src/losses.rs

crates/ssl/src/lib.rs:
crates/ssl/src/distill.rs:
crates/ssl/src/encoder.rs:
crates/ssl/src/losses.rs:
