/root/repo/target/release/deps/ablation-bc58fed6ff14179a.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-bc58fed6ff14179a: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
