/root/repo/target/release/examples/checkpointing-c7d5fd579aa0ee9b.d: examples/checkpointing.rs

/root/repo/target/release/examples/checkpointing-c7d5fd579aa0ee9b: examples/checkpointing.rs

examples/checkpointing.rs:
