/root/repo/target/release/examples/checkpointing-71c2f055823f04ab.d: examples/checkpointing.rs

/root/repo/target/release/examples/checkpointing-71c2f055823f04ab: examples/checkpointing.rs

examples/checkpointing.rs:
