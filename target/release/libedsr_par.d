/root/repo/target/release/libedsr_par.rlib: /root/repo/crates/par/src/lib.rs /root/repo/crates/par/src/pool.rs
