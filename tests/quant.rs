//! Quantized serving integration (DESIGN.md §17).
//!
//! Two promises pinned here, end to end through the public crates:
//!
//! 1. **Determinism**: the int8 inference path — quantized encoder
//!    forward and quantized kNN through a serve [`Engine`] — returns
//!    bit-identical embeddings and neighbor lists whatever the pinned
//!    ISA (`EDSR_ISA`) or worker-pool width (`EDSR_THREADS`). The i32
//!    accumulator chains are exact, so this is equality, not tolerance.
//! 2. **Accuracy**: exporting v2 snapshots from a real 2-task EDSR run
//!    (`RunBuilder::quantize_serve_snapshots`) keeps the leave-one-out
//!    kNN task accuracy of the int8 memory within 1.0 point of f32 —
//!    the same gate `ci.sh` greps out of `edsr run --quantize`.
//!
//! Test 1 mutates the process-global ISA selection, so these tests live
//! in their own integration binary (the same isolation rule as
//! `tests/simd_dispatch.rs`). Unsupported ISA levels are skipped loudly.

use edsr::cl::{
    latest_valid_serve_snapshot, quantize_serve_snapshot, AnyServeSnapshot, CheckpointConfig,
    ContinualModel, ModelConfig, RunBuilder, ServeSnapshot, TrainConfig,
};
use edsr::core::Edsr;
use edsr::data::test_sim;
use edsr::linalg::Metric;
use edsr::serve::Engine;
use edsr::tensor::rng::seeded;
use edsr::tensor::simd::{self, Isa, IsaRequest};
use edsr::tensor::Matrix;

const DIM: usize = 16;
const MEMORY_ROWS: usize = 24;
const QUERIES: usize = 10;
const K: usize = 5;

/// Deterministic v1 snapshot: seeded model + replay representations
/// (same fixture shape as tests/simd_dispatch.rs).
fn snapshot() -> ServeSnapshot {
    let mut rng = seeded(410);
    let model = ContinualModel::new(&ModelConfig::image(DIM), &mut rng);
    let mem = Matrix::randn(MEMORY_ROWS, DIM, 1.0, &mut rng);
    let reprs = model.represent_eval(&mem, 0);
    let tasks = (0..MEMORY_ROWS as u64).map(|i| i % 3).collect();
    ServeSnapshot::capture(&model, reprs, tasks, "quant-test", 3).unwrap()
}

/// Embedding bits and neighbor lists (index + score bits, both metrics)
/// for every query row, served by a fresh quantized engine under the
/// currently pinned ISA and the current pool width.
type Trace = (Vec<Vec<u32>>, Vec<Vec<(usize, u32)>>);

fn serve_trace(inputs: &Matrix) -> Trace {
    let quant = quantize_serve_snapshot(&snapshot()).expect("quantize");
    let mut engine = Engine::from_quant_snapshot(quant, 64).expect("engine");
    assert!(engine.quantized());
    let mut emb = Vec::new();
    let mut neighbors = Vec::new();
    let mut embeds = Vec::new();
    let mut knns = Vec::new();
    for i in 0..inputs.rows() {
        engine
            .embed_into(0, inputs.row(i), &mut emb)
            .expect("embed");
        embeds.push(emb.iter().map(|v| v.to_bits()).collect());
        for metric in [Metric::Euclidean, Metric::Cosine] {
            engine
                .knn_into(&emb, K, metric, &mut neighbors)
                .expect("knn");
            knns.push(
                neighbors
                    .iter()
                    .map(|n| (n.index, n.score.to_bits()))
                    .collect(),
            );
        }
    }
    (embeds, knns)
}

#[test]
fn quant_engine_bit_identical_across_isa_and_threads() {
    let inputs = Matrix::randn(QUERIES, DIM, 1.0, &mut seeded(97));
    simd::set_isa(IsaRequest::Fixed(Isa::Scalar)).expect("scalar is always supported");
    let want = edsr::par::with_threads(1, || serve_trace(&inputs));
    for isa in [Isa::Scalar, Isa::Avx2, Isa::Avx512] {
        if !isa.supported() {
            eprintln!(
                "SKIPPING quantized-engine identity for {}: not supported on this host",
                isa.name()
            );
            continue;
        }
        simd::set_isa(IsaRequest::Fixed(isa)).expect("support checked above");
        for threads in [1usize, 2, 7] {
            let got = edsr::par::with_threads(threads, || serve_trace(&inputs));
            assert_eq!(
                want,
                got,
                "quantized serve path diverged on {} with {threads} threads",
                isa.name()
            );
        }
    }
    // Leave the process on runtime detection for any later test in this
    // binary.
    simd::set_isa(IsaRequest::Auto).expect("auto is always supported");
}

#[test]
fn two_task_run_quantization_gate_within_one_point() {
    // 4 classes at 2 per increment: a real 2-task EDSR run, v2 snapshots
    // exported at every boundary exactly as `edsr run --serve-snapshot
    // --quantize` does.
    let mut preset = test_sim();
    preset.num_classes = 4;
    assert_eq!(preset.num_tasks(), 2);
    let (seq, augs) = preset.build_with_augmenters(&mut seeded(171));
    let mut cfg = TrainConfig::image();
    cfg.epochs_per_task = 8;
    let mut model = ContinualModel::new(&ModelConfig::image(preset.grid.dim()), &mut seeded(172));
    let mut edsr = Edsr::paper_default(preset.per_task_budget(), 6, preset.noise_neighbors);
    let dir = std::env::temp_dir().join(format!("edsr-quant-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    RunBuilder::new(&cfg)
        .serve_snapshots(CheckpointConfig::new(
            dir.display().to_string(),
            "quant-gate",
        ))
        .quantize_serve_snapshots()
        .run(&mut edsr, &mut model, &mut &seq, &augs, &mut seeded(173))
        .expect("run");

    let (path, snap) = latest_valid_serve_snapshot(&dir)
        .expect("no unreadable candidates")
        .expect("snapshot written");
    let AnyServeSnapshot::V2(quant) = snap else {
        panic!(
            "--quantize must export v2 snapshots, got v1 at {}",
            path.display()
        );
    };
    assert_eq!(quant.completed_tasks, 2);
    assert!(
        quant.gate.f32_accuracy > 0.0,
        "degenerate fixture: f32 leave-one-out accuracy is zero"
    );
    assert!(
        quant.gate.delta() <= 1.0,
        "int8 kNN task accuracy drifted {:.2} points from f32 (f32 {:.2}%, int8 {:.2}%)",
        quant.gate.delta(),
        quant.gate.f32_accuracy,
        quant.gate.int8_accuracy
    );

    // And the exported artifact actually serves on the int8 backend.
    let mut engine = Engine::from_quant_snapshot(*quant, 16).expect("engine");
    assert!(engine.quantized());
    let probe = seq.tasks[0].test.inputs.clone();
    let mut emb = Vec::new();
    engine.embed_into(0, probe.row(0), &mut emb).expect("embed");
    assert_eq!(emb.len(), engine.repr_dim());
    let _ = std::fs::remove_dir_all(&dir);
}
