//! End-to-end tests for the `edsr-serve` inference server (DESIGN.md
//! §12): multi-client responses are bit-identical to direct in-process
//! eval-mode forwards and `KnnQuery` scans, the micro-batcher observably
//! coalesces concurrent requests (obs counters), malformed wire traffic
//! gets structured errors without killing the server, and a graceful
//! shutdown answers every accepted request.
//!
//! The observability sink is process-global, so every test here
//! serializes on one mutex (the servers themselves emit spans/counters).

use std::sync::Mutex;
use std::time::Duration;

use edsr::cl::{ContinualModel, ModelConfig, ServeSnapshot};
use edsr::linalg::{KnnQuery, Metric};
use edsr::obs::EventKind;
use edsr::serve::{serve, Client, Engine, Request, Response, ServeError, ServerConfig, WireMetric};
use edsr::tensor::rng::seeded;
use edsr::tensor::Matrix;

/// Serializes servers and obs-sink installs across tests.
static SERVE_LOCK: Mutex<()> = Mutex::new(());

const DIM: usize = 16;
const MEMORY_ROWS: usize = 10;

/// Deterministic snapshot: seeded model + 10 replay representations.
fn snapshot() -> ServeSnapshot {
    let mut rng = seeded(41);
    let model = ContinualModel::new(&ModelConfig::image(DIM), &mut rng);
    let mem = Matrix::randn(MEMORY_ROWS, DIM, 1.0, &mut rng);
    let reprs = model.represent_eval(&mem, 0);
    let tasks = (0..MEMORY_ROWS as u64).map(|i| i % 3).collect();
    ServeSnapshot::capture(&model, reprs, tasks, "serve-test", 3).unwrap()
}

fn engine() -> Engine {
    Engine::from_snapshot(snapshot(), 64).unwrap()
}

#[test]
fn multi_client_responses_match_in_process_forward_and_knn() {
    let _guard = SERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = ServerConfig {
        max_batch: 4,
        window: Duration::from_micros(300),
        max_connections: 8,
        ..ServerConfig::default()
    };
    let handle = serve(engine(), ("127.0.0.1", 0), cfg).expect("bind");
    let addr = handle.addr();

    let clients = 4usize;
    let per_client = 12usize;
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let inputs = Matrix::randn(per_client, DIM, 1.0, &mut seeded(500 + c as u64));
                let mut results = Vec::new();
                for i in 0..per_client {
                    let emb = client.embed(0, inputs.row(i)).expect("embed");
                    let neighbors = client.knn(&emb, 3, WireMetric::Cosine).expect("knn");
                    results.push((inputs.row(i).to_vec(), emb, neighbors));
                }
                results
            })
        })
        .collect();
    let all: Vec<_> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("client thread"))
        .collect();

    // Graceful shutdown: every accepted request must have been answered.
    let mut closer = Client::connect(addr).expect("connect closer");
    closer.shutdown().expect("shutdown ack");
    let report = handle.join().expect("join");
    let expected_requests = (clients * per_client * 2 + 1) as u64;
    assert_eq!(
        report.requests, expected_requests,
        "graceful drain lost accepted requests"
    );
    assert_eq!(report.batched_requests, (clients * per_client) as u64);

    // Bit-identity against the direct in-process eval forward and a
    // direct KnnQuery over the snapshot's stored representations.
    let reference = snapshot();
    let model = reference.restore_model().expect("restore");
    let memory = reference.memory_reprs;
    for (input, served_emb, served_neighbors) in &all {
        let x = Matrix::from_vec(1, DIM, input.clone());
        let direct = model.represent_eval(&x, 0);
        assert_eq!(
            direct
                .row(0)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            served_emb.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "served embedding diverged from in-process forward"
        );
        let direct_knn = KnnQuery::new(&memory, 3)
            .metric(Metric::Cosine)
            .search(served_emb);
        assert_eq!(served_neighbors.len(), direct_knn.len());
        for (got, want) in served_neighbors.iter().zip(&direct_knn) {
            assert_eq!(got.index, want.index as u64);
            assert_eq!(got.score.to_bits(), want.score.to_bits());
        }
    }
}

#[test]
fn concurrent_clients_coalesce_and_obs_counters_prove_it() {
    let _guard = SERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ring = edsr::obs::RingSink::with_capacity(edsr::obs::DEFAULT_RING_CAPACITY);
    edsr::obs::install(Box::new(ring.clone()));

    let n = 3usize;
    // A wide window and max_batch == n: the flush happens exactly when
    // all n concurrent requests have arrived.
    let cfg = ServerConfig {
        max_batch: n,
        window: Duration::from_millis(500),
        max_connections: n + 1,
        ..ServerConfig::default()
    };
    let handle = serve(engine(), ("127.0.0.1", 0), cfg).expect("bind");
    let addr = handle.addr();
    let workers: Vec<_> = (0..n)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let input: Vec<f32> = (0..DIM).map(|i| (i + c) as f32 * 0.05).collect();
                client.embed(0, &input).expect("embed")
            })
        })
        .collect();
    for w in workers {
        assert_eq!(w.join().expect("client").len(), engine().repr_dim());
    }
    let mut closer = Client::connect(addr).expect("connect");
    closer.shutdown().expect("shutdown");
    let report = handle.join().expect("join");
    edsr::obs::uninstall();

    assert_eq!(report.batches, 1, "requests split across flushes");
    assert_eq!(report.max_batch, n as u64, "batch did not coalesce");

    // The same story must be visible from the outside via obs counters.
    let events = ring.events();
    let batches: f64 = events
        .iter()
        .filter(|e| e.kind == EventKind::Counter && e.name == "serve/batches")
        .map(|e| e.value)
        .sum();
    let batched: f64 = events
        .iter()
        .filter(|e| e.kind == EventKind::Counter && e.name == "serve/batched_requests")
        .map(|e| e.value)
        .sum();
    let sizes: Vec<f64> = events
        .iter()
        .filter(|e| e.kind == EventKind::Histogram && e.name == "serve/batch_size")
        .map(|e| e.value)
        .collect();
    assert_eq!(batches, 1.0);
    assert_eq!(batched, n as f64);
    assert_eq!(sizes, vec![n as f64]);
    // Per-request latency histograms cover every answered request.
    let latencies = events
        .iter()
        .filter(|e| e.kind == EventKind::Histogram && e.name == "serve/latency_us")
        .count();
    assert_eq!(latencies as u64, report.requests);
}

#[test]
fn malformed_traffic_gets_structured_errors_and_server_survives() {
    let _guard = SERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let handle = serve(engine(), ("127.0.0.1", 0), ServerConfig::default()).expect("bind");
    let addr = handle.addr();

    // A frame whose payload is garbage: the server answers with a
    // structured bad-request error on the same connection.
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(addr).expect("connect");
        let junk = [0xFFu8, 0xAB, 0xCD];
        raw.write_all(&(junk.len() as u32).to_le_bytes()).unwrap();
        raw.write_all(&junk).unwrap();
        let mut len = [0u8; 4];
        raw.read_exact(&mut len).expect("error response length");
        let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
        raw.read_exact(&mut payload).expect("error response body");
        match Response::decode(&payload) {
            Ok((_, Response::Error { code, message, .. })) => {
                assert_eq!(code, edsr::serve::protocol::ERR_BAD_REQUEST);
                assert!(!message.is_empty());
            }
            other => panic!("expected structured error, got {other:?}"),
        }
    }

    // An oversized length prefix: structured error, connection closed,
    // server still alive.
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(addr).expect("connect");
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let mut len = [0u8; 4];
        raw.read_exact(&mut len).expect("error response length");
        let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
        raw.read_exact(&mut payload).expect("error response body");
        assert!(matches!(
            Response::decode(&payload),
            Ok((_, Response::Error { .. }))
        ));
    }

    // The engine's own validation also arrives as a structured error.
    let mut client = Client::connect(addr).expect("connect");
    match client.embed(0, &[1.0; 3]) {
        Err(ServeError::Rejected { message, .. }) => {
            assert!(message.contains("expects 16"), "got: {message}")
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    match client.knn(&[0.0; 4], 3, WireMetric::Euclidean) {
        Err(ServeError::Rejected { message, .. }) => {
            assert!(message.contains("dims"), "got: {message}")
        }
        other => panic!("expected rejection, got {other:?}"),
    }

    // After all that abuse a well-formed request still answers.
    let emb = client.embed(0, &[0.25; DIM]).expect("server survived");
    assert_eq!(emb.len(), 48);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.memory_rows, MEMORY_ROWS as u64);
    client.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn requests_after_shutdown_are_rejected_with_shutting_down() {
    let _guard = SERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let handle = serve(engine(), ("127.0.0.1", 0), ServerConfig::default()).expect("bind");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");
    let emb = client.embed(0, &[0.5; DIM]).expect("pre-shutdown embed");
    client.shutdown().expect("ack");
    // The same (already accepted) connection keeps draining: a request
    // that arrives after the flag flips gets a structured shutdown
    // rejection or a closed connection, never a hang or a panic.
    match client.embed(0, &[0.7; DIM]) {
        Ok(e) => assert_eq!(e.len(), emb.len()),
        Err(ServeError::Rejected { .. } | ServeError::ServerClosed | ServeError::Io(_)) => {}
        Err(other) => panic!("unexpected failure mode: {other}"),
    }
    drop(client);
    let report = handle.join().expect("join");
    assert!(report.requests >= 2);
}

#[test]
fn wire_protocol_is_usable_without_the_client_helper() {
    // Sanity-check the raw request/response types exported for external
    // callers (no server needed).
    let req = Request::Embed {
        task: 2,
        input: vec![1.5, -0.25],
    };
    let bytes = req.encode();
    assert_eq!(Request::decode(&bytes).unwrap(), req);
    let resp = Response::Neighbors(vec![]);
    let mut buf = Vec::new();
    resp.encode_into(2, &mut buf);
    assert!(matches!(
        Response::decode(&buf),
        Ok((2, Response::Neighbors(v))) if v.is_empty()
    ));
}
