//! Cross-crate contract tests for the `edsr-par` runtime: a worker panic
//! surfaces as a structured error (`edsr_core::Error::Worker` /
//! `TrainError::Worker`) instead of hanging or aborting, and the pool
//! stays usable afterwards.

use edsr::cl::TrainError;
use edsr::core::Error;
use edsr::par;
use edsr::tensor::Matrix;

/// Bridges a chunk panic into the workspace error type, the way sweep
/// drivers do.
fn guarded(len: usize, poison_at: Option<usize>) -> Result<Vec<f32>, Error> {
    par::catch_panic(|| {
        let mut out = vec![0.0f32; len];
        par::par_for_rows(&mut out, len, |rows, chunk| {
            for (local, i) in rows.enumerate() {
                if Some(i) == poison_at {
                    panic!("poisoned element {i}");
                }
                chunk[local] = i as f32 * 2.0;
            }
        });
        out
    })
    .map_err(Error::Worker)
}

#[test]
fn worker_panic_becomes_structured_error() {
    par::with_threads(4, || {
        let err = guarded(64, Some(17)).expect_err("panic must surface");
        match &err {
            Error::Worker(msg) => assert!(msg.contains("poisoned element 17"), "{msg}"),
            other => panic!("expected Worker, got {other:?}"),
        }
        assert!(err.to_string().contains("parallel worker panicked"));
    });
}

#[test]
fn pool_remains_usable_after_worker_panic() {
    par::with_threads(4, || {
        assert!(guarded(64, Some(0)).is_err());
        let ok = guarded(64, None).expect("clean run after panic");
        assert_eq!(ok[10], 20.0);
    });
}

#[test]
fn train_error_worker_variant_formats() {
    let e = TrainError::Worker("boom".into());
    assert!(e.to_string().contains("parallel worker panicked: boom"));
    let e: Error = e.into();
    assert!(matches!(e, Error::Train(TrainError::Worker(_))));
}

/// End-to-end determinism spot check through the facade: a small training
/// matmul chain is bit-identical at 1, 2, and 7 threads.
#[test]
fn facade_matmul_bit_identical_across_thread_counts() {
    let mut rng = edsr::tensor::rng::seeded(7);
    let a = Matrix::randn(33, 29, 1.0, &mut rng);
    let b = Matrix::randn(29, 31, 1.0, &mut rng);
    let baseline = par::with_threads(1, || a.matmul(&b));
    for threads in [2usize, 7] {
        let got = par::with_threads(threads, || a.matmul(&b));
        assert!(
            baseline
                .data()
                .iter()
                .zip(got.data())
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "matmul differs at {threads} threads"
        );
    }
}
