//! Allocation-counter proof of the zero-allocation training step: once the
//! scratch pools are warm, a steady-state step — workspace reset, two-view
//! forward, backward, gradient routing, optimizer step — performs zero heap
//! allocations in the tape/matmul/conv hot path.
//!
//! Scope (DESIGN.md §10): the measured region excludes data augmentation,
//! batch iteration, and memory sampling, which own their outputs by design.
//! The claim holds at one thread (`EDSR_THREADS=1`); pool dispatch
//! allocates per-spawn closure state at higher thread counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use edsr::cl::{
    apply_step, quantize_serve_snapshot, ContinualModel, ModelConfig, NoopObserver, Observer,
    ServeSnapshot, StepRecord,
};
use edsr::nn::{Adam, Workspace};
use edsr::serve::{Batcher, Engine, RotateConfig, ServerConfig};
use edsr::tensor::rng::seeded;
use edsr::tensor::Matrix;

/// The allocation counter is process-global, so the measuring tests in
/// this binary must not run concurrently.
static ALLOC_LOCK: Mutex<()> = Mutex::new(());

/// System allocator wrapper that counts every allocation-path call
/// (alloc, alloc_zeroed, realloc). Deallocations are free and uncounted.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs warm-up steps (pool growth, optimizer moment init, kernel pack
/// buffers), then returns the allocation count across `measured` further
/// steps — which must be zero.
///
/// The measured region includes the observability surface in its
/// off-state (DESIGN.md §11): a span guard around each step, a gated
/// metric emit, and the `on_step` hook dispatched through
/// `&mut dyn Observer`. None of it may allocate while no sink is
/// installed.
fn steady_state_allocs(
    model: &mut ContinualModel,
    x1: &Matrix,
    x2: &Matrix,
    observer: &mut dyn Observer,
) -> u64 {
    let mut opt = Adam::new(1e-3, 0.0);
    let mut ws = Workspace::new();
    for _ in 0..3 {
        ws.reset();
        let (_, _, loss) = model.css_on_views(&mut ws.tape, &mut ws.binder, x1, x2, 0);
        apply_step(model, &mut opt, &mut ws.tape, &ws.binder, loss);
    }
    let before = allocations();
    for step in 0..5 {
        let _step_span = edsr::obs::span("step", step as u64);
        ws.reset();
        let (_, _, loss) = model.css_on_views(&mut ws.tape, &mut ws.binder, x1, x2, 0);
        let loss = apply_step(model, &mut opt, &mut ws.tape, &ws.binder, loss);
        edsr::obs::gauge("zero_alloc/loss", f64::from(loss));
        observer.on_step(&StepRecord {
            task: 0,
            epoch: 0,
            step,
            loss,
        });
    }
    allocations() - before
}

#[test]
fn steady_state_train_step_makes_no_hot_path_allocations() {
    let _serialized = ALLOC_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Must be set before the first pool touch; single-thread keeps the
    // whole step on this thread (no spawn bookkeeping).
    std::env::set_var("EDSR_THREADS", "1");
    // No sink installed: the instrumented step must cost nothing.
    assert!(edsr::obs::uninstall().is_none(), "stray sink installed");
    assert!(!edsr::obs::enabled());
    let mut observer = NoopObserver;
    let mut rng = seeded(7);
    let x1 = Matrix::randn(16, 16, 1.0, &mut rng);
    let x2 = Matrix::randn(16, 16, 1.0, &mut rng);

    // MLP backbone + BarlowTwins head (the image default).
    let mut mlp = ContinualModel::new(&ModelConfig::image(16), &mut rng);
    let n = steady_state_allocs(&mut mlp, &x1, &x2, &mut observer);
    assert_eq!(
        n, 0,
        "MLP/BarlowTwins steady-state step allocated {n} times"
    );

    // Conv stem: exercises the cached im2col/regroup gather maps.
    let shape = edsr::nn::ConvShape {
        channels: 1,
        height: 4,
        width: 4,
    };
    let mut conv = ContinualModel::new(&ModelConfig::conv_image(shape, 3), &mut rng);
    let n = steady_state_allocs(&mut conv, &x1, &x2, &mut observer);
    assert_eq!(n, 0, "conv steady-state step allocated {n} times");

    // SimSiam predictor variant (batch-norm + stop-gradient path).
    let mut sim = ContinualModel::new(&ModelConfig::tabular(vec![16]), &mut rng);
    let n = steady_state_allocs(&mut sim, &x1, &x2, &mut observer);
    assert_eq!(n, 0, "SimSiam steady-state step allocated {n} times");
}

/// A served engine behind the micro-batcher. Because the allocation
/// counter is the *global* allocator, the measured figure covers the
/// whole round trip — submitter swap, queue, batcher flush, eval-mode
/// forward, cache — across both threads.
fn serve_batcher(cache_capacity: usize) -> Batcher {
    let mut rng = seeded(31);
    let model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
    let mem = Matrix::randn(4, 16, 1.0, &mut rng);
    let reprs = model.represent_eval(&mem, 0);
    let snap = ServeSnapshot::capture(&model, reprs, vec![0; 4], "za", 1).unwrap();
    let engine = Engine::from_snapshot(snap, cache_capacity).unwrap();
    Batcher::new(engine, 2, Duration::from_micros(50))
}

#[test]
fn warm_serve_embed_is_alloc_free_on_hits_and_bounded_on_misses() {
    let _serialized = ALLOC_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("EDSR_THREADS", "1");
    assert!(edsr::obs::uninstall().is_none(), "stray sink installed");

    // --- Cache-hit path: repeated input, zero steady-state allocations.
    // The full robustness config is live — deadline checks, bounded
    // queue, and a rotation watcher (quiescent: nothing new to load and
    // an hour-long poll, so the watcher thread is parked off the hot
    // path) — and the steady state must STILL be allocation-free.
    let mut rng = seeded(31);
    let model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
    let mem = Matrix::randn(4, 16, 1.0, &mut rng);
    let reprs = model.represent_eval(&mem, 0);
    let snap = ServeSnapshot::capture(&model, reprs, vec![0; 4], "za", 1).unwrap();
    let dir = std::env::temp_dir().join(format!("edsr-za-rotate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("za.task0001.snapshot");
    snap.save(&snap_path).unwrap();
    let engine = Engine::from_snapshot(snap, 8).unwrap();
    let cfg = ServerConfig {
        max_batch: 2,
        window: Duration::from_micros(50),
        deadline: Some(Duration::from_secs(30)),
        queue_cap: 64,
        ..ServerConfig::default()
    };
    let mut batcher = Batcher::with_config(engine, &cfg);
    batcher.start_rotation(RotateConfig {
        dir: dir.clone(),
        poll: Duration::from_secs(3600),
        cache_capacity: 8,
        current: Some(snap_path),
        quantize: false,
    });
    let mut sub = batcher.submitter();
    let mut input: Vec<f32> = (0..16).map(|i| i as f32 * 0.1).collect();
    let mut out = Vec::new();
    for _ in 0..4 {
        sub.embed(0, &mut input, &mut out).expect("warmup embed");
    }
    let before = allocations();
    for _ in 0..8 {
        sub.embed(0, &mut input, &mut out).expect("hit embed");
    }
    let hit_allocs = allocations() - before;
    assert_eq!(
        hit_allocs, 0,
        "warm cache-hit embeds allocated {hit_allocs} times"
    );
    batcher.stop();
    let _ = std::fs::remove_dir_all(&dir);

    // --- Cache-miss path: rotate more distinct inputs than the cache
    // holds, so every request misses, forwards, and evicts. Warm rounds
    // fill the recycled entry buffers; after that the per-round count
    // must be constant (and small) — eviction recycling, the staging
    // matrix, and the workspace pools hold steady.
    let mut batcher = serve_batcher(2);
    let mut sub = batcher.submitter();
    let mut rng = seeded(33);
    let rotation: Vec<Vec<f32>> = (0..4)
        .map(|_| Matrix::randn(1, 16, 1.0, &mut rng).row(0).to_vec())
        .collect();
    // Stable caller buffers: the swap protocol circulates them with the
    // slot's, so after warm-up no round allocates for request plumbing.
    let mut input: Vec<f32> = Vec::new();
    let mut out: Vec<f32> = Vec::new();
    let mut round = |input: &mut Vec<f32>, out: &mut Vec<f32>| {
        for probe in &rotation {
            input.clear();
            input.extend_from_slice(probe);
            sub.embed(0, input, out).expect("miss embed");
        }
    };
    for _ in 0..3 {
        round(&mut input, &mut out);
    }
    let before = allocations();
    round(&mut input, &mut out);
    let first = allocations() - before;
    let before = allocations();
    round(&mut input, &mut out);
    let second = allocations() - before;
    assert_eq!(
        first, second,
        "miss-path allocations not constant per round ({first} vs {second})"
    );
    assert!(
        first <= 16,
        "miss-path rounds allocate too much: {first} per 4 embeds"
    );
    batcher.stop();
}

#[test]
fn warm_quantized_serve_embed_is_alloc_free_on_hits() {
    let _serialized = ALLOC_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("EDSR_THREADS", "1");
    assert!(edsr::obs::uninstall().is_none(), "stray sink installed");

    // Same shape as the f32 hit-path test above, served on the int8
    // backend: the quantized engine owns its scratch (the int8 GEMM
    // workspace, the i8 query buffer, the f32 staging row), so once the
    // LRU cache and those buffers are warm, repeated embeds through the
    // micro-batcher must not touch the allocator at all.
    let mut rng = seeded(31);
    let model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
    let mem = Matrix::randn(4, 16, 1.0, &mut rng);
    let reprs = model.represent_eval(&mem, 0);
    let snap = ServeSnapshot::capture(&model, reprs, vec![0; 4], "za", 1).unwrap();
    let quant = quantize_serve_snapshot(&snap).unwrap();
    let engine = Engine::from_quant_snapshot(quant, 8).unwrap();
    assert!(engine.quantized());
    let mut batcher = Batcher::new(engine, 2, Duration::from_micros(50));
    let mut sub = batcher.submitter();
    let mut input: Vec<f32> = (0..16).map(|i| i as f32 * 0.1).collect();
    let mut out = Vec::new();
    for _ in 0..4 {
        sub.embed(0, &mut input, &mut out).expect("warmup embed");
    }
    let before = allocations();
    for _ in 0..8 {
        sub.embed(0, &mut input, &mut out).expect("hit embed");
    }
    let hit_allocs = allocations() - before;
    assert_eq!(
        hit_allocs, 0,
        "warm quantized cache-hit embeds allocated {hit_allocs} times"
    );
    batcher.stop();
}
