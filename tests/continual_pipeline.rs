//! Integration tests: full continual-learning pipelines across every
//! crate. These exercise the exact code paths the experiment harness
//! uses, on a tiny preset so they stay fast in debug builds.

use edsr::cl::{
    run_multitask, Cassle, ContinualModel, Der, Finetune, LinReplay, Lump, Method, ModelConfig,
    RunBuilder, Si, TrainConfig,
};
use edsr::core::{Edsr, EdsrConfig, ReplayLoss, SelectionStrategy};
use edsr::data::{tabular_sequence, test_sim, TabularConfig, TABULAR_SPECS};
use edsr::tensor::rng::seeded;

fn quick_cfg() -> TrainConfig {
    let mut cfg = TrainConfig::image();
    cfg.epochs_per_task = 8;
    cfg.batch_size = 32;
    cfg.replay_batch = 6;
    cfg.multitask_epoch_multiplier = 1;
    cfg
}

fn run_method(method: &mut dyn Method, seed: u64, cfg: &TrainConfig) -> edsr::cl::RunResult {
    let preset = test_sim();
    let mut data_rng = seeded(seed);
    let (seq, augs) = preset.build_with_augmenters(&mut data_rng);
    let mut model = ContinualModel::new(
        &ModelConfig::image(preset.grid.dim()),
        &mut seeded(seed + 1),
    );
    let mut run_rng = seeded(seed + 2);
    RunBuilder::new(cfg)
        .run(method, &mut model, &mut &seq, &augs, &mut run_rng)
        .expect("run")
}

#[test]
fn edsr_full_run_produces_sane_metrics() {
    let preset = test_sim();
    let cfg = quick_cfg();
    let mut edsr = Edsr::paper_default(preset.per_task_budget(), 6, preset.noise_neighbors);
    let result = run_method(&mut edsr, 100, &cfg);

    assert_eq!(result.matrix.num_increments(), preset.num_tasks());
    assert!(result.matrix.final_acc() > 0.3, "accuracy implausibly low");
    assert!(result.matrix.final_acc() <= 1.0);
    assert!(result.matrix.final_fgt() >= 0.0);
    // Memory filled: per-task budget × number of increments.
    assert_eq!(
        edsr.memory_len(),
        preset.per_task_budget() * preset.num_tasks()
    );
    // Every stored item carries its representation cache and a finite
    // noise magnitude.
    assert!(edsr
        .memory()
        .items()
        .iter()
        .all(|i| i.noise_scale.is_finite() && i.stored_features.is_some()));
    assert!(result.task_losses.iter().all(|l| l.is_finite()));
}

#[test]
fn every_baseline_runs_end_to_end() {
    let preset = test_sim();
    let mut cfg = quick_cfg();
    cfg.epochs_per_task = 2;
    let budget = preset.per_task_budget();
    let methods: Vec<Box<dyn Method>> = vec![
        Box::new(Finetune::new()),
        Box::new(Si::new(0.1)),
        Box::new(Der::new(budget, 6, 0.5)),
        Box::new(Lump::new(budget)),
        Box::new(Cassle::new()),
        Box::new(LinReplay::new(budget, 6, 1.0)),
        Box::new(Edsr::paper_default(budget, 6, 3)),
    ];
    for mut m in methods {
        let name = m.name();
        let result = run_method(m.as_mut(), 200, &cfg);
        assert_eq!(result.method, name);
        assert_eq!(result.matrix.num_increments(), preset.num_tasks());
        assert!(result.matrix.final_acc() > 0.0, "{name}: zero accuracy");
    }
}

#[test]
fn runs_are_seed_deterministic() {
    let cfg = quick_cfg();
    let mut a = Edsr::paper_default(4, 6, 3);
    let mut b = Edsr::paper_default(4, 6, 3);
    let ra = run_method(&mut a, 300, &cfg);
    let rb = run_method(&mut b, 300, &cfg);
    for i in 0..ra.matrix.num_increments() {
        for j in 0..=i {
            assert_eq!(
                ra.matrix.get(i, j),
                rb.matrix.get(i, j),
                "nondeterminism at A_({i},{j})"
            );
        }
    }
}

#[test]
fn different_seeds_differ() {
    let cfg = quick_cfg();
    let mut a = Finetune::new();
    let mut b = Finetune::new();
    let ra = run_method(&mut a, 400, &cfg);
    let rb = run_method(&mut b, 500, &cfg);
    let same = (0..ra.matrix.num_increments()).all(|i| ra.matrix.get(i, i) == rb.matrix.get(i, i));
    assert!(
        !same,
        "two different seeds produced identical accuracy diagonals"
    );
}

#[test]
fn replay_loss_variants_all_train() {
    let preset = test_sim();
    let mut cfg = quick_cfg();
    cfg.epochs_per_task = 3;
    for loss in [
        ReplayLoss::None,
        ReplayLoss::Css,
        ReplayLoss::Dis,
        ReplayLoss::Rpl,
    ] {
        let mut c = EdsrConfig::paper_default(preset.per_task_budget(), 6, 3);
        c.replay_loss = loss;
        let mut m = Edsr::new(c);
        let result = run_method(&mut m, 600, &cfg);
        assert!(
            result.matrix.final_acc() > 0.0,
            "replay {loss:?} produced zero accuracy"
        );
    }
}

#[test]
fn all_selection_strategies_fill_memory() {
    let preset = test_sim();
    let mut cfg = quick_cfg();
    cfg.epochs_per_task = 2;
    for strategy in [
        SelectionStrategy::Random,
        SelectionStrategy::Distant,
        SelectionStrategy::KMeans,
        SelectionStrategy::MinVar,
        SelectionStrategy::HighEntropy,
        SelectionStrategy::TraceGreedy,
    ] {
        let mut c = EdsrConfig::paper_default(preset.per_task_budget(), 6, 3);
        c.selection = strategy;
        c.min_var_views = 2;
        let mut m = Edsr::new(c);
        let _ = run_method(&mut m, 700, &cfg);
        assert_eq!(
            m.memory_len(),
            preset.per_task_budget() * preset.num_tasks(),
            "{strategy:?} under-filled the memory"
        );
    }
}

#[test]
fn multitask_runs_and_reports_per_task_accuracy() {
    let preset = test_sim();
    let cfg = quick_cfg();
    let mut data_rng = seeded(800);
    let (seq, augs) = preset.build_with_augmenters(&mut data_rng);
    let mut model = ContinualModel::new(&ModelConfig::image(preset.grid.dim()), &mut seeded(801));
    let mut run_rng = seeded(802);
    let mt =
        run_multitask(&mut model, &mut &seq, &augs, &cfg, &mut run_rng).expect("run_multitask");
    assert_eq!(mt.per_task_acc.len(), preset.num_tasks());
    assert!(mt.acc > 0.3 && mt.acc <= 1.0);
}

#[test]
fn tabular_stream_with_heterogeneous_adapters() {
    let data_cfg = TabularConfig {
        size_divisor: 200,
        ..Default::default()
    };
    let mut data_rng = seeded(900);
    let seq = tabular_sequence(&data_cfg, &mut data_rng);
    let augs = edsr::cl::tabular_augmenters(&mut &seq, 0.4).expect("tabular augmenters");
    let input_dims: Vec<usize> = TABULAR_SPECS.iter().map(|s| s.input_dim).collect();
    let mut model = ContinualModel::new(&ModelConfig::tabular(input_dims), &mut seeded(901));
    let mut cfg = TrainConfig::tabular();
    cfg.epochs_per_task = 4;
    let mut edsr = Edsr::paper_default(2, 4, 3);
    let mut run_rng = seeded(902);
    let result = RunBuilder::new(&cfg)
        .run(&mut edsr, &mut model, &mut &seq, &augs, &mut run_rng)
        .expect("tabular run");
    assert_eq!(result.matrix.num_increments(), 5);
    // Binary classification: even a weak model beats 35% on imbalanced
    // test splits.
    assert!(
        result.matrix.final_acc() > 0.35,
        "acc {:.3}",
        result.matrix.final_acc()
    );
    // Memory holds items from several different-dimensional increments.
    let dims: std::collections::BTreeSet<usize> = edsr
        .memory()
        .items()
        .iter()
        .map(|i| i.input.len())
        .collect();
    assert!(
        dims.len() >= 3,
        "expected heterogeneous memory, got dims {dims:?}"
    );
}

#[test]
fn forgetting_metrics_are_consistent_with_matrix() {
    let cfg = quick_cfg();
    let mut m = Finetune::new();
    let result = run_method(&mut m, 1000, &cfg);
    let n = result.matrix.num_increments();
    // Fgt is the mean of per-task forgetting at the final row.
    let manual: f32 = (0..n - 1)
        .map(|j| result.matrix.forgetting(n - 1, j))
        .sum::<f32>()
        / (n - 1) as f32;
    assert!((result.matrix.final_fgt() - manual).abs() < 1e-6);
    // New-task accuracies are the diagonal.
    let diag = result.matrix.new_task_accuracies();
    for (i, &a) in diag.iter().enumerate() {
        assert_eq!(a, result.matrix.get(i, i));
    }
}
