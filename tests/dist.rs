//! Integration tests for edsr-dist: 1 PS + N workers must reproduce the
//! single-process trainer **bit-identically** — same final parameter
//! bytes, same accuracy matrix, same per-task losses — at every worker
//! count, and under wire chaos (DESIGN.md §14).

use edsr::cl::{AccuracyMatrix, ContinualModel, ModelConfig, RunBuilder};
use edsr::dist::{build_method, preset_for, run_local, DistSpec, PsConfig, WorkerOptions};
use edsr::nn::io::params_to_bytes;
use edsr::serve::WireFaultPlan;
use edsr::tensor::rng::seeded;

/// The canonical spec every test runs: the tiny `test` preset with the
/// paper method, short enough for debug builds.
fn spec() -> DistSpec {
    let mut train = edsr::cl::TrainConfig::image();
    train.epochs_per_task = 2;
    DistSpec::new("test", "edsr", 11, &train, None)
}

struct Reference {
    params: Vec<u8>,
    matrix: AccuracyMatrix,
    task_losses: Vec<f32>,
}

/// Runs the exact single-process pipeline `edsr run` uses for `spec`.
fn in_process(spec: &DistSpec) -> Reference {
    let preset = preset_for(spec).expect("preset");
    let (seq, augs) = preset.build_with_augmenters(&mut seeded(spec.seed));
    let mut model = ContinualModel::new(
        &ModelConfig::image(preset.grid.dim()),
        &mut seeded(spec.seed + 1000),
    );
    let mut method = build_method(spec, &preset).expect("method");
    let mut rng = seeded(spec.seed + 2000);
    let result = RunBuilder::new(&spec.train)
        .run(method.as_mut(), &mut model, &mut &seq, &augs, &mut rng)
        .expect("in-process run");
    Reference {
        params: params_to_bytes(&model.params),
        matrix: result.matrix,
        task_losses: result.task_losses,
    }
}

fn assert_matches_reference(
    reference: &Reference,
    report: &edsr::dist::DistRunReport,
    label: &str,
) {
    assert_eq!(
        report.params_payload, reference.params,
        "{label}: final parameter bytes differ from the in-process run"
    );
    assert_eq!(
        report.matrix.num_increments(),
        reference.matrix.num_increments(),
        "{label}: increment count"
    );
    for i in 0..reference.matrix.num_increments() {
        for j in 0..=i {
            assert_eq!(
                report.matrix.get(i, j),
                reference.matrix.get(i, j),
                "{label}: accuracy A_({i},{j}) differs"
            );
        }
    }
    assert_eq!(
        report.task_losses, reference.task_losses,
        "{label}: per-task mean losses differ"
    );
}

#[test]
fn single_worker_is_bit_identical_to_in_process() {
    let spec = spec();
    let reference = in_process(&spec);
    let (report, workers) =
        run_local(&spec, 1, PsConfig::default(), |_| WorkerOptions::default()).expect("dist run");
    assert_matches_reference(&reference, &report, "1 worker");
    assert_eq!(workers.len(), 1);
    assert!(report.stats.steps > 0, "no training steps ran");
    assert_eq!(report.final_version, report.stats.steps + 1);
    // Every matrix cell was computed exactly once by some worker.
    let n = report.matrix.num_increments() as u64;
    assert_eq!(report.stats.eval_cells, n * (n + 1) / 2);
}

#[test]
fn worker_count_does_not_change_results() {
    let spec = spec();
    let reference = in_process(&spec);
    for n in [2usize, 3] {
        let (report, workers) =
            run_local(&spec, n, PsConfig::default(), |_| WorkerOptions::default())
                .expect("dist run");
        assert_matches_reference(&reference, &report, &format!("{n} workers"));
        assert_eq!(workers.len(), n);
        // The work actually spread: between them the workers computed
        // every step and every eval cell.
        let steps: u64 = workers.iter().map(|w| w.steps).sum();
        assert!(steps >= report.stats.steps, "steps went missing");
        let cells: u64 = workers.iter().map(|w| w.eval_cells).sum();
        assert!(cells >= report.stats.eval_cells);
        // Boundary ops run redundantly on every worker (barrier-verified).
        for w in &workers {
            assert!(w.boundaries > 0, "worker {} ran no boundaries", w.worker_id);
        }
    }
}

#[test]
fn chaotic_wire_does_not_change_results() {
    let spec = spec();
    let reference = in_process(&spec);
    // Worker 0 gets a fresh fault plan (delays, partial I/O, corruption,
    // disconnects) for each of its first few connection attempts; worker 1
    // stays clean so the run always has a healthy participant.
    let opts = |w: usize| {
        if w == 0 {
            WorkerOptions {
                chaos: (0..6)
                    .map(|attempt| WireFaultPlan::seeded(0xD15C0 + attempt, 400, 5))
                    .collect(),
                ..WorkerOptions::default()
            }
        } else {
            WorkerOptions::default()
        }
    };
    let (report, workers) = run_local(&spec, 2, PsConfig::default(), opts).expect("chaos run");
    assert_matches_reference(&reference, &report, "chaos");
    let injected: u64 = workers.iter().map(|w| w.faults_injected).sum();
    assert!(injected > 0, "the fault plans never fired");
}
