//! Integration tests for the out-of-core streaming pipeline: shard
//! round-trip bit-identity against the in-RAM path (across thread
//! counts), the two-shard residency budget on a stream 4x its size, and
//! chaos behaviour on corrupt/truncated shards.

use std::path::{Path, PathBuf};

use edsr::cl::{ContinualModel, Finetune, ModelConfig, RunBuilder, TrainConfig, TrainError};
use edsr::data::{
    build_scenario, write_shard_dir, DataError, ShardStream, TaskSequence, TaskSource,
};
use edsr::nn::io::params_to_bytes;
use edsr::tensor::rng::seeded;
use proptest::prelude::*;

fn quick_cfg() -> TrainConfig {
    let mut cfg = TrainConfig::image();
    cfg.epochs_per_task = 2;
    cfg.batch_size = 32;
    cfg.replay_batch = 6;
    cfg
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("edsr-streaming-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Trains Finetune over `source` and returns (params bytes, accuracy
/// matrix rows). Model/run RNGs depend only on `seed`, so two calls with
/// identical sources must agree bit-for-bit.
fn train_finetune(
    source: &mut dyn TaskSource,
    augs: &[edsr::data::Augmenter],
    seed: u64,
    cfg: &TrainConfig,
) -> (Vec<u8>, Vec<Vec<f32>>) {
    let mut model = ContinualModel::new(&ModelConfig::image(source.dim()), &mut seeded(seed + 1));
    let mut method = Finetune::new();
    let result = RunBuilder::new(cfg)
        .run(&mut method, &mut model, source, augs, &mut seeded(seed + 2))
        .expect("run");
    (
        params_to_bytes(&model.params),
        result.matrix.rows().to_vec(),
    )
}

fn sharded(seq: &TaskSequence, dir: &Path) -> ShardStream {
    write_shard_dir(dir, seq).expect("write shards");
    ShardStream::open(dir).expect("open stream")
}

proptest! {
    // Each case trains 4 full (tiny) runs in debug mode; keep the case
    // count low — the seeds vary the scenario data, model init, and
    // batch order all at once.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// A `TaskSequence` round-tripped through `EDSRDS01` shards and
    /// streamed back trains bit-identically (final params bytes AND the
    /// full accuracy matrix) to the in-RAM path, at 1, 2, and 7 threads.
    #[test]
    fn shard_round_trip_trains_bit_identically_across_threads(seed in 0u64..10_000) {
        let scenario = build_scenario("class-incremental", seed).expect("scenario");
        let cfg = quick_cfg();
        let (ram_params, ram_matrix) =
            train_finetune(&mut &scenario.seq, &scenario.augmenters, seed, &cfg);

        let dir = scratch_dir(&format!("prop-{seed}"));
        for threads in [1usize, 2, 7] {
            let mut stream = sharded(&scenario.seq, &dir);
            let (params, matrix) = edsr::par::with_threads(threads, || {
                train_finetune(&mut stream, &scenario.augmenters, seed, &cfg)
            });
            prop_assert_eq!(
                &params, &ram_params,
                "params diverged at {} threads", threads
            );
            prop_assert_eq!(
                &matrix, &ram_matrix,
                "accuracy matrix diverged at {} threads", threads
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// A stream four times larger than the loader's two-shard resident
/// budget trains end-to-end without ever holding a third shard, and the
/// final checkpoint is byte-identical to the same data trained from RAM.
#[test]
fn stream_4x_resident_budget_trains_within_two_shards() {
    let scenario = build_scenario("class-incremental", 11).expect("scenario");
    assert!(
        scenario.seq.len() >= 8,
        "need >= 4x the 2-shard budget, got {} shards",
        scenario.seq.len()
    );
    let cfg = quick_cfg();
    let (ram_params, ram_matrix) =
        train_finetune(&mut &scenario.seq, &scenario.augmenters, 11, &cfg);

    let dir = scratch_dir("budget");
    let mut stream = sharded(&scenario.seq, &dir);
    let (stream_params, stream_matrix) =
        train_finetune(&mut stream, &scenario.augmenters, 11, &cfg);

    assert!(
        stream.resident_peak() <= 2,
        "loader held {} shards resident",
        stream.resident_peak()
    );
    assert!(
        stream.prefetch_hits() > 0,
        "prefetcher never got ahead of the consumer"
    );
    assert_eq!(stream_params, ram_params, "checkpoint bytes diverged");
    assert_eq!(stream_matrix, ram_matrix, "accuracy matrix diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupting one shard surfaces a structured `TrainError::Data` naming
/// the shard, and the run never trains on partial samples: training up
/// to the corrupt increment matches the clean run bit-for-bit.
#[test]
fn corrupt_shard_fails_structurally_mid_run() {
    let scenario = build_scenario("class-incremental", 17).expect("scenario");
    let cfg = quick_cfg();
    let dir = scratch_dir("chaos");
    write_shard_dir(&dir, &scenario.seq).expect("write shards");

    // Flip one payload byte in the middle of increment 3's shard.
    let victim = dir.join("task0003.shard");
    let mut bytes = std::fs::read(&victim).expect("read shard");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&victim, &bytes).expect("rewrite shard");

    let mut stream = ShardStream::open(&dir).expect("manifest still valid");
    let mut model = ContinualModel::new(
        &ModelConfig::image(scenario.seq.tasks[0].train.dim()),
        &mut seeded(18),
    );
    let mut method = Finetune::new();
    let err = RunBuilder::new(&cfg)
        .run(
            &mut method,
            &mut model,
            &mut stream,
            &scenario.augmenters,
            &mut seeded(19),
        )
        .expect_err("corrupt shard must fail the run");
    match &err {
        TrainError::Data(e) => {
            assert!(
                e.to_string().contains("task0003.shard"),
                "error does not name the corrupt shard: {e}"
            );
        }
        other => panic!("expected TrainError::Data, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncating a shard mid-file is also a structured error — the loader
/// must not hand back however many samples happened to decode.
#[test]
fn truncated_shard_never_yields_partial_samples() {
    let scenario = build_scenario("blurry", 23).expect("scenario");
    let dir = scratch_dir("truncate");
    write_shard_dir(&dir, &scenario.seq).expect("write shards");

    let victim = dir.join("task0002.shard");
    let bytes = std::fs::read(&victim).expect("read shard");
    std::fs::write(&victim, &bytes[..bytes.len() / 3]).expect("truncate shard");

    let mut stream = ShardStream::open(&dir).expect("manifest still valid");
    // Healthy shards before the truncation still stream fine...
    assert_eq!(
        stream.fetch(0).expect("shard 0 intact").train.len(),
        scenario.seq.tasks[0].train.len()
    );
    // ...the truncated one is an all-or-nothing structured error...
    match stream.fetch(2) {
        Err(DataError::Envelope { path, .. }) => {
            assert!(path.ends_with("task0002.shard"), "wrong path: {path:?}")
        }
        Err(other) => panic!("expected DataError::Envelope, got {other}"),
        Ok(task) => panic!(
            "truncated shard yielded {} partial samples",
            task.train.len()
        ),
    }
    // ...and the stream stays usable for later healthy shards.
    assert_eq!(
        stream.fetch(3).expect("shard 3 intact").train.len(),
        scenario.seq.tasks[3].train.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
