//! Chaos suite for the serve layer (DESIGN.md §13): the server must
//! survive torn and corrupt frames at *any* byte boundary, shed load
//! with bounded structured errors instead of hanging, answer every
//! request from exactly one coherent snapshot while rotating under live
//! traffic, resume from the newest *valid* snapshot after a kill, and
//! the client must ride through injected wire faults with its bounded
//! retry loop.
//!
//! Every fault here is deterministic: torn frames are enumerated at
//! every offset, corruption uses `edsr::cl::fault` helpers at fixed
//! offsets, and wire faults come from seeded [`WireFaultPlan`]s — a
//! failure replays exactly.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use edsr::cl::checkpoint::latest_valid_serve_snapshot;
use edsr::cl::fault::{flip_byte, truncate_file};
use edsr::cl::{quantize_serve_snapshot, ContinualModel, ModelConfig, ServeSnapshot};
use edsr::serve::protocol::{ERR_DEADLINE, ERR_OVERLOADED};
use edsr::serve::{
    serve, Client, Engine, Request, RetryPolicy, RotateConfig, ServeError, ServerConfig,
};
use edsr::tensor::rng::seeded;
use edsr::tensor::Matrix;

/// Serializes servers (and their obs emissions) across tests.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

const DIM: usize = 16;
const MEMORY_ROWS: usize = 6;

/// Deterministic model for a given seed (each seed = its own "snapshot
/// generation" with distinct weights, so answers identify their source).
fn model_for(seed: u64) -> ContinualModel {
    let mut rng = seeded(seed);
    ContinualModel::new(&ModelConfig::image(DIM), &mut rng)
}

fn snapshot_for(seed: u64) -> ServeSnapshot {
    let mut rng = seeded(seed);
    let model = ContinualModel::new(&ModelConfig::image(DIM), &mut rng);
    let mem = Matrix::randn(MEMORY_ROWS, DIM, 1.0, &mut rng);
    let reprs = model.represent_eval(&mem, 0);
    let tasks = (0..MEMORY_ROWS as u64).map(|i| i % 2).collect();
    ServeSnapshot::capture(&model, reprs, tasks, "chaos-test", 2).unwrap()
}

fn engine_for(seed: u64) -> Engine {
    Engine::from_snapshot(snapshot_for(seed), 64).unwrap()
}

/// The eval-mode embedding `model` would produce for `input` (the
/// serve path is bit-identical to this by the determinism contract).
fn expected_embedding(model: &ContinualModel, input: &[f32]) -> Vec<f32> {
    let probe = Matrix::from_vec(1, DIM, input.to_vec());
    model.represent_eval(&probe, 0).data().to_vec()
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("edsr-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A complete wire frame (length prefix + payload) for one request.
fn frame_for(req: &Request) -> Vec<u8> {
    let payload = req.encode();
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);
    frame
}

#[test]
fn torn_frames_at_every_byte_offset_never_crash_or_stall_the_server() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = ServerConfig {
        // A short stall cap so the keep-open probes below are dropped
        // inside the test budget.
        stall_cap: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let handle = serve(engine_for(11), ("127.0.0.1", 0), cfg).expect("bind");
    let addr = handle.addr();

    let frame = frame_for(&Request::Embed {
        task: 0,
        input: vec![0.5; DIM],
    });

    // Cut the frame at every byte boundary and hang up. The server must
    // treat each as a clean client death: no panic, no wedged worker.
    for cut in 0..frame.len() {
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.write_all(&frame[..cut]).unwrap();
        drop(raw);
    }

    // Keep-open torn frames: write a prefix and then go silent. The
    // stall cap must evict us — either a bare close or one structured
    // error frame followed by a close, never a thread pinned forever
    // by a slow-loris peer.
    for cut in [1usize, 4, frame.len() - 1] {
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.write_all(&frame[..cut]).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let start = Instant::now();
        let mut trailing = Vec::new();
        match raw.read_to_end(&mut trailing) {
            Ok(_) => {}
            Err(e) => assert!(
                matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
                ),
                "unexpected read failure: {e}"
            ),
        }
        if !trailing.is_empty() {
            // Whatever came back must be exactly one well-formed error
            // frame — never a partial response or garbage.
            assert!(trailing.len() >= 4, "short trailing bytes: {trailing:?}");
            let len = u32::from_le_bytes(trailing[..4].try_into().unwrap()) as usize;
            assert_eq!(trailing.len(), 4 + len, "exactly one frame then close");
            match edsr::serve::Response::decode(&trailing[4..]) {
                Ok((_, edsr::serve::Response::Error { .. })) => {}
                other => panic!("expected a structured error frame, got {other:?}"),
            }
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "stall cap did not evict a silent mid-frame peer in time"
        );
    }

    // After all that, a well-formed request still answers correctly.
    let mut client = Client::connect(addr).expect("connect");
    let emb = client.embed(0, &[0.5; DIM]).expect("server survived");
    assert_eq!(emb, expected_embedding(&model_for(11), &[0.5; DIM]));
    client.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn rotation_under_live_traffic_answers_from_exactly_one_snapshot() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = fresh_dir("rotate");
    let first = dir.join("chaos.task0001.snapshot");
    snapshot_for(21).save(&first).unwrap();

    let cfg = ServerConfig {
        rotate: Some(RotateConfig {
            dir: dir.clone(),
            poll: Duration::from_millis(5),
            cache_capacity: 64,
            current: Some(first),
            quantize: false,
        }),
        ..ServerConfig::default()
    };
    let handle = serve(engine_for(21), ("127.0.0.1", 0), cfg).expect("bind");
    let addr = handle.addr();

    let input = [0.25f32; DIM];
    let old = expected_embedding(&model_for(21), &input);
    let new = expected_embedding(&model_for(22), &input);
    assert_ne!(old, new, "generations must be distinguishable");

    // Hammer the server while the second generation lands. Every answer
    // must be bit-identical to exactly one generation — never a blend.
    let mut client = Client::connect(addr).expect("connect");
    let mut saw_old = 0u64;
    let mut saw_new = 0u64;
    let mut exported = false;
    let deadline = Instant::now() + Duration::from_secs(10);
    while saw_new < 5 && Instant::now() < deadline {
        let emb = client.embed(0, &input).expect("embed under rotation");
        if emb == old {
            saw_old += 1;
        } else if emb == new {
            saw_new += 1;
        } else {
            panic!("answer matches neither snapshot generation");
        }
        if !exported && saw_old >= 3 {
            // Export generation 2 mid-traffic, exactly as `edsr run
            // --serve-snapshot` would: write + fsync + atomic rename.
            snapshot_for(22)
                .save(dir.join("chaos.task0002.snapshot"))
                .unwrap();
            exported = true;
        }
    }
    assert!(saw_old >= 3, "expected some pre-rotation answers");
    assert!(saw_new >= 5, "rotation to the new snapshot never happened");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.rotations, 1);
    client.shutdown().expect("shutdown");
    handle.join().expect("join");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_with_bounded_structured_errors_not_hangs() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let clients = 4usize;
    let cfg = ServerConfig {
        // One queue slot and a wide window: while the first request
        // waits for its flush, everyone else must be shed immediately.
        queue_cap: 1,
        max_batch: 8,
        window: Duration::from_millis(300),
        deadline: Some(Duration::from_millis(1500)),
        max_connections: clients + 1,
        ..ServerConfig::default()
    };
    let handle = serve(engine_for(31), ("127.0.0.1", 0), cfg).expect("bind");
    let addr = handle.addr();

    let barrier = Arc::new(Barrier::new(clients));
    let ok = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let (barrier, ok, shed) = (barrier.clone(), ok.clone(), shed.clone());
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                let start = Instant::now();
                match client.embed(0, &[0.125; DIM]) {
                    Ok(emb) => {
                        assert_eq!(emb, expected_embedding(&model_for(31), &[0.125; DIM]));
                        ok.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(ServeError::Rejected {
                        code,
                        retry_after_ms,
                        ..
                    }) => {
                        assert!(
                            code == ERR_OVERLOADED || code == ERR_DEADLINE,
                            "unexpected rejection code {code}"
                        );
                        if code == ERR_OVERLOADED {
                            assert!(retry_after_ms >= 1, "overload must carry a retry hint");
                        }
                        shed.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(other) => panic!("unexpected failure mode: {other}"),
                }
                // Bounded: shed answers come back well before
                // deadline + window + grace, never as a hang.
                assert!(
                    start.elapsed() < Duration::from_secs(5),
                    "request neither answered nor shed in bounded time"
                );
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
    let (ok, shed) = (ok.load(Ordering::SeqCst), shed.load(Ordering::SeqCst));
    assert_eq!(ok + shed, clients as u64);
    assert!(ok >= 1, "the queued request must still be answered");
    assert!(
        shed >= 1,
        "a 1-slot queue under a {clients}-way burst must shed"
    );

    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.rejected_deadline + stats.rejected_overload, shed);
    client.shutdown().expect("shutdown");
    let report = handle.join().expect("join");
    assert_eq!(report.rejected_overload + report.rejected_deadline, shed);
}

#[test]
fn restart_resumes_from_newest_valid_snapshot_with_zero_accepted_loss() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = fresh_dir("restart");
    let input = [0.75f32; DIM];

    // Generation 1 serves, answers, and is shut down ("killed" after a
    // clean drain — the drain guarantee is what zero-loss means here:
    // every request the server accepted was answered before exit).
    snapshot_for(41)
        .save(dir.join("chaos.task0001.snapshot"))
        .unwrap();
    let (path, snap) = latest_valid_serve_snapshot(&dir)
        .expect("no unreadable candidates")
        .expect("gen 1 visible");
    assert!(path.ends_with("chaos.task0001.snapshot"));
    let handle = serve(
        Engine::from_any(snap, 64).unwrap(),
        ("127.0.0.1", 0),
        ServerConfig::default(),
    )
    .expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut answered = 0u64;
    for _ in 0..3 {
        let emb = client.embed(0, &input).expect("gen 1 embed");
        assert_eq!(emb, expected_embedding(&model_for(41), &input));
        answered += 1;
    }
    client.shutdown().expect("shutdown");
    let report = handle.join().expect("join");
    assert_eq!(
        report.requests,
        answered + 1, // + the shutdown request itself
        "every accepted request must be answered before exit"
    );

    // While "down", a newer generation lands — and then gets mangled
    // two different ways: a bit flip and a truncation. Two decoys also
    // sort *newer* than the good file.
    snapshot_for(42)
        .save(dir.join("chaos.task0002.snapshot"))
        .unwrap();
    let corrupt = dir.join("chaos.task0003.snapshot");
    snapshot_for(43).save(&corrupt).unwrap();
    let len = std::fs::metadata(&corrupt).unwrap().len() as usize;
    flip_byte(&corrupt, len / 2, 0xFF).unwrap();
    let truncated = dir.join("chaos.task0004.snapshot");
    snapshot_for(44).save(&truncated).unwrap();
    truncate_file(&truncated, len / 3).unwrap();

    // Restart: the scan must skip both decoys and resume from gen 2.
    let (path, snap) = latest_valid_serve_snapshot(&dir)
        .expect("no unreadable candidates")
        .expect("a valid snapshot survives");
    assert!(
        path.ends_with("chaos.task0002.snapshot"),
        "restart must pick the newest VALID snapshot, got {}",
        path.display()
    );
    let handle = serve(
        Engine::from_any(snap, 64).unwrap(),
        ("127.0.0.1", 0),
        ServerConfig::default(),
    )
    .expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let emb = client.embed(0, &input).expect("gen 2 embed");
    assert_eq!(emb, expected_embedding(&model_for(42), &input));
    client.shutdown().expect("shutdown");
    let report = handle.join().expect("join");
    assert_eq!(report.requests, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unreadable_decoy_aborts_the_scan_naming_the_offending_file() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = fresh_dir("unreadable");
    snapshot_for(61)
        .save(dir.join("chaos.task0001.snapshot"))
        .unwrap();

    // A candidate that cannot even be *read*, as opposed to the corrupt
    // decoys in the restart test (which read fine, fail validation, and
    // are skipped). chmod 000 is no barrier under root, so the decoy is
    // a directory wearing a snapshot name: opening it for read fails
    // with EISDIR, a genuine I/O error. It sorts newer than the valid
    // file, exactly the case that must NOT silently fall back to stale
    // data.
    let decoy = dir.join("zzz.task9999.snapshot");
    std::fs::create_dir_all(&decoy).unwrap();
    let err = latest_valid_serve_snapshot(&dir)
        .expect_err("an unreadable candidate must abort the scan, not be skipped");
    assert_eq!(err.path, decoy, "error must name the offending candidate");
    assert!(
        err.to_string().contains("zzz.task9999.snapshot"),
        "operator-facing message must carry the path, got: {err}"
    );

    // Fixing the decoy restores the normal newest-valid scan.
    std::fs::remove_dir(&decoy).unwrap();
    let (path, snap) = latest_valid_serve_snapshot(&dir)
        .expect("scan readable again")
        .expect("valid snapshot visible");
    assert!(path.ends_with("chaos.task0001.snapshot"));
    drop(Engine::from_any(snap, 64).expect("snapshot serves"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rotation_hot_swaps_v1_to_v2_quantized_under_live_traffic() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = fresh_dir("rotate-quant");
    let first = dir.join("chaos.task0001.snapshot");
    snapshot_for(71).save(&first).unwrap();

    let cfg = ServerConfig {
        rotate: Some(RotateConfig {
            dir: dir.clone(),
            poll: Duration::from_millis(5),
            cache_capacity: 64,
            current: Some(first),
            quantize: false,
        }),
        ..ServerConfig::default()
    };
    let handle = serve(engine_for(71), ("127.0.0.1", 0), cfg).expect("bind");
    let addr = handle.addr();
    let input = [0.25f32; DIM];
    let old = expected_embedding(&model_for(71), &input);

    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(
        client.stats().expect("stats").quantized,
        0,
        "generation 1 serves on the f32 backend"
    );
    assert_eq!(client.embed(0, &input).expect("gen 1 embed"), old);

    // Generation 2 lands as a v2 quantized export — the same file `edsr
    // run --serve-snapshot --quantize` writes — into the same rotation
    // namespace the v1 file lives in. Its expected answer comes from an
    // in-process quantized engine: the int8 path is bit-deterministic,
    // so the served embedding must match it exactly.
    let quant = quantize_serve_snapshot(&snapshot_for(72)).expect("quantize gen 2");
    let mut reference = Engine::from_quant_snapshot(quant.clone(), 64).expect("reference engine");
    let mut new = Vec::new();
    reference
        .embed_into(0, &input, &mut new)
        .expect("reference embed");
    assert_ne!(old, new, "generations must be distinguishable");
    quant.save(dir.join("chaos.task0002.snapshot")).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    let mut swapped = false;
    while Instant::now() < deadline {
        let emb = client.embed(0, &input).expect("embed under rotation");
        if emb == new {
            swapped = true;
            break;
        }
        assert_eq!(emb, old, "answer matches neither snapshot generation");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(swapped, "rotation to the v2 snapshot never happened");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.rotations, 1);
    assert_eq!(
        stats.quantized, 1,
        "post-rotation engine must answer on the int8 backend"
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("join");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_rides_through_injected_wire_faults_with_bounded_retries() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Faults on BOTH ends: the server wraps every accepted stream in a
    // seeded plan, and the client wraps every connection in its own.
    let cfg = ServerConfig {
        fault_seed: Some(7),
        ..ServerConfig::default()
    };
    let handle = serve(engine_for(51), ("127.0.0.1", 0), cfg).expect("bind");
    let addr = handle.addr();

    let policy = RetryPolicy {
        max_retries: 10,
        backoff: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(40),
        jitter_seed: 0xC0FFEE,
        // A corrupted request frame comes back as a server-side
        // rejection; embeds are idempotent, so just resend.
        retry_rejections: true,
    };
    let mut client = Client::connect_chaos(addr, policy, 900).expect("connect");
    for round in 0..12u32 {
        let input = vec![round as f32 * 0.1; DIM];
        let emb = client.embed(0, &input).expect("embed through chaos");
        // Response frames can be corrupted in flight (no payload
        // checksum on the wire), so assert shape, not bits.
        assert_eq!(emb.len(), engine_for(51).repr_dim());
    }
    assert!(
        client.retries() > 0,
        "the seeded fault plans should have forced at least one retry"
    );

    // Even a fault-free client talks through the server's fault-wrapped
    // stream here, so the shutdown ack itself can be lost. Shutdown is
    // deliberately non-retryable in the client (a lost ack may still
    // have flipped the drain flag); model the operator instead: retry
    // on fresh connections until one ack lands or connects are refused.
    drop(client);
    let mut acked = false;
    for _ in 0..50 {
        match Client::connect_with(addr, RetryPolicy::retries(5)) {
            Err(_) => break, // listener gone: drain already started
            Ok(mut c) => {
                if c.shutdown().is_ok() {
                    acked = true;
                    break;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let report = handle.join().expect("join");
    assert!(
        acked || report.requests > 0,
        "server neither acknowledged shutdown nor drained"
    );
}
