//! SIMD ISA dispatch equality on serve snapshot fixtures (DESIGN.md §15).
//!
//! The serving path promises that retrieval results never depend on the
//! host: the distance kernels accumulate in the canonical 8-lane order at
//! every ISA level. These tests pin that promise to the real serving
//! artifacts — a captured `ServeSnapshot`'s memory representations and
//! eval-mode query embeddings — rather than synthetic vectors:
//!
//! 1. the raw per-row `dot` / `sq_euclidean` vtable entries agree
//!    bit-for-bit with the scalar kernel for every supported ISA, and
//! 2. a full `knn_search_batch` (both metrics) returns identical neighbor
//!    lists — same indices, same score bits — whether the process pins
//!    `EDSR_ISA` to `scalar` or to a SIMD level.
//!
//! Unsupported ISA levels are skipped loudly, never silently passed.
//! Test 2 mutates the process-global ISA selection, so it lives in its
//! own integration binary; test 1 only uses explicit vtables and is safe
//! to run concurrently with it.

use edsr::cl::{ContinualModel, ModelConfig, ServeSnapshot};
use edsr::linalg::{KnnQuery, Metric, Neighbor};
use edsr::tensor::rng::seeded;
use edsr::tensor::simd::{self, Isa, IsaRequest, Kernel};
use edsr::tensor::Matrix;

const DIM: usize = 16;
const MEMORY_ROWS: usize = 24;
const QUERIES: usize = 12;
const K: usize = 5;

/// Deterministic serve snapshot: seeded model + replay representations,
/// round-tripped through capture (the same fixture shape tests/serve.rs
/// drives the server with).
fn snapshot() -> ServeSnapshot {
    let mut rng = seeded(41);
    let model = ContinualModel::new(&ModelConfig::image(DIM), &mut rng);
    let mem = Matrix::randn(MEMORY_ROWS, DIM, 1.0, &mut rng);
    let reprs = model.represent_eval(&mem, 0);
    let tasks = (0..MEMORY_ROWS as u64).map(|i| i % 3).collect();
    ServeSnapshot::capture(&model, reprs, tasks, "simd-dispatch-test", 3).unwrap()
}

/// (memory representations, query embeddings) from the snapshot: the two
/// matrices a serving `knn` request actually scores against each other.
fn fixture() -> (Matrix, Matrix) {
    let snap = snapshot();
    let model = snap.restore_model().expect("restore model");
    let memory = snap.memory_reprs;
    let inputs = Matrix::randn(QUERIES, DIM, 1.0, &mut seeded(97));
    let queries = model.represent_eval(&inputs, 0);
    (memory, queries)
}

#[test]
fn per_row_distance_kernels_bit_identical_across_isas() {
    let (memory, queries) = fixture();
    let scalar = Kernel::for_isa(Isa::Scalar).expect("scalar kernel is always supported");
    for isa in [Isa::Avx2, Isa::Avx512] {
        let Some(kern) = Kernel::for_isa(isa) else {
            eprintln!(
                "SKIPPING per-row distance identity for {}: not supported on this host",
                isa.name()
            );
            continue;
        };
        for q in 0..queries.rows() {
            for r in 0..memory.rows() {
                let qr = queries.row(q);
                let mr = memory.row(r);
                let want = (scalar.sq_euclidean)(qr, mr);
                let got = (kern.sq_euclidean)(qr, mr);
                assert_eq!(
                    want.to_bits(),
                    got.to_bits(),
                    "sq_euclidean(q{q}, m{r}) diverged on {}: {want} vs {got}",
                    isa.name()
                );
                let want = (scalar.dot)(qr, mr);
                let got = (kern.dot)(qr, mr);
                assert_eq!(
                    want.to_bits(),
                    got.to_bits(),
                    "dot(q{q}, m{r}) diverged on {}: {want} vs {got}",
                    isa.name()
                );
            }
        }
    }
}

#[test]
fn knn_search_batch_matches_scalar_exactly_under_simd_dispatch() {
    let (memory, queries) = fixture();
    // Pin the process-global dispatch to one ISA and run both metrics
    // through the full batch path (scoring, top-k selection, ordering).
    let batch_with = |isa: Isa| -> Vec<Vec<Vec<Neighbor>>> {
        simd::set_isa(IsaRequest::Fixed(isa)).expect("ISA support checked by caller");
        [Metric::Euclidean, Metric::Cosine]
            .into_iter()
            .map(|metric| {
                KnnQuery::new(&memory, K)
                    .metric(metric)
                    .search_batch(&queries)
            })
            .collect()
    };
    let want = batch_with(Isa::Scalar);
    for isa in [Isa::Avx2, Isa::Avx512] {
        if !isa.supported() {
            eprintln!(
                "SKIPPING knn_search_batch identity for {}: not supported on this host",
                isa.name()
            );
            continue;
        }
        let got = batch_with(isa);
        for (m, (want_batch, got_batch)) in want.iter().zip(&got).enumerate() {
            assert_eq!(want_batch.len(), got_batch.len());
            for (q, (wn, gn)) in want_batch.iter().zip(got_batch).enumerate() {
                assert_eq!(wn.len(), gn.len(), "metric {m} query {q}: k mismatch");
                for (rank, (w, g)) in wn.iter().zip(gn).enumerate() {
                    assert_eq!(
                        w.index,
                        g.index,
                        "metric {m} query {q} rank {rank}: neighbor set depends on ISA {}",
                        isa.name()
                    );
                    assert_eq!(
                        w.score.to_bits(),
                        g.score.to_bits(),
                        "metric {m} query {q} rank {rank}: score bits depend on ISA {}",
                        isa.name()
                    );
                }
            }
        }
    }
    // Leave the process on runtime detection for any later test in this
    // binary.
    simd::set_isa(IsaRequest::Auto).expect("auto is always supported");
}
