//! Observability integration tests (DESIGN.md §11): the JSONL encoding
//! round-trips bit-exactly, spans stay balanced even when a run dies with
//! `TrainError::Diverged`, and a real 2-task EDSR run streams the
//! paper-level metrics (per-term losses, selection entropy) to a JSONL
//! file that parses back cleanly.
//!
//! The sink is process-global state, so every test here serializes on
//! one mutex.

use std::borrow::Cow;
use std::sync::Mutex;

use edsr::cl::ServeSnapshot;
use edsr::cl::{
    ContinualModel, FaultInjector, FaultPlan, Finetune, GuardConfig, ModelConfig, OptimizerKind,
    RunBuilder, TrainConfig, TrainError,
};
use edsr::core::Edsr;
use edsr::data::{Augmenter, Dataset, Task, TaskSequence};
use edsr::obs::{parse_jsonl, parse_line, Event, EventKind, RingSink};
use edsr::serve::server::{REJECT_DEADLINE, REJECT_OVERLOAD};
use edsr::serve::{Batcher, Client, Engine, RetryPolicy, RotateConfig, ServerConfig, SubmitError};
use edsr::tensor::rng::seeded;
use edsr::tensor::Matrix;
use proptest::prelude::*;

/// Serializes tests that install/uninstall the global sink.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Two-increment toy stream with clearly clustered 8-d inputs.
fn toy_sequence(seed: u64) -> TaskSequence {
    let mut rng = seeded(seed);
    let mut make_task = |offset: f32| {
        let mut inputs = Matrix::randn(24, 8, 0.2, &mut rng);
        let mut labels = Vec::new();
        for r in 0..24 {
            let class = r % 2;
            labels.push(class);
            inputs.add_at(r, class, offset + 2.0);
        }
        let data = Dataset::new("toy", inputs, labels);
        Task {
            train: data.clone(),
            test: data.subset(&(0..8).collect::<Vec<_>>()),
            classes: vec![0, 1],
        }
    };
    TaskSequence {
        name: "toy".into(),
        tasks: vec![make_task(0.0), make_task(1.0)],
    }
}

fn tiny_cfg() -> TrainConfig {
    TrainConfig {
        epochs_per_task: 2,
        batch_size: 8,
        replay_batch: 4,
        lr: 1e-3,
        momentum: 0.9,
        weight_decay: 0.0,
        optimizer: OptimizerKind::Adam,
        eval_k: 3,
        multitask_epoch_multiplier: 1,
        cosine_floor: 1.0,
    }
}

/// Names that stress the JSON escaper: slashes, quotes, control chars,
/// backslashes, and non-ASCII.
const NAMES: &[&str] = &[
    "loss/css",
    "pool/busy_ns",
    "quoted \"name\"",
    "tab\thard",
    "back\\slash",
    "line\nbreak",
    "grüße/σ",
];

const KINDS: &[EventKind] = &[
    EventKind::SpanEnter,
    EventKind::SpanExit,
    EventKind::Counter,
    EventKind::Gauge,
    EventKind::Histogram,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// serialize → parse → identical events (bit-exact values), and the
    /// wire format keeps its stable field order on every line.
    #[test]
    fn jsonl_round_trips_events(
        raw in proptest::collection::vec(
            (0u64..u64::MAX, 0usize..5, 0usize..7, 0u64..1 << 40, 0u64..u64::MAX),
            0..24,
        )
    ) {
        let events: Vec<Event> = raw
            .iter()
            .enumerate()
            .map(|(i, &(seq, kind, name, index, bits))| {
                let candidate = f64::from_bits(bits);
                Event {
                    seq: seq ^ i as u64,
                    kind: KINDS[kind],
                    name: Cow::Borrowed(NAMES[name]),
                    index,
                    // Non-finite payloads encode as null and decode as NaN
                    // (covered by unit tests); keep equality meaningful here.
                    value: if candidate.is_finite() {
                        candidate
                    } else {
                        bits as f64 * 1e-3
                    },
                }
            })
            .collect();
        let mut text = String::new();
        for e in &events {
            text.push_str(&e.to_json());
            text.push('\n');
        }
        for line in text.lines() {
            prop_assert!(line.starts_with("{\"seq\":"), "field order drifted: {line}");
            let kind_at = line.find("\"kind\":").unwrap_or(usize::MAX);
            let name_at = line.find("\"name\":").unwrap_or(0);
            prop_assert!(kind_at < name_at, "field order drifted: {line}");
            prop_assert_eq!(&parse_line(line).expect("line parses"),
                            &events[text.lines().position(|l| l == line).expect("line present")]);
        }
        let parsed = parse_jsonl(&text).expect("all lines parse");
        prop_assert_eq!(parsed, events);
    }
}

/// Walks events in order, pushing on `SpanEnter` and matching on
/// `SpanExit`; returns the maximum depth. Panics on imbalance.
fn check_span_balance(events: &[Event]) -> usize {
    let mut stack: Vec<(&str, u64)> = Vec::new();
    let mut max_depth = 0;
    for e in events {
        match e.kind {
            EventKind::SpanEnter => {
                stack.push((e.name.as_ref(), e.index));
                max_depth = max_depth.max(stack.len());
            }
            EventKind::SpanExit => {
                let (name, index) = stack
                    .pop()
                    .unwrap_or_else(|| panic!("exit of {}#{} with no open span", e.name, e.index));
                assert_eq!(
                    (name, index),
                    (e.name.as_ref(), e.index),
                    "mis-nested span exit"
                );
                assert!(e.value >= 0.0, "negative span duration");
            }
            _ => {}
        }
    }
    assert!(stack.is_empty(), "unclosed spans: {stack:?}");
    max_depth
}

/// Spans ride RAII guards, so the run/task/epoch/step nesting must stay
/// balanced even when the engine unwinds through `?` with a `Diverged`
/// error mid-epoch.
#[test]
fn spans_stay_balanced_when_a_run_diverges() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let seq = toy_sequence(70);
    let augs: Vec<Augmenter> = (0..seq.len()).map(|_| Augmenter::Identity).collect();
    let mut model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(71));
    // Fault every consecutive step of increment 0 so retries re-fault
    // until the bounded budget is exhausted.
    let plan = FaultPlan {
        faults: (0..8)
            .map(|s| edsr::cl::Fault::NanLoss { task: 0, step: s })
            .collect(),
    };
    let mut method = FaultInjector::new(Finetune::new(), plan);
    let cfg = tiny_cfg();
    let mut rng = seeded(72);

    let ring = RingSink::with_capacity(edsr::obs::DEFAULT_RING_CAPACITY);
    edsr::obs::install(Box::new(ring.clone()));
    let err = RunBuilder::new(&cfg)
        .guard(GuardConfig {
            max_retries: 2,
            ..GuardConfig::default()
        })
        .run(&mut method, &mut model, &mut &seq, &augs, &mut rng)
        .unwrap_err();
    edsr::obs::uninstall();

    assert!(matches!(err, TrainError::Diverged { .. }), "{err}");
    let events = ring.events();
    assert!(
        events.iter().any(|e| e.kind == EventKind::SpanEnter),
        "no spans recorded"
    );
    // run > task > epoch > step ⇒ depth at least 4 before the abort.
    let depth = check_span_balance(&events);
    assert!(depth >= 4, "expected nested spans, max depth {depth}");
    assert!(
        events
            .iter()
            .any(|e| e.kind == EventKind::Counter && e.name == "train/recovery"),
        "divergence recoveries not counted"
    );
}

/// End-to-end JSONL smoke: a 2-task EDSR run streams per-step loss terms
/// (`loss/css`, `loss/dis`, `loss/rpl`) and per-task selection entropy to
/// a metrics file, and the file parses back line-for-line.
#[test]
fn edsr_two_task_run_streams_paper_metrics_to_jsonl() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let seq = toy_sequence(73);
    let augs: Vec<Augmenter> = (0..seq.len()).map(|_| Augmenter::Identity).collect();
    let mut model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(74));
    let mut edsr = Edsr::paper_default(6, 4, 3);
    let cfg = tiny_cfg();
    let mut rng = seeded(75);

    let path = std::env::temp_dir().join(format!("edsr-obs-smoke-{}.jsonl", std::process::id()));
    edsr::obs::install_mode(edsr::obs::ObsMode::Jsonl, &path).expect("create metrics file");
    RunBuilder::new(&cfg)
        .run(&mut edsr, &mut model, &mut &seq, &augs, &mut rng)
        .expect("observed EDSR run");
    edsr::obs::uninstall();

    let text = std::fs::read_to_string(&path).expect("metrics file written");
    let events = parse_jsonl(&text).expect("every line parses");
    assert!(!events.is_empty(), "metrics file is empty");
    check_span_balance(&events);

    let count = |kind: EventKind, name: &str, index: u64| {
        events
            .iter()
            .filter(|e| e.kind == kind && e.name == name && e.index == index)
            .count()
    };
    // Per-step L_css and per-task selection entropy for both increments;
    // distillation and replay only exist once a frozen snapshot / memory
    // is in place, i.e. from increment 1 on.
    for task in 0..2u64 {
        assert!(
            count(EventKind::Gauge, "loss/css", task) > 0,
            "no loss/css for task {task}"
        );
        assert!(
            count(EventKind::Gauge, "select/entropy", task) == 1,
            "selection entropy missing for task {task}"
        );
        assert!(
            count(EventKind::Gauge, "train/loss", task) > 0,
            "no train/loss for task {task}"
        );
    }
    for term in ["loss/dis", "loss/rpl"] {
        assert!(
            count(EventKind::Gauge, term, 1) > 0,
            "no {term} on the second increment"
        );
        assert_eq!(count(EventKind::Gauge, term, 0), 0, "{term} before task 1");
    }
    // The selection trajectory grows one entry per greedily added sample.
    assert!(
        events
            .iter()
            .any(|e| e.kind == EventKind::Histogram && e.name == "select/entropy_trace"),
        "no selection-entropy trajectory"
    );
    let _ = std::fs::remove_file(&path);
}

/// Deterministic serve snapshot for the robustness-counter test below.
fn serve_snapshot(seed: u64) -> ServeSnapshot {
    let mut rng = seeded(seed);
    let model = ContinualModel::new(&ModelConfig::image(8), &mut rng);
    let mem = Matrix::randn(4, 8, 1.0, &mut rng);
    let reprs = model.represent_eval(&mem, 0);
    ServeSnapshot::capture(&model, reprs, vec![0; 4], "obs-serve", 1).unwrap()
}

fn serve_engine(seed: u64) -> Engine {
    Engine::from_snapshot(serve_snapshot(seed), 16).unwrap()
}

/// The serve robustness layer reports itself (DESIGN.md §13): shed
/// requests land in `serve/rejected` indexed by reason, snapshot swaps
/// in `serve/rotations` + a `serve/rotation_ms` histogram, and the
/// client's resilience loop in `client/retries`.
#[test]
fn serve_chaos_counters_cover_rejections_rotations_and_retries() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ring = RingSink::with_capacity(edsr::obs::DEFAULT_RING_CAPACITY);
    edsr::obs::install(Box::new(ring.clone()));

    // --- Overload shed: a 1-slot queue with a wide window holds the
    // first request; the second must be rejected while it waits.
    let cfg = ServerConfig {
        max_batch: 64,
        window: std::time::Duration::from_millis(400),
        queue_cap: 1,
        ..ServerConfig::default()
    };
    let mut batcher = Batcher::with_config(serve_engine(80), &cfg);
    let blocked = {
        let mut sub = batcher.submitter();
        std::thread::spawn(move || {
            let mut input: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
            let mut out = Vec::new();
            sub.embed(0, &mut input, &mut out).expect("queued embed")
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(100));
    let mut sub = batcher.submitter();
    let mut input: Vec<f32> = (0..8).map(|i| i as f32 * 0.2).collect();
    let mut out = Vec::new();
    match sub.embed(0, &mut input, &mut out) {
        Err(SubmitError::Overloaded { .. }) => {}
        other => panic!("expected overload shed, got {other:?}"),
    }
    blocked.join().expect("queued embed answered");
    batcher.stop();

    // --- Deadline shed: a 1 ms deadline against an 80 ms window means
    // the request is already expired when the flush examines it.
    let cfg = ServerConfig {
        window: std::time::Duration::from_millis(80),
        deadline: Some(std::time::Duration::from_millis(1)),
        ..ServerConfig::default()
    };
    let mut batcher = Batcher::with_config(serve_engine(80), &cfg);
    let mut sub = batcher.submitter();
    match sub.embed(0, &mut input, &mut out) {
        Err(SubmitError::DeadlineExceeded) => {}
        other => panic!("expected deadline shed, got {other:?}"),
    }
    batcher.stop();

    // --- Rotation: a newer valid snapshot lands and the watcher swaps.
    let dir = std::env::temp_dir().join(format!("edsr-obs-rotate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let first = dir.join("obs.task0001.snapshot");
    serve_snapshot(80).save(&first).unwrap();
    let mut batcher = Batcher::with_config(serve_engine(80), &ServerConfig::default());
    batcher.start_rotation(RotateConfig {
        dir: dir.clone(),
        poll: std::time::Duration::from_millis(5),
        cache_capacity: 16,
        current: Some(first),
        quantize: false,
    });
    serve_snapshot(81)
        .save(dir.join("obs.task0002.snapshot"))
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while batcher.rotations() < 1 {
        assert!(std::time::Instant::now() < deadline, "rotation never fired");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    batcher.stop();
    let _ = std::fs::remove_dir_all(&dir);

    // --- Client retries: a listener that drops every accepted
    // connection forces the bounded retry loop to run dry.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let dropper = std::thread::spawn(move || {
        // Three request attempts = up to three accepts; extras are fine.
        for stream in listener.incoming().take(4) {
            drop(stream);
        }
    });
    let policy = RetryPolicy {
        max_retries: 2,
        backoff: std::time::Duration::from_millis(1),
        backoff_cap: std::time::Duration::from_millis(4),
        jitter_seed: 7,
        retry_rejections: false,
    };
    let mut client = Client::connect_with(addr, policy).expect("tcp connect");
    let probe = vec![0.5f32; 8];
    assert!(
        client.embed(0, &probe).is_err(),
        "every connection is dropped; the embed must fail after retries"
    );
    drop(client);
    drop(dropper); // detach: the listener thread dies with the process

    edsr::obs::uninstall();
    let events = ring.events();
    let counter_sum = |name: &str, index: u64| -> f64 {
        events
            .iter()
            .filter(|e| e.kind == EventKind::Counter && e.name == name && e.index == index)
            .map(|e| e.value)
            .sum()
    };
    assert!(
        counter_sum("serve/rejected", REJECT_OVERLOAD) >= 1.0,
        "overload shed not counted"
    );
    assert!(
        counter_sum("serve/rejected", REJECT_DEADLINE) >= 1.0,
        "deadline shed not counted"
    );
    assert_eq!(
        counter_sum("serve/rotations", 0),
        1.0,
        "rotation not counted"
    );
    assert_eq!(
        events
            .iter()
            .filter(|e| e.kind == EventKind::Histogram && e.name == "serve/rotation_ms")
            .count(),
        1,
        "rotation duration not recorded"
    );
    assert_eq!(
        counter_sum("client/retries", 0),
        2.0,
        "client retries not counted"
    );
}
