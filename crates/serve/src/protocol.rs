//! Versioned length-prefixed binary wire protocol.
//!
//! Every message travels as one **frame**: a `u32` little-endian payload
//! length followed by the payload. Payloads open with a version byte
//! ([`PROTOCOL_VERSION`]) and an opcode / status byte; all multi-byte
//! integers are little-endian and all floats are IEEE-754 `f32` bit
//! patterns — the same convention as the `nn::io` checkpoint codec, so a
//! round-trip is bit-identical by construction.
//!
//! Decoding is total: truncated, oversized, or corrupt payloads come back
//! as a structured [`ProtocolError`], never a panic (property-tested in
//! this module's tests).
//!
//! ```text
//! request  := version:u8 opcode:u8 body
//!   embed(1)    := task:u32 dim:u32 f32*dim
//!   knn(2)      := k:u32 metric:u8 dim:u32 f32*dim
//!   stats(3)    := (empty)
//!   shutdown(4) := (empty)
//! response := version:u8 status:u8 opcode:u8 body
//!   status 0 (ok):
//!     embed     := dim:u32 f32*dim
//!     knn       := n:u32 (index:u64 score:f32)*n
//!     stats     := 12 x u64 (see [`StatsReply`])
//!     shutdown  := (empty)
//!   status 1 (error) := code:u16 retry_after_ms:u32 len:u32 utf8*len
//! ```
//!
//! Version 2 added `retry_after_ms` to error responses (the backpressure
//! hint honoured by the retrying client) and the rotation/rejection
//! counters to the stats body. Version 3 appended the `quantized` flag
//! to the stats body (1 when the engine answers on the int8 backend) —
//! `edsr query --quantized` keys off it. Older peers are rejected with
//! [`ProtocolError::BadVersion`] rather than misparsed.

use std::fmt;
use std::io::{Read, Write};

/// Wire protocol version carried in every payload.
pub const PROTOCOL_VERSION: u8 = 3;

/// Hard cap on a frame payload (16 MiB): anything larger is rejected
/// before allocation, so a corrupt length prefix cannot OOM the server.
/// Shared with every wire consumer through `edsr-wire`.
pub const MAX_FRAME: usize = edsr_wire::MAX_FRAME;

/// Request opcodes.
pub const OP_EMBED: u8 = 1;
/// kNN retrieval over the snapshot's replay-memory representations.
pub const OP_KNN: u8 = 2;
/// Server/engine counters.
pub const OP_STATS: u8 = 3;
/// Graceful shutdown: drain in-flight requests, then stop accepting.
pub const OP_SHUTDOWN: u8 = 4;

/// Error codes carried by error responses.
pub const ERR_BAD_REQUEST: u16 = 1;
/// The server is draining and no longer accepts work.
pub const ERR_SHUTTING_DOWN: u16 = 2;
/// Internal failure while answering (details in the message).
pub const ERR_INTERNAL: u16 = 3;
/// The request sat in the batch queue past its deadline and was dropped
/// unanswered by the engine (`EDSR_SERVE_DEADLINE_MS`).
pub const ERR_DEADLINE: u16 = 4;
/// The bounded submit queue was full; the response carries a
/// `retry_after_ms` hint and the request was shed without blocking.
pub const ERR_OVERLOADED: u16 = 5;

/// Neighbour metric selector on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMetric {
    /// Squared Euclidean distance (smaller = closer).
    Euclidean,
    /// Cosine similarity (larger = closer).
    Cosine,
}

impl WireMetric {
    fn to_byte(self) -> u8 {
        match self {
            WireMetric::Euclidean => 0,
            WireMetric::Cosine => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtocolError> {
        match b {
            0 => Ok(WireMetric::Euclidean),
            1 => Ok(WireMetric::Cosine),
            other => Err(ProtocolError::BadMetric(other)),
        }
    }
}

impl From<WireMetric> for edsr_linalg::Metric {
    fn from(m: WireMetric) -> Self {
        match m {
            WireMetric::Euclidean => edsr_linalg::Metric::Euclidean,
            WireMetric::Cosine => edsr_linalg::Metric::Cosine,
        }
    }
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Embed one input vector through the snapshot encoder.
    Embed {
        /// Adapter/task index the input belongs to.
        task: u32,
        /// Raw input features.
        input: Vec<f32>,
    },
    /// k nearest stored replay representations to `query`.
    Knn {
        /// Neighbour count (clamped server-side to the memory size).
        k: u32,
        /// Distance/similarity metric.
        metric: WireMetric,
        /// Query representation (`repr_dim` wide).
        query: Vec<f32>,
    },
    /// Server counters.
    Stats,
    /// Graceful drain + stop.
    Shutdown,
}

/// One retrieved neighbour on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireNeighbor {
    /// Row index into the snapshot's memory representations.
    pub index: u64,
    /// Metric score (cosine similarity or squared Euclidean distance).
    pub score: f32,
}

/// Counters answered to a [`Request::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Requests answered (all opcodes).
    pub requests: u64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Embed requests that went through a batched forward.
    pub batched_requests: u64,
    /// Largest single coalesced batch so far.
    pub max_batch: u64,
    /// Embedding-cache hits.
    pub cache_hits: u64,
    /// Embedding-cache misses.
    pub cache_misses: u64,
    /// Rows in the replay-memory retrieval set.
    pub memory_rows: u64,
    /// Representation dimensionality served.
    pub repr_dim: u64,
    /// Completed live snapshot rotations (engine swaps).
    pub rotations: u64,
    /// Requests rejected because they aged past the batcher deadline.
    pub rejected_deadline: u64,
    /// Requests shed because the bounded submit queue was full.
    pub rejected_overload: u64,
    /// 1 when the engine answers on the int8 quantized backend, else 0.
    pub quantized: u64,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Embedding for an [`Request::Embed`].
    Embedding(Vec<f32>),
    /// Neighbours for a [`Request::Knn`], closest first.
    Neighbors(Vec<WireNeighbor>),
    /// Counters for a [`Request::Stats`].
    Stats(StatsReply),
    /// The server acknowledged a [`Request::Shutdown`] and is draining.
    ShutdownAck,
    /// The request was rejected or failed.
    Error {
        /// One of the `ERR_*` codes.
        code: u16,
        /// Backpressure hint in milliseconds: how long the client should
        /// wait before retrying. Zero means "no hint"; only
        /// [`ERR_OVERLOADED`] responses carry a non-zero value today.
        retry_after_ms: u32,
        /// Human-readable reason.
        message: String,
    },
}

/// Structured decode/transport failure. Every malformed input maps here;
/// the decoder never panics.
#[derive(Debug)]
pub enum ProtocolError {
    /// Underlying socket/file error.
    Io(std::io::Error),
    /// The payload ended before a field it promised.
    Truncated {
        /// Bytes the field needed.
        expected: usize,
        /// Bytes left in the payload.
        got: usize,
    },
    /// Version byte differs from [`PROTOCOL_VERSION`].
    BadVersion(u8),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown metric byte.
    BadMetric(u8),
    /// Unknown response status byte.
    BadStatus(u8),
    /// Frame length prefix exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// Structurally invalid payload (reason attached).
    Malformed(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "protocol i/o: {e}"),
            ProtocolError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated payload: field needs {expected} bytes, {got} left"
                )
            }
            ProtocolError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (expected {PROTOCOL_VERSION})"
                )
            }
            ProtocolError::BadOpcode(op) => write!(f, "unknown opcode {op}"),
            ProtocolError::BadMetric(m) => write!(f, "unknown metric {m}"),
            ProtocolError::BadStatus(s) => write!(f, "unknown response status {s}"),
            ProtocolError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            ProtocolError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<edsr_wire::FrameError> for ProtocolError {
    fn from(e: edsr_wire::FrameError) -> Self {
        match e {
            edsr_wire::FrameError::Io(e) => ProtocolError::Io(e),
            edsr_wire::FrameError::Truncated { expected, got } => {
                ProtocolError::Truncated { expected, got }
            }
            edsr_wire::FrameError::TooLarge(n) => ProtocolError::TooLarge(n),
        }
    }
}

// ---------------------------------------------------------------------------
// Little-endian cursor primitives.

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < n {
            return Err(ProtocolError::Truncated {
                expected: n,
                got: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f32(&mut self) -> Result<f32, ProtocolError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// A `dim:u32` + `f32*dim` vector. The element count is bounds-checked
    /// against the remaining bytes *before* allocation so a corrupt count
    /// cannot trigger a huge reserve.
    fn f32_vec(&mut self) -> Result<Vec<f32>, ProtocolError> {
        let dim = self.u32()? as usize;
        let need = dim
            .checked_mul(4)
            .ok_or(ProtocolError::Malformed("vector length overflow"))?;
        if self.remaining() < need {
            return Err(ProtocolError::Truncated {
                expected: need,
                got: self.remaining(),
            });
        }
        let mut v = Vec::with_capacity(dim);
        for _ in 0..dim {
            v.push(self.f32()?);
        }
        Ok(v)
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(ProtocolError::Malformed("trailing bytes after message"))
        }
    }
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32_slice(buf: &mut Vec<u8>, v: &[f32]) {
    put_u32(buf, v.len() as u32);
    for &x in v {
        buf.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

// ---------------------------------------------------------------------------
// Message codecs.

impl Request {
    /// Appends the encoded payload (version + opcode + body) to `buf`
    /// (cleared first). Reusing one buffer keeps steady-state encoding
    /// allocation-free.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        buf.push(PROTOCOL_VERSION);
        match self {
            Request::Embed { task, input } => {
                buf.push(OP_EMBED);
                put_u32(buf, *task);
                put_f32_slice(buf, input);
            }
            Request::Knn { k, metric, query } => {
                buf.push(OP_KNN);
                put_u32(buf, *k);
                buf.push(metric.to_byte());
                put_f32_slice(buf, query);
            }
            Request::Stats => buf.push(OP_STATS),
            Request::Shutdown => buf.push(OP_SHUTDOWN),
        }
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Decodes one request payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut c = Cursor::new(payload);
        let version = c.u8()?;
        if version != PROTOCOL_VERSION {
            return Err(ProtocolError::BadVersion(version));
        }
        let req = match c.u8()? {
            OP_EMBED => Request::Embed {
                task: c.u32()?,
                input: c.f32_vec()?,
            },
            OP_KNN => Request::Knn {
                k: c.u32()?,
                metric: WireMetric::from_byte(c.u8()?)?,
                query: c.f32_vec()?,
            },
            OP_STATS => Request::Stats,
            OP_SHUTDOWN => Request::Shutdown,
            other => return Err(ProtocolError::BadOpcode(other)),
        };
        c.finish()?;
        Ok(req)
    }

    /// The opcode this request travels under (echoed in responses).
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Embed { .. } => OP_EMBED,
            Request::Knn { .. } => OP_KNN,
            Request::Stats => OP_STATS,
            Request::Shutdown => OP_SHUTDOWN,
        }
    }
}

impl Response {
    /// Appends the encoded payload to `buf` (cleared first). `opcode` is
    /// the request opcode being answered; error responses echo it too so
    /// pipelined clients can match replies to requests.
    pub fn encode_into(&self, opcode: u8, buf: &mut Vec<u8>) {
        buf.clear();
        buf.push(PROTOCOL_VERSION);
        match self {
            Response::Error {
                code,
                retry_after_ms,
                message,
            } => {
                buf.push(1);
                buf.push(opcode);
                put_u16(buf, *code);
                put_u32(buf, *retry_after_ms);
                put_u32(buf, message.len() as u32);
                buf.extend_from_slice(message.as_bytes());
            }
            ok => {
                buf.push(0);
                buf.push(opcode);
                match ok {
                    Response::Embedding(v) => put_f32_slice(buf, v),
                    Response::Neighbors(ns) => {
                        put_u32(buf, ns.len() as u32);
                        for n in ns {
                            put_u64(buf, n.index);
                            buf.extend_from_slice(&n.score.to_bits().to_le_bytes());
                        }
                    }
                    Response::Stats(s) => {
                        for v in [
                            s.requests,
                            s.batches,
                            s.batched_requests,
                            s.max_batch,
                            s.cache_hits,
                            s.cache_misses,
                            s.memory_rows,
                            s.repr_dim,
                            s.rotations,
                            s.rejected_deadline,
                            s.rejected_overload,
                            s.quantized,
                        ] {
                            put_u64(buf, v);
                        }
                    }
                    Response::ShutdownAck => {}
                    Response::Error { .. } => unreachable!("handled above"),
                }
            }
        }
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self, opcode: u8) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(opcode, &mut buf);
        buf
    }

    /// Decodes one response payload; returns the echoed opcode too.
    pub fn decode(payload: &[u8]) -> Result<(u8, Self), ProtocolError> {
        let mut c = Cursor::new(payload);
        let version = c.u8()?;
        if version != PROTOCOL_VERSION {
            return Err(ProtocolError::BadVersion(version));
        }
        let status = c.u8()?;
        let opcode = c.u8()?;
        let resp = match status {
            1 => {
                let code = c.u16()?;
                let retry_after_ms = c.u32()?;
                let len = c.u32()? as usize;
                let bytes = c.take(len)?;
                let message = String::from_utf8(bytes.to_vec())
                    .map_err(|_| ProtocolError::Malformed("error message is not utf-8"))?;
                Response::Error {
                    code,
                    retry_after_ms,
                    message,
                }
            }
            0 => match opcode {
                OP_EMBED => Response::Embedding(c.f32_vec()?),
                OP_KNN => {
                    let n = c.u32()? as usize;
                    let need = n
                        .checked_mul(12)
                        .ok_or(ProtocolError::Malformed("neighbor count overflow"))?;
                    if c.remaining() < need {
                        return Err(ProtocolError::Truncated {
                            expected: need,
                            got: c.remaining(),
                        });
                    }
                    let mut ns = Vec::with_capacity(n);
                    for _ in 0..n {
                        ns.push(WireNeighbor {
                            index: c.u64()?,
                            score: c.f32()?,
                        });
                    }
                    Response::Neighbors(ns)
                }
                OP_STATS => Response::Stats(StatsReply {
                    requests: c.u64()?,
                    batches: c.u64()?,
                    batched_requests: c.u64()?,
                    max_batch: c.u64()?,
                    cache_hits: c.u64()?,
                    cache_misses: c.u64()?,
                    memory_rows: c.u64()?,
                    repr_dim: c.u64()?,
                    rotations: c.u64()?,
                    rejected_deadline: c.u64()?,
                    rejected_overload: c.u64()?,
                    quantized: c.u64()?,
                }),
                OP_SHUTDOWN => Response::ShutdownAck,
                other => return Err(ProtocolError::BadOpcode(other)),
            },
            other => return Err(ProtocolError::BadStatus(other)),
        };
        c.finish()?;
        Ok((opcode, resp))
    }
}

// ---------------------------------------------------------------------------
// Framing — the shared `edsr-wire` implementation, surfaced with this
// protocol's error type so existing callers and tests are unchanged.

/// Writes one `u32`-length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtocolError> {
    edsr_wire::write_frame(w, payload).map_err(ProtocolError::from)
}

/// Reads one frame's payload into `buf` (cleared and resized; reusing one
/// buffer keeps steady-state reads allocation-free). Returns `Ok(false)`
/// on clean EOF before any length byte; propagates everything else.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<bool, ProtocolError> {
    edsr_wire::read_frame(r, buf).map_err(ProtocolError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_f32() -> impl Strategy<Value = f32> {
        // Bit-pattern driven so NaNs/infinities/denormals are covered;
        // round-trips compare bits, not values.
        any::<u32>().prop_map(f32::from_bits)
    }

    fn arb_vec() -> impl Strategy<Value = Vec<f32>> {
        proptest::collection::vec(arb_f32(), 0..64)
    }

    fn arb_request() -> impl Strategy<Value = Request> {
        prop_oneof![
            (any::<u32>(), arb_vec()).prop_map(|(task, input)| Request::Embed { task, input }),
            (any::<u32>(), any::<bool>(), arb_vec()).prop_map(|(k, cos, query)| Request::Knn {
                k,
                metric: if cos {
                    WireMetric::Cosine
                } else {
                    WireMetric::Euclidean
                },
                query,
            }),
            Just(Request::Stats),
            Just(Request::Shutdown),
        ]
    }

    fn arb_response() -> impl Strategy<Value = (u8, Response)> {
        prop_oneof![
            arb_vec().prop_map(|v| (OP_EMBED, Response::Embedding(v))),
            proptest::collection::vec((any::<u64>(), arb_f32()), 0..32).prop_map(|ns| (
                OP_KNN,
                Response::Neighbors(
                    ns.into_iter()
                        .map(|(index, score)| WireNeighbor { index, score })
                        .collect(),
                )
            )),
            proptest::collection::vec(any::<u64>(), 12).prop_map(|v| (
                OP_STATS,
                Response::Stats(StatsReply {
                    requests: v[0],
                    batches: v[1],
                    batched_requests: v[2],
                    max_batch: v[3],
                    cache_hits: v[4],
                    cache_misses: v[5],
                    memory_rows: v[6],
                    repr_dim: v[7],
                    rotations: v[8],
                    rejected_deadline: v[9],
                    rejected_overload: v[10],
                    quantized: v[11],
                })
            )),
            Just((OP_SHUTDOWN, Response::ShutdownAck)),
            (
                proptest::collection::vec(32u8..127, 0..40),
                any::<u16>(),
                any::<u32>()
            )
                .prop_map(|(bytes, code, retry_after_ms)| {
                    let message = String::from_utf8(bytes).expect("printable ascii");
                    (
                        OP_EMBED,
                        Response::Error {
                            code,
                            retry_after_ms,
                            message,
                        },
                    )
                }),
        ]
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn requests_bit_eq(a: &Request, b: &Request) -> bool {
        match (a, b) {
            (
                Request::Embed {
                    task: t1,
                    input: i1,
                },
                Request::Embed {
                    task: t2,
                    input: i2,
                },
            ) => t1 == t2 && bits(i1) == bits(i2),
            (
                Request::Knn {
                    k: k1,
                    metric: m1,
                    query: q1,
                },
                Request::Knn {
                    k: k2,
                    metric: m2,
                    query: q2,
                },
            ) => k1 == k2 && m1 == m2 && bits(q1) == bits(q2),
            (Request::Stats, Request::Stats) | (Request::Shutdown, Request::Shutdown) => true,
            _ => false,
        }
    }

    proptest! {
        #[test]
        fn request_roundtrip_bit_identical(req in arb_request()) {
            let payload = req.encode();
            let back = Request::decode(&payload).expect("well-formed payload decodes");
            prop_assert!(requests_bit_eq(&req, &back));
            // ... and the re-encoding is byte-identical.
            prop_assert_eq!(back.encode(), payload);
        }

        #[test]
        fn response_roundtrip_bit_identical(case in arb_response()) {
            let (opcode, resp) = case;
            let payload = resp.encode(opcode);
            let (op_back, back) = Response::decode(&payload).expect("well-formed payload decodes");
            prop_assert_eq!(op_back, opcode);
            prop_assert_eq!(back.encode(opcode), payload);
        }

        #[test]
        fn truncated_requests_error_never_panic(req in arb_request(), cut in 0usize..1000) {
            let payload = req.encode();
            if cut < payload.len() {
                let r = Request::decode(&payload[..cut]);
                prop_assert!(r.is_err());
            }
        }

        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Decoding garbage must return Ok or a structured error — any
            // panic fails the test harness.
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
        }

        #[test]
        fn corrupt_byte_flip_errors_or_decodes(req in arb_request(), idx in 0usize..512, bit in 0u8..8) {
            let mut payload = req.encode();
            if !payload.is_empty() {
                let i = idx % payload.len();
                payload[i] ^= 1 << bit;
                let _ = Request::decode(&payload); // must not panic
            }
        }
    }

    #[test]
    fn frame_roundtrip_and_limits() {
        let req = Request::Embed {
            task: 3,
            input: vec![1.0, -2.5, f32::NAN],
        };
        let payload = req.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let mut buf = Vec::new();
        assert!(read_frame(&mut cursor, &mut buf).unwrap());
        assert_eq!(buf, payload);
        // Clean EOF → Ok(false).
        assert!(!read_frame(&mut cursor, &mut buf).unwrap());

        // Oversized length prefix is rejected before allocation.
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        let mut cursor = std::io::Cursor::new(huge.to_vec());
        assert!(matches!(
            read_frame(&mut cursor, &mut buf),
            Err(ProtocolError::TooLarge(_))
        ));

        // Truncated frame body → structured Truncated error.
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        wire.truncate(wire.len() - 2);
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor, &mut buf),
            Err(ProtocolError::Truncated { .. })
        ));
    }

    #[test]
    fn version_and_opcode_are_validated() {
        let mut payload = Request::Stats.encode();
        payload[0] = 9;
        assert!(matches!(
            Request::decode(&payload),
            Err(ProtocolError::BadVersion(9))
        ));
        let mut payload = Request::Stats.encode();
        payload[1] = 77;
        assert!(matches!(
            Request::decode(&payload),
            Err(ProtocolError::BadOpcode(77))
        ));
        let mut payload = Response::ShutdownAck.encode(OP_SHUTDOWN);
        payload[1] = 5;
        assert!(matches!(
            Response::decode(&payload),
            Err(ProtocolError::BadStatus(5))
        ));
    }
}
