//! Read-only inference engine over a loaded serve snapshot.
//!
//! One engine owns a backend — either the restored f32 model with a
//! reusable [`Workspace`] (warm forwards run on the zero-alloc tape
//! pools) or the int8 [`QuantEncoder`] with its ping-pong scratch —
//! plus input staging matrices, a scratch-backed kNN path over the
//! snapshot's replay representations, and the LRU [`EmbedCache`].
//!
//! The f32 path uses the encoder's *eval-mode* forward (batch
//! standardization skipped), which computes each output row
//! independently in a fixed accumulation order per element — so a
//! batched embed is bit-identical per row to single-input embeds at any
//! `EDSR_THREADS`, the property the micro-batcher relies on. The int8
//! path is stronger still: every reduction is an exact i32 chain, so
//! results are bit-identical across ISA levels *and* thread counts
//! (`tests/quant.rs`).

use edsr_cl::checkpoint::{AnyServeSnapshot, ServeSnapshot};
use edsr_cl::ContinualModel;
use edsr_linalg::{KnnQuery, Metric, Neighbor};
use edsr_nn::CheckpointError;
use edsr_nn::Workspace;
use edsr_quant::{QuantEncoder, QuantMemory, QuantScratch, QuantSnapshot};
use edsr_tensor::Matrix;

use crate::cache::EmbedCache;

/// What an embed call did: how many rows went through the batched
/// forward and how many were answered from cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmbedReport {
    /// Inputs that required a forward pass.
    pub forward_rows: usize,
    /// Inputs answered from the embedding cache.
    pub cache_hits: usize,
}

/// The numeric path a serve engine answers requests on.
enum Backend {
    /// Full-precision model restored from a v1 (`EDSRSS01`) snapshot.
    /// Boxed so the enum stays near the (much smaller) int8 variant.
    F32 {
        model: Box<ContinualModel>,
        memory: Matrix,
        ws: Workspace,
        staging: Matrix,
    },
    /// Int8 encoder + int8 memory grid from a v2 (`EDSRSS02`) snapshot.
    Quant {
        encoder: QuantEncoder,
        memory: QuantMemory,
        scratch: QuantScratch,
        repr_buf: Vec<f32>,
        qquery: Vec<i8>,
    },
}

/// Restored snapshot + scratch state for answering embed/knn requests.
pub struct Engine {
    backend: Backend,
    benchmark: String,
    completed_tasks: usize,
    memory_tasks: Vec<u64>,
    gather: Matrix,
    miss_idx: Vec<usize>,
    row_buf: Vec<f32>,
    knn_scratch: Vec<Neighbor>,
    cache: EmbedCache,
}

impl Engine {
    /// Restores the snapshot's model and takes ownership of its replay
    /// representations. `cache_capacity` bounds the embedding cache
    /// (0 disables it).
    pub fn from_snapshot(
        snapshot: ServeSnapshot,
        cache_capacity: usize,
    ) -> Result<Self, CheckpointError> {
        let model = snapshot.restore_model()?;
        Ok(Self {
            backend: Backend::F32 {
                model: Box::new(model),
                memory: snapshot.memory_reprs,
                ws: Workspace::new(),
                staging: Matrix::zeros(0, 0),
            },
            benchmark: snapshot.benchmark,
            completed_tasks: snapshot.completed_tasks,
            memory_tasks: snapshot.memory_tasks,
            gather: Matrix::zeros(0, 0),
            miss_idx: Vec::new(),
            row_buf: Vec::new(),
            knn_scratch: Vec::new(),
            cache: EmbedCache::new(cache_capacity),
        })
    }

    /// Builds an int8 engine from a v2 quantized snapshot. Infallible
    /// beyond what [`QuantSnapshot::load`] already validated, but keeps
    /// the same signature shape as [`from_snapshot`](Self::from_snapshot).
    pub fn from_quant_snapshot(
        snapshot: QuantSnapshot,
        cache_capacity: usize,
    ) -> Result<Self, CheckpointError> {
        Ok(Self {
            backend: Backend::Quant {
                encoder: snapshot.encoder,
                memory: snapshot.memory,
                scratch: QuantScratch::default(),
                repr_buf: Vec::new(),
                qquery: Vec::new(),
            },
            benchmark: snapshot.benchmark,
            completed_tasks: snapshot.completed_tasks,
            memory_tasks: snapshot.memory_tasks,
            gather: Matrix::zeros(0, 0),
            miss_idx: Vec::new(),
            row_buf: Vec::new(),
            knn_scratch: Vec::new(),
            cache: EmbedCache::new(cache_capacity),
        })
    }

    /// Builds the right backend for whichever snapshot version was
    /// loaded.
    pub fn from_any(
        snapshot: AnyServeSnapshot,
        cache_capacity: usize,
    ) -> Result<Self, CheckpointError> {
        match snapshot {
            AnyServeSnapshot::V1(snap) => Self::from_snapshot(*snap, cache_capacity),
            AnyServeSnapshot::V2(snap) => Self::from_quant_snapshot(*snap, cache_capacity),
        }
    }

    /// Whether requests run on the int8 backend.
    pub fn quantized(&self) -> bool {
        matches!(self.backend, Backend::Quant { .. })
    }

    /// Representation dimensionality served.
    pub fn repr_dim(&self) -> usize {
        match &self.backend {
            Backend::F32 { model, .. } => model.repr_dim(),
            Backend::Quant { encoder, .. } => encoder.repr_dim(),
        }
    }

    /// Rows in the replay-memory retrieval set.
    pub fn memory_rows(&self) -> usize {
        match &self.backend {
            Backend::F32 { memory, .. } => memory.rows(),
            Backend::Quant { memory, .. } => memory.rows(),
        }
    }

    /// Source increment of each memory row.
    pub fn memory_tasks(&self) -> &[u64] {
        &self.memory_tasks
    }

    /// Increments trained into the snapshot.
    pub fn completed_tasks(&self) -> usize {
        self.completed_tasks
    }

    /// Benchmark label the snapshot was trained on.
    pub fn benchmark(&self) -> &str {
        &self.benchmark
    }

    /// Embedding-cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Embedding-cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Read-only access to the restored f32 model, `None` on the int8
    /// backend (tests compare against a direct in-process forward).
    pub fn model(&self) -> Option<&ContinualModel> {
        match &self.backend {
            Backend::F32 { model, .. } => Some(model.as_ref()),
            Backend::Quant { .. } => None,
        }
    }

    /// The input width `task` must provide, or a reject reason.
    pub fn expected_input_dim(&self, task: usize) -> Result<usize, String> {
        let dims: &[usize] = match &self.backend {
            Backend::F32 { model, .. } => &model.config().input_dims,
            Backend::Quant { encoder, .. } => encoder.input_dims(),
        };
        if dims.len() == 1 {
            Ok(dims[0])
        } else if task < dims.len() {
            Ok(dims[task])
        } else {
            Err(format!(
                "task {task} out of range: model has {} adapters",
                dims.len()
            ))
        }
    }

    /// Embeds a coalesced batch of same-task inputs (one per row of
    /// `inputs`): cache hits are served directly, the misses go through
    /// the backend forward (**one** batched tape forward on f32; one
    /// exact int8 chain per row on the quantized path), and every fresh
    /// embedding is cached. `emit(row, embedding, was_cache_hit)` is
    /// called exactly once per row (hits first, then misses in row
    /// order).
    ///
    /// Errors are total-request: on a reject nothing is emitted. Warm
    /// steady-state calls make no heap allocations on the hit path and a
    /// bounded, constant number on the miss path (`tests/zero_alloc.rs`,
    /// on both backends).
    pub fn embed_rows(
        &mut self,
        task: usize,
        inputs: &Matrix,
        mut emit: impl FnMut(usize, &[f32], bool),
    ) -> Result<EmbedReport, String> {
        let dim = self.expected_input_dim(task)?;
        if inputs.cols() != dim {
            return Err(format!(
                "got {}-feature inputs, task {task} expects {dim}",
                inputs.cols()
            ));
        }
        let mut report = EmbedReport::default();
        let Engine {
            backend,
            miss_idx,
            row_buf,
            cache,
            ..
        } = self;
        miss_idx.clear();
        for i in 0..inputs.rows() {
            if cache.lookup_into(task, inputs.row(i), row_buf) {
                report.cache_hits += 1;
                emit(i, row_buf, true);
            } else {
                miss_idx.push(i);
            }
        }
        if miss_idx.is_empty() {
            return Ok(report);
        }
        report.forward_rows = miss_idx.len();

        match backend {
            Backend::F32 {
                model, ws, staging, ..
            } => {
                if staging.rows() != miss_idx.len() || staging.cols() != dim {
                    *staging = Matrix::zeros(miss_idx.len(), dim);
                }
                for (row, &i) in miss_idx.iter().enumerate() {
                    staging.row_mut(row).copy_from_slice(inputs.row(i));
                }
                ws.reset();
                let repr = model.encoder.represent_eval_on(
                    &mut ws.tape,
                    &mut ws.binder,
                    &model.params,
                    staging,
                    task,
                );
                let reps = ws.tape.value(repr);
                for (row, &i) in miss_idx.iter().enumerate() {
                    cache.insert(task, inputs.row(i), reps.row(row));
                    emit(i, reps.row(row), false);
                }
            }
            Backend::Quant {
                encoder,
                scratch,
                repr_buf,
                ..
            } => {
                repr_buf.clear();
                repr_buf.resize(encoder.repr_dim(), 0.0);
                for &i in miss_idx.iter() {
                    encoder.represent_into(task, inputs.row(i), scratch, repr_buf);
                    cache.insert(task, inputs.row(i), repr_buf);
                    emit(i, repr_buf, false);
                }
            }
        }
        Ok(report)
    }

    /// [`embed_rows`](Self::embed_rows) over separately-owned input
    /// slices: `outs[i]` receives input `i`'s embedding (cleared first).
    pub fn embed_batch_into(
        &mut self,
        task: usize,
        inputs: &[&[f32]],
        outs: &mut [Vec<f32>],
    ) -> Result<EmbedReport, String> {
        assert_eq!(inputs.len(), outs.len(), "one output slot per input");
        let dim = self.expected_input_dim(task)?;
        for (i, input) in inputs.iter().enumerate() {
            if input.len() != dim {
                return Err(format!(
                    "input {i}: got {} features, task {task} expects {dim}",
                    input.len()
                ));
            }
        }
        let mut gather = std::mem::replace(&mut self.gather, Matrix::zeros(0, 0));
        if gather.rows() != inputs.len() || gather.cols() != dim {
            gather = Matrix::zeros(inputs.len(), dim);
        }
        for (row, input) in inputs.iter().enumerate() {
            gather.row_mut(row).copy_from_slice(input);
        }
        let res = self.embed_rows(task, &gather, |i, emb, _hit| {
            outs[i].clear();
            outs[i].extend_from_slice(emb);
        });
        self.gather = gather;
        res
    }

    /// Single-input convenience over
    /// [`embed_batch_into`](Self::embed_batch_into).
    pub fn embed_into(
        &mut self,
        task: usize,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<EmbedReport, String> {
        self.embed_batch_into(task, &[input], std::slice::from_mut(out))
    }

    /// The `k` stored replay representations nearest to `query`, closest
    /// first, written into `out` (cleared first; steady-state calls make
    /// no heap allocations thanks to the engine-owned scratch).
    pub fn knn_into(
        &mut self,
        query: &[f32],
        k: usize,
        metric: Metric,
        out: &mut Vec<Neighbor>,
    ) -> Result<(), String> {
        if query.len() != self.repr_dim() {
            return Err(format!(
                "knn query has {} dims, representations have {}",
                query.len(),
                self.repr_dim()
            ));
        }
        if k == 0 {
            return Err("knn k must be >= 1".into());
        }
        let Engine {
            backend,
            knn_scratch,
            ..
        } = self;
        match backend {
            Backend::F32 { memory, .. } => {
                KnnQuery::new(memory, k)
                    .metric(metric)
                    .search_into(query, knn_scratch, out);
            }
            Backend::Quant { memory, qquery, .. } => {
                memory.search_into(query, k, metric, None, qquery, knn_scratch, out);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_cl::ModelConfig;
    use edsr_tensor::rng::seeded;

    fn fixture_snapshot() -> ServeSnapshot {
        let mut rng = seeded(11);
        let model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
        let mem_inputs = Matrix::randn(6, 16, 1.0, &mut rng);
        let reprs = model.represent(&mem_inputs, 0);
        let tasks = vec![0, 0, 0, 1, 1, 2];
        ServeSnapshot::capture(&model, reprs, tasks, "test", 3).unwrap()
    }

    fn fixture() -> Engine {
        Engine::from_snapshot(fixture_snapshot(), 8).unwrap()
    }

    fn quant_fixture() -> Engine {
        let snap = fixture_snapshot();
        let qsnap = edsr_cl::quantize_serve_snapshot(&snap).unwrap();
        Engine::from_quant_snapshot(qsnap, 8).unwrap()
    }

    #[test]
    fn batched_embed_rows_match_single_embeds_bitwise() {
        let mut engine = fixture();
        let mut rng = seeded(7);
        let batch = Matrix::randn(5, 16, 1.0, &mut rng);
        let inputs: Vec<&[f32]> = (0..5).map(|i| batch.row(i)).collect();
        let mut outs = vec![Vec::new(); 5];
        let report = engine
            .embed_batch_into(0, &inputs, &mut outs)
            .expect("valid batch");
        assert_eq!(report.forward_rows, 5);
        assert_eq!(report.cache_hits, 0);

        // A cold engine embedding each input alone must agree bit-for-bit.
        let mut solo_engine = fixture();
        for (i, input) in inputs.iter().enumerate() {
            let mut out = Vec::new();
            solo_engine.embed_into(0, input, &mut out).unwrap();
            let a: Vec<u32> = out.iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = outs[i].iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "row {i} diverged between batched and solo");
        }

        // Direct in-process eval forward agrees too.
        let direct = engine
            .model()
            .expect("f32 backend")
            .represent_eval(&batch, 0);
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(
                direct
                    .row(i)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                out.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn repeated_embed_hits_cache_and_is_identical() {
        let mut engine = fixture();
        let mut rng = seeded(3);
        let x = Matrix::randn(1, 16, 1.0, &mut rng);
        let mut first = Vec::new();
        let mut second = Vec::new();
        let r1 = engine.embed_into(0, x.row(0), &mut first).unwrap();
        let r2 = engine.embed_into(0, x.row(0), &mut second).unwrap();
        assert_eq!(r1.forward_rows, 1);
        assert_eq!(r2.forward_rows, 0);
        assert_eq!(r2.cache_hits, 1);
        assert_eq!(
            first.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            second.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(engine.cache_hits(), 1);
        assert_eq!(engine.cache_misses(), 1);
    }

    #[test]
    fn mixed_hit_miss_batch_emits_every_row() {
        let mut engine = fixture();
        let mut rng = seeded(9);
        let batch = Matrix::randn(3, 16, 1.0, &mut rng);
        let mut warm = Vec::new();
        engine.embed_into(0, batch.row(1), &mut warm).unwrap();

        let mut seen = [false; 3];
        let report = engine
            .embed_rows(0, &batch, |i, emb, hit| {
                assert_eq!(emb.len(), 48);
                assert_eq!(hit, i == 1);
                seen[i] = true;
            })
            .unwrap();
        assert!(seen.iter().all(|&s| s));
        assert_eq!(report.cache_hits, 1);
        assert_eq!(report.forward_rows, 2);
    }

    #[test]
    fn knn_matches_direct_query_and_validates() {
        let mut engine = fixture();
        let mut rng = seeded(5);
        let x = Matrix::randn(1, 16, 1.0, &mut rng);
        let mut emb = Vec::new();
        engine.embed_into(0, x.row(0), &mut emb).unwrap();

        let mut got = Vec::new();
        engine
            .knn_into(&emb, 3, Metric::Cosine, &mut got)
            .expect("valid query");
        assert_eq!(got.len(), 3);

        // Rebuild the reference the same way the snapshot stored it.
        let reference = fixture_snapshot().memory_reprs;
        let direct = KnnQuery::new(&reference, 3)
            .metric(Metric::Cosine)
            .search(&emb);
        for (a, b) in got.iter().zip(&direct) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }

        // Bad dimensionality and k=0 are rejected with messages.
        assert!(engine
            .knn_into(&emb[..4], 3, Metric::Cosine, &mut got)
            .is_err());
        assert!(engine.knn_into(&emb, 0, Metric::Cosine, &mut got).is_err());
    }

    #[test]
    fn bad_task_and_dims_are_rejected() {
        let mut engine = fixture();
        let mut out = Vec::new();
        // Single-adapter model: any task index maps to adapter 0.
        assert!(engine.embed_into(7, &[0.0; 16], &mut out).is_ok());
        // Wrong width is rejected before any forward.
        let err = engine.embed_into(0, &[0.0; 9], &mut out).unwrap_err();
        assert!(err.contains("expects 16"), "unexpected message: {err}");
    }

    #[test]
    fn quant_engine_serves_embeds_and_knn() {
        let mut engine = quant_fixture();
        assert!(engine.quantized());
        assert!(engine.model().is_none());
        assert_eq!(engine.repr_dim(), 48);
        assert_eq!(engine.memory_rows(), 6);
        assert_eq!(engine.benchmark(), "test");
        assert_eq!(engine.completed_tasks(), 3);

        let mut rng = seeded(7);
        let batch = Matrix::randn(4, 16, 1.0, &mut rng);
        let inputs: Vec<&[f32]> = (0..4).map(|i| batch.row(i)).collect();
        let mut outs = vec![Vec::new(); 4];
        let report = engine
            .embed_batch_into(0, &inputs, &mut outs)
            .expect("valid batch");
        assert_eq!(report.forward_rows, 4);

        // Batched vs solo agree bit-for-bit on the int8 path too.
        let mut solo = quant_fixture();
        for (i, input) in inputs.iter().enumerate() {
            let mut out = Vec::new();
            solo.embed_into(0, input, &mut out).unwrap();
            assert_eq!(
                out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                outs[i].iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "row {i} diverged between batched and solo quant embeds"
            );
        }

        // Cache round-trip is exact.
        let mut again = Vec::new();
        let r2 = engine.embed_into(0, inputs[0], &mut again).unwrap();
        assert_eq!(r2.cache_hits, 1);
        assert_eq!(
            again.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            outs[0].iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );

        // kNN answers on the int8 grid for both metrics.
        let mut got = Vec::new();
        engine
            .knn_into(&outs[0], 3, Metric::Euclidean, &mut got)
            .expect("valid query");
        assert_eq!(got.len(), 3);
        assert!(got[0].score <= got[1].score);
        engine
            .knn_into(&outs[0], 2, Metric::Cosine, &mut got)
            .expect("valid query");
        assert_eq!(got.len(), 2);
        assert!(got[0].score >= got[1].score);

        // Validation still rejects bad queries.
        assert!(engine
            .knn_into(&outs[0][..4], 3, Metric::Cosine, &mut got)
            .is_err());
    }

    #[test]
    fn from_any_picks_backend_by_snapshot_version() {
        let snap = fixture_snapshot();
        let qsnap = edsr_cl::quantize_serve_snapshot(&snap).unwrap();
        let v1 = Engine::from_any(edsr_cl::AnyServeSnapshot::V1(Box::new(snap)), 4).unwrap();
        assert!(!v1.quantized());
        let v2 = Engine::from_any(edsr_cl::AnyServeSnapshot::V2(Box::new(qsnap)), 4).unwrap();
        assert!(v2.quantized());
        assert_eq!(v1.repr_dim(), v2.repr_dim());
        assert_eq!(v1.memory_rows(), v2.memory_rows());
        assert_eq!(v1.memory_tasks(), v2.memory_tasks());
    }
}
