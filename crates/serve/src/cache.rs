//! LRU embedding cache keyed on the input's hash.
//!
//! Keys are an FNV-1a hash of `(task, input bit pattern)`; each entry
//! keeps the full input alongside the embedding and verifies it bitwise
//! on lookup, so a hash collision degrades to a miss — it can never
//! return the wrong embedding. Eviction is least-recently-used by a
//! monotone touch tick; the evicted entry's buffers are recycled into the
//! incoming one, so a warm cache serves hits with **zero** heap
//! allocations and misses with a small constant number (covered by
//! `tests/zero_alloc.rs`).

use std::collections::HashMap;

/// FNV-1a over the task index and the input's f32 bit patterns.
fn fingerprint(task: usize, input: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in (task as u64).to_le_bytes() {
        mix(b);
    }
    for x in input {
        for b in x.to_bits().to_le_bytes() {
            mix(b);
        }
    }
    h
}

struct Entry {
    task: usize,
    input: Vec<f32>,
    embedding: Vec<f32>,
    tick: u64,
}

/// Bounded least-recently-used map from `(task, input)` to embedding.
pub struct EmbedCache {
    map: HashMap<u64, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl EmbedCache {
    /// A cache holding at most `capacity` embeddings (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            // +1 head-room so insert-then-evict never rehashes.
            map: HashMap::with_capacity(capacity.saturating_add(1)),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up the embedding for `(task, input)`, copying it into `out`
    /// on a hit (cleared first). Counts the hit/miss either way.
    pub fn lookup_into(&mut self, task: usize, input: &[f32], out: &mut Vec<f32>) -> bool {
        self.tick += 1;
        let key = fingerprint(task, input);
        if let Some(e) = self.map.get_mut(&key) {
            let same = e.task == task
                && e.input.len() == input.len()
                && e.input
                    .iter()
                    .zip(input)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            if same {
                e.tick = self.tick;
                out.clear();
                out.extend_from_slice(&e.embedding);
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Stores an embedding, evicting the least-recently-used entry when
    /// full. The evicted entry's buffers are reused for the new one.
    pub fn insert(&mut self, task: usize, input: &[f32], embedding: &[f32]) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let key = fingerprint(task, input);
        let (mut input_buf, mut emb_buf) = if let Some(old) = self.map.remove(&key) {
            // Same fingerprint (refresh or collision): replace in place.
            (old.input, old.embedding)
        } else if self.map.len() >= self.capacity {
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| *k)
                .expect("non-empty at capacity");
            let old = self.map.remove(&lru).expect("lru key present");
            (old.input, old.embedding)
        } else {
            (Vec::new(), Vec::new())
        };
        input_buf.clear();
        input_buf.extend_from_slice(input);
        emb_buf.clear();
        emb_buf.extend_from_slice(embedding);
        self.map.insert(
            key,
            Entry {
                task,
                input: input_buf,
                embedding: emb_buf,
                tick: self.tick,
            },
        );
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_stored_embedding_bitwise() {
        let mut c = EmbedCache::new(4);
        let input = [1.0f32, -0.0, f32::NAN];
        let emb = [9.5f32, 2.0];
        c.insert(0, &input, &emb);
        let mut out = Vec::new();
        assert!(c.lookup_into(0, &input, &mut out));
        assert_eq!(
            out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            emb.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        // Different task: miss, even with identical input bytes.
        assert!(!c.lookup_into(1, &input, &mut out));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = EmbedCache::new(2);
        c.insert(0, &[1.0], &[10.0]);
        c.insert(0, &[2.0], &[20.0]);
        let mut out = Vec::new();
        assert!(c.lookup_into(0, &[1.0], &mut out)); // touch 1.0 → 2.0 is LRU
        c.insert(0, &[3.0], &[30.0]);
        assert_eq!(c.len(), 2);
        assert!(c.lookup_into(0, &[1.0], &mut out));
        assert!(c.lookup_into(0, &[3.0], &mut out));
        assert!(!c.lookup_into(0, &[2.0], &mut out));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = EmbedCache::new(0);
        c.insert(0, &[1.0], &[10.0]);
        assert!(c.is_empty());
        let mut out = Vec::new();
        assert!(!c.lookup_into(0, &[1.0], &mut out));
    }

    #[test]
    fn reinsert_same_key_refreshes() {
        let mut c = EmbedCache::new(2);
        c.insert(0, &[1.0], &[10.0]);
        c.insert(0, &[1.0], &[11.0]);
        assert_eq!(c.len(), 1);
        let mut out = Vec::new();
        assert!(c.lookup_into(0, &[1.0], &mut out));
        assert_eq!(out, vec![11.0]);
    }
}
