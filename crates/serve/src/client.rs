//! Blocking client for the serve wire protocol.
//!
//! One [`Client`] owns one connection and reuses its frame buffers, so a
//! steady request loop allocates only for the returned values. Used by
//! `tests/serve.rs`, the `serve_load` load generator, and the
//! `edsr query` CLI.
//!
//! ## Resilience
//!
//! With a [`RetryPolicy`] the client reconnects and retries transient
//! failures — I/O errors, closed connections, protocol desync after wire
//! corruption, and `ERR_OVERLOADED` / `ERR_DEADLINE` rejections — with
//! bounded exponential backoff and deterministic seeded jitter. Overload
//! responses carry a server retry-after hint, which takes precedence
//! over the exponential schedule. Only idempotent requests (embed, knn,
//! stats) are retried; a retried embed can at worst recompute a
//! deterministic forward, never duplicate an effect. Shutdown is not
//! retried — once the flag is set, the server stops accepting.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::fault::{FaultyStream, WireFaultPlan};
use crate::protocol::{
    read_frame, write_frame, Request, Response, StatsReply, WireMetric, WireNeighbor, ERR_DEADLINE,
    ERR_OVERLOADED,
};
use crate::ServeError;

/// Bounded-retry settings for [`Client::connect_with`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Base backoff; attempt `n` waits `backoff * 2^(n-1)` plus jitter.
    pub backoff: Duration,
    /// Upper bound on any single backoff wait.
    pub backoff_cap: Duration,
    /// Seed for the deterministic jitter stream (same seed, same waits).
    pub jitter_seed: u64,
    /// Also retry *any* server rejection (chaos mode: under injected
    /// byte corruption a well-formed request can arrive mangled and be
    /// rejected as malformed; retrying it is safe for idempotent ops).
    pub retry_rejections: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 5,
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            jitter_seed: 0x5eed,
            retry_rejections: false,
        }
    }
}

impl RetryPolicy {
    /// No retrying at all (the [`Client::connect`] behaviour).
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            ..Self::default()
        }
    }

    /// The default schedule with `max_retries` attempts.
    pub fn retries(max_retries: u32) -> Self {
        Self {
            max_retries,
            ..Self::default()
        }
    }

    fn retryable(&self, err: &ServeError) -> bool {
        match err {
            ServeError::Io(_) | ServeError::ServerClosed => true,
            // Desync symptoms: after corruption the stream cannot be
            // re-synchronised, but a fresh connection can.
            ServeError::Protocol(_) | ServeError::UnexpectedResponse => true,
            ServeError::Rejected { code, .. } => {
                *code == ERR_OVERLOADED || *code == ERR_DEADLINE || self.retry_rejections
            }
        }
    }
}

/// A rejection leaves the connection synchronised (the server answered);
/// everything else warrants a reconnect before the next attempt.
fn needs_reconnect(err: &ServeError) -> bool {
    !matches!(err, ServeError::Rejected { .. })
}

fn is_idempotent(req: &Request) -> bool {
    !matches!(req, Request::Shutdown)
}

enum Transport {
    Plain(TcpStream),
    Faulty(FaultyStream<TcpStream>),
}

impl std::io::Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Transport::Plain(s) => s.read(buf),
            Transport::Faulty(s) => s.read(buf),
        }
    }
}

impl std::io::Write for Transport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Transport::Plain(s) => s.write(buf),
            Transport::Faulty(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Transport::Plain(s) => s.flush(),
            Transport::Faulty(s) => s.flush(),
        }
    }
}

/// A blocking connection to an `edsr serve` instance.
pub struct Client {
    transport: Transport,
    addr: SocketAddr,
    policy: RetryPolicy,
    fault_seed: Option<u64>,
    conns: u64,
    retries: u64,
    jitter: StdRng,
    payload: Vec<u8>,
    frame: Vec<u8>,
}

impl Client {
    /// Connects without retrying (with `TCP_NODELAY` so single-request
    /// latency is honest).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        Self::connect_impl(addr, RetryPolicy::none(), None)
    }

    /// Connects with reconnect + bounded-backoff retrying for transient
    /// failures (including the initial connect).
    pub fn connect_with(addr: impl ToSocketAddrs, policy: RetryPolicy) -> Result<Self, ServeError> {
        Self::connect_impl(addr, policy, None)
    }

    /// Chaos-mode connect: every connection (including reconnects) is
    /// wrapped in a seeded [`FaultyStream`]; the per-connection plan is
    /// derived from `fault_seed` plus the connection count.
    pub fn connect_chaos(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
        fault_seed: u64,
    ) -> Result<Self, ServeError> {
        Self::connect_impl(addr, policy, Some(fault_seed))
    }

    fn connect_impl(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
        fault_seed: Option<u64>,
    ) -> Result<Self, ServeError> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ))
        })?;
        let mut jitter = StdRng::seed_from_u64(policy.jitter_seed);
        let mut retries = 0u64;
        let mut attempt = 0u32;
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(_) if attempt < policy.max_retries => {
                    attempt += 1;
                    retries += 1;
                    if edsr_obs::enabled() {
                        edsr_obs::counter("client/retries", 1);
                    }
                    std::thread::sleep(backoff_delay(&policy, attempt, &mut jitter, None));
                }
                Err(e) => return Err(e.into()),
            }
        };
        stream.set_nodelay(true)?;
        let transport = wrap(stream, fault_seed, 0);
        Ok(Self {
            transport,
            addr,
            policy,
            fault_seed,
            conns: 0,
            retries,
            jitter,
            payload: Vec::new(),
            frame: Vec::new(),
        })
    }

    /// Retries performed so far (reconnect-and-resend or backoff waits),
    /// including retried initial connects.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn reconnect(&mut self) -> Result<(), ServeError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        self.conns += 1;
        self.transport = wrap(stream, self.fault_seed, self.conns);
        Ok(())
    }

    fn try_roundtrip(&mut self, req: &Request) -> Result<Response, ServeError> {
        req.encode_into(&mut self.payload);
        write_frame(&mut self.transport, &self.payload)?;
        if !read_frame(&mut self.transport, &mut self.frame)? {
            return Err(ServeError::ServerClosed);
        }
        let (_opcode, resp) = Response::decode(&self.frame)?;
        if let Response::Error {
            code,
            retry_after_ms,
            message,
        } = resp
        {
            return Err(ServeError::Rejected {
                code,
                retry_after_ms,
                message,
            });
        }
        Ok(resp)
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ServeError> {
        let mut attempt = 0u32;
        loop {
            let result = self.try_roundtrip(req);
            let err = match result {
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            if attempt >= self.policy.max_retries
                || !is_idempotent(req)
                || !self.policy.retryable(&err)
            {
                return Err(err);
            }
            attempt += 1;
            self.retries += 1;
            if edsr_obs::enabled() {
                edsr_obs::counter("client/retries", 1);
            }
            let hint = match &err {
                ServeError::Rejected {
                    retry_after_ms: ms, ..
                } if *ms > 0 => Some(*ms),
                _ => None,
            };
            std::thread::sleep(backoff_delay(&self.policy, attempt, &mut self.jitter, hint));
            if needs_reconnect(&err) {
                // A failed reconnect keeps the dead transport: the next
                // attempt fails fast with Io and re-enters this path
                // until the retry budget runs out.
                let _ = self.reconnect();
            }
        }
    }

    /// Embeds `input` through the snapshot encoder for `task`.
    pub fn embed(&mut self, task: u32, input: &[f32]) -> Result<Vec<f32>, ServeError> {
        let resp = self.roundtrip(&Request::Embed {
            task,
            input: input.to_vec(),
        })?;
        match resp {
            Response::Embedding(v) => Ok(v),
            _ => Err(ServeError::UnexpectedResponse),
        }
    }

    /// The `k` stored replay representations nearest to `query`.
    pub fn knn(
        &mut self,
        query: &[f32],
        k: u32,
        metric: WireMetric,
    ) -> Result<Vec<WireNeighbor>, ServeError> {
        let resp = self.roundtrip(&Request::Knn {
            k,
            metric,
            query: query.to_vec(),
        })?;
        match resp {
            Response::Neighbors(ns) => Ok(ns),
            _ => Err(ServeError::UnexpectedResponse),
        }
    }

    /// Server counters.
    pub fn stats(&mut self) -> Result<StatsReply, ServeError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ServeError::UnexpectedResponse),
        }
    }

    /// Asks the server to drain and stop; returns once acknowledged.
    /// Never retried: the flag may already be set even if the ack was
    /// lost, and the drained server stops accepting reconnects.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            _ => Err(ServeError::UnexpectedResponse),
        }
    }
}

fn wrap(stream: TcpStream, fault_seed: Option<u64>, conn: u64) -> Transport {
    match fault_seed {
        Some(seed) => Transport::Faulty(FaultyStream::new(
            stream,
            WireFaultPlan::seeded(seed.wrapping_add(conn), 64, 6),
        )),
        None => Transport::Plain(stream),
    }
}

/// Attempt `n` (1-based) waits `backoff * 2^(n-1)` capped at
/// `backoff_cap`, plus deterministic jitter in `[0, wait/2]`. A non-zero
/// server retry-after hint replaces the exponential base.
fn backoff_delay(
    policy: &RetryPolicy,
    attempt: u32,
    jitter: &mut StdRng,
    retry_after_ms: Option<u32>,
) -> Duration {
    let base = match retry_after_ms {
        Some(ms) => Duration::from_millis(u64::from(ms)),
        None => {
            let exp = attempt.saturating_sub(1).min(20);
            policy
                .backoff
                .saturating_mul(1u32 << exp)
                .min(policy.backoff_cap)
        }
    };
    let half_us = (base.as_micros() / 2) as u64;
    let jitter_us = if half_us == 0 {
        0
    } else {
        jitter.random_range(0..=half_us)
    };
    base + Duration::from_micros(jitter_us)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_bounded_and_deterministic() {
        let policy = RetryPolicy {
            max_retries: 8,
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(80),
            jitter_seed: 42,
            retry_rejections: false,
        };
        let mut a = StdRng::seed_from_u64(policy.jitter_seed);
        let mut b = StdRng::seed_from_u64(policy.jitter_seed);
        for attempt in 1..=8 {
            let da = backoff_delay(&policy, attempt, &mut a, None);
            let db = backoff_delay(&policy, attempt, &mut b, None);
            assert_eq!(da, db, "same seed must give the same wait");
            // Exponential base capped at 80 ms, jitter at most +50%.
            assert!(da <= Duration::from_millis(120), "wait {da:?} unbounded");
        }
        // The server hint overrides the exponential base.
        let d = backoff_delay(&policy, 1, &mut a, Some(7));
        assert!(d >= Duration::from_millis(7) && d <= Duration::from_millis(11));
    }

    #[test]
    fn retry_classification_honours_codes_and_idempotence() {
        let policy = RetryPolicy::default();
        assert!(policy.retryable(&ServeError::ServerClosed));
        assert!(policy.retryable(&ServeError::Rejected {
            code: ERR_OVERLOADED,
            retry_after_ms: 5,
            message: String::new(),
        }));
        assert!(!policy.retryable(&ServeError::Rejected {
            code: crate::protocol::ERR_BAD_REQUEST,
            retry_after_ms: 0,
            message: String::new(),
        }));
        let chaos = RetryPolicy {
            retry_rejections: true,
            ..RetryPolicy::default()
        };
        assert!(chaos.retryable(&ServeError::Rejected {
            code: crate::protocol::ERR_BAD_REQUEST,
            retry_after_ms: 0,
            message: String::new(),
        }));
        assert!(is_idempotent(&Request::Stats));
        assert!(!is_idempotent(&Request::Shutdown));
        assert!(needs_reconnect(&ServeError::ServerClosed));
        assert!(!needs_reconnect(&ServeError::Rejected {
            code: ERR_DEADLINE,
            retry_after_ms: 0,
            message: String::new(),
        }));
    }
}
