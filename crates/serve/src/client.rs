//! Blocking client for the serve wire protocol.
//!
//! One [`Client`] owns one connection and reuses its frame buffers, so a
//! steady request loop allocates only for the returned values. Used by
//! `tests/serve.rs`, the `serve_load` load generator, and the
//! `edsr query` CLI.

use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    read_frame, write_frame, Request, Response, StatsReply, WireMetric, WireNeighbor,
};
use crate::ServeError;

/// A blocking connection to an `edsr serve` instance.
pub struct Client {
    stream: TcpStream,
    payload: Vec<u8>,
    frame: Vec<u8>,
}

impl Client {
    /// Connects (with `TCP_NODELAY` so single-request latency is honest).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            payload: Vec::new(),
            frame: Vec::new(),
        })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ServeError> {
        req.encode_into(&mut self.payload);
        write_frame(&mut self.stream, &self.payload)?;
        if !read_frame(&mut self.stream, &mut self.frame)? {
            return Err(ServeError::ServerClosed);
        }
        let (_opcode, resp) = Response::decode(&self.frame)?;
        if let Response::Error { code, message } = resp {
            return Err(ServeError::Rejected { code, message });
        }
        Ok(resp)
    }

    /// Embeds `input` through the snapshot encoder for `task`.
    pub fn embed(&mut self, task: u32, input: &[f32]) -> Result<Vec<f32>, ServeError> {
        let resp = self.roundtrip(&Request::Embed {
            task,
            input: input.to_vec(),
        })?;
        match resp {
            Response::Embedding(v) => Ok(v),
            _ => Err(ServeError::UnexpectedResponse),
        }
    }

    /// The `k` stored replay representations nearest to `query`.
    pub fn knn(
        &mut self,
        query: &[f32],
        k: u32,
        metric: WireMetric,
    ) -> Result<Vec<WireNeighbor>, ServeError> {
        let resp = self.roundtrip(&Request::Knn {
            k,
            metric,
            query: query.to_vec(),
        })?;
        match resp {
            Response::Neighbors(ns) => Ok(ns),
            _ => Err(ServeError::UnexpectedResponse),
        }
    }

    /// Server counters.
    pub fn stats(&mut self) -> Result<StatsReply, ServeError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ServeError::UnexpectedResponse),
        }
    }

    /// Asks the server to drain and stop; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            _ => Err(ServeError::UnexpectedResponse),
        }
    }
}
