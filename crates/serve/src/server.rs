//! Dynamic micro-batching queue and the blocking TCP server.
//!
//! ## Batching window semantics
//!
//! Embed requests enqueue onto one shared queue and block on a
//! per-submitter slot. A dedicated batcher thread flushes the queue when
//! either **max batch size** requests are waiting or the **batching
//! window** has elapsed since the *oldest* queued request arrived —
//! whichever comes first. A flush drains up to `max_batch` requests,
//! groups them by task, and answers each group with one
//! [`Engine::embed_rows`] call, so concurrent clients share a single
//! batched forward. Because the forward computes rows independently,
//! coalescing never changes any individual answer.
//!
//! The submit path and the flush path recycle every buffer they touch
//! (slot state, staging matrix, drained-batch vector), so a warm
//! cache-hit embed makes zero steady-state heap allocations end to end
//! (`tests/zero_alloc.rs`).
//!
//! ## Deadlines and backpressure
//!
//! The submit queue is bounded ([`ServerConfig::queue_cap`]): a full
//! queue sheds the request immediately with
//! [`SubmitError::Overloaded`] and a retry-after hint instead of
//! blocking forever. A configured per-request deadline
//! ([`ServerConfig::deadline`]) is enforced at flush time — a request
//! that aged out in the queue is failed with
//! [`SubmitError::DeadlineExceeded`] and never reaches the engine, so
//! overload turns into bounded, structured errors rather than unbounded
//! latency.
//!
//! ## Live snapshot rotation
//!
//! With [`ServerConfig::rotate`] set, a rotator thread polls the
//! snapshot directory. A candidate newer (by path order) than the live
//! snapshot is CRC-validated and built into a fresh [`Engine`]
//! **off-lock**; only the final swap takes the engine mutex. A flush
//! holds that mutex for its whole batch, so the swap always lands
//! between flushes: every request is answered by exactly one coherent
//! snapshot, never a mix. Corrupt or torn candidates are skipped (the
//! exporter's tmp-file + rename keeps visible files complete; the CRC
//! catches everything else).
//!
//! ## Shutdown
//!
//! A shutdown request (or [`ServeHandle::shutdown`]) stops the accept
//! loop; connection handlers observe the flag only **between** frames, so
//! every fully received request is still answered; the batcher drains its
//! queue before exiting. Accepted requests are never dropped.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use edsr_cl::checkpoint::{load_any_serve_snapshot, AnyServeSnapshot};
use edsr_tensor::Matrix;

use crate::engine::{EmbedReport, Engine};
use crate::fault::{FaultyStream, WireFaultPlan};
use crate::protocol::{
    write_frame, ProtocolError, Request, Response, StatsReply, WireNeighbor, ERR_BAD_REQUEST,
    ERR_DEADLINE, ERR_OVERLOADED, ERR_SHUTTING_DOWN,
};
use crate::ServeError;

/// Obs index for `serve/rejected` counters shed by the deadline.
pub const REJECT_DEADLINE: u64 = 0;
/// Obs index for `serve/rejected` counters shed by the bounded queue.
pub const REJECT_OVERLOAD: u64 = 1;

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Live snapshot rotation settings ([`ServerConfig::rotate`]).
#[derive(Debug, Clone)]
pub struct RotateConfig {
    /// Directory to watch for `.snapshot` files.
    pub dir: PathBuf,
    /// Poll interval (`EDSR_SERVE_ROTATE_MS`).
    pub poll: Duration,
    /// Embedding-cache capacity for freshly built engines (a rotation
    /// replaces the whole engine, cache included — coherence by
    /// construction).
    pub cache_capacity: usize,
    /// Path of the snapshot the initial engine was built from; only
    /// strictly newer paths are rotation candidates. `None` rotates to
    /// the newest valid snapshot on the first poll.
    pub current: Option<PathBuf>,
    /// Serve candidates on the int8 backend (`EDSR_SERVE_QUANT`): v2
    /// snapshots load natively, v1 candidates are quantized in-process
    /// before the swap. When `false`, v2 candidates still serve
    /// quantized (they carry no f32 weights to fall back to).
    pub quantize: bool,
}

/// Server/batcher tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Flush the micro-batch queue at this many waiting requests.
    pub max_batch: usize,
    /// ... or once the oldest waiting request is this old.
    pub window: Duration,
    /// Concurrent connections the accept pool admits; further clients
    /// queue in the listen backlog. Each connection is a blocking
    /// request–response loop, so this doubles as the per-connection
    /// in-flight cap (exactly one request in flight per connection).
    pub max_connections: usize,
    /// Per-request deadline enforced in the batcher
    /// (`EDSR_SERVE_DEADLINE_MS`); `None` disables.
    pub deadline: Option<Duration>,
    /// Bound on the submit queue (`EDSR_SERVE_QUEUE`); a full queue
    /// sheds with [`SubmitError::Overloaded`].
    pub queue_cap: usize,
    /// Socket read poll granularity (`EDSR_SERVE_READ_TIMEOUT_MS`):
    /// how often an idle handler re-checks the shutdown flag.
    pub read_timeout: Duration,
    /// Slow-loris cap (`EDSR_SERVE_STALL_MS`): a peer that stalls
    /// mid-frame longer than this gets a structured truncation error
    /// and its connection closed.
    pub stall_cap: Duration,
    /// Live snapshot rotation; `None` pins the startup snapshot.
    pub rotate: Option<RotateConfig>,
    /// Wrap every accepted connection in a seeded [`FaultyStream`]
    /// (chaos testing only; the per-connection plan is derived from
    /// this seed plus the connection index).
    pub fault_seed: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            window: Duration::from_micros(500),
            max_connections: 8,
            deadline: None,
            queue_cap: 1024,
            read_timeout: Duration::from_millis(20),
            stall_cap: Duration::from_secs(5),
            rotate: None,
            fault_seed: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Queued,
    Done,
    Failed,
}

struct SlotInner {
    phase: Phase,
    task: usize,
    enqueued: Instant,
    input: Vec<f32>,
    out: Vec<f32>,
    code: u16,
    error: String,
    report: EmbedReport,
}

/// One submitter's rendezvous cell with the batcher thread. All buffers
/// live inside and are recycled across requests.
struct Slot {
    inner: Mutex<SlotInner>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(SlotInner {
                phase: Phase::Idle,
                task: 0,
                enqueued: Instant::now(),
                input: Vec::new(),
                out: Vec::new(),
                code: ERR_BAD_REQUEST,
                error: String::new(),
                report: EmbedReport::default(),
            }),
            cv: Condvar::new(),
        })
    }
}

#[derive(Default)]
struct BatchStats {
    batches: AtomicU64,
    batched_requests: AtomicU64,
    max_batch: AtomicU64,
    rejected_deadline: AtomicU64,
    rejected_overload: AtomicU64,
    rotations: AtomicU64,
}

/// State shared between submitters, the batcher thread, the rotator, and
/// the TCP handlers (which also reach the engine directly for knn/stats).
struct BatchShared {
    engine: Mutex<Engine>,
    queue: Mutex<VecDeque<Arc<Slot>>>,
    queue_cv: Condvar,
    stop: AtomicBool,
    max_batch: usize,
    window: Duration,
    deadline: Option<Duration>,
    queue_cap: usize,
    rotate_mx: Mutex<()>,
    rotate_cv: Condvar,
    stats: BatchStats,
}

/// The dynamic micro-batcher: owns the [`Engine`] (behind a mutex shared
/// with knn/stats callers) and a worker thread coalescing embed
/// submissions. Usable standalone, without the TCP server — the
/// zero-allocation tests drive it in-process.
pub struct Batcher {
    shared: Arc<BatchShared>,
    worker: Option<std::thread::JoinHandle<()>>,
    rotator: Option<std::thread::JoinHandle<()>>,
}

/// Why a submission was not answered.
#[derive(Debug)]
pub enum SubmitError {
    /// The batcher is draining for shutdown.
    ShuttingDown,
    /// The engine rejected the request (dimension/task validation).
    Rejected(String),
    /// The request aged past [`ServerConfig::deadline`] in the queue.
    DeadlineExceeded,
    /// The bounded submit queue is full; the request was shed.
    Overloaded {
        /// Suggested wait before retrying (the batching window: one
        /// flush from now the queue has drained at least one batch).
        retry_after_ms: u32,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
            SubmitError::Rejected(msg) => write!(f, "{msg}"),
            SubmitError::DeadlineExceeded => write!(f, "request deadline exceeded in batch queue"),
            SubmitError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded, retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

impl Batcher {
    /// Starts the batcher thread over `engine` with default deadline and
    /// queue-bound settings.
    pub fn new(engine: Engine, max_batch: usize, window: Duration) -> Self {
        let cfg = ServerConfig {
            max_batch,
            window,
            ..ServerConfig::default()
        };
        Self::with_config(engine, &cfg)
    }

    /// Starts the batcher thread with the full knob set (deadline,
    /// bounded queue). TCP-only fields of `cfg` are ignored here.
    pub fn with_config(engine: Engine, cfg: &ServerConfig) -> Self {
        let max_batch = cfg.max_batch.max(1);
        let shared = Arc::new(BatchShared {
            engine: Mutex::new(engine),
            queue: Mutex::new(VecDeque::with_capacity(max_batch * 2)),
            queue_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            max_batch,
            window: cfg.window,
            deadline: cfg.deadline,
            queue_cap: cfg.queue_cap.max(1),
            rotate_mx: Mutex::new(()),
            rotate_cv: Condvar::new(),
            stats: BatchStats::default(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("edsr-serve-batch".into())
            .spawn(move || batch_worker(&worker_shared))
            .expect("spawn batcher thread");
        Self {
            shared,
            worker: Some(worker),
            rotator: None,
        }
    }

    /// Starts the live-rotation thread: poll the snapshot directory,
    /// validate candidates, build fresh engines off-lock, swap between
    /// flushes. Stopped (and joined) together with the batcher.
    pub fn start_rotation(&mut self, cfg: RotateConfig) {
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name("edsr-serve-rotate".into())
            .spawn(move || rotation_worker(&shared, cfg))
            .expect("spawn rotation thread");
        self.rotator = Some(handle);
    }

    /// A new submission handle (one per concurrent caller; each embeds
    /// through its own recycled slot).
    pub fn submitter(&self) -> Submitter {
        Submitter {
            shared: Arc::clone(&self.shared),
            slot: Slot::new(),
        }
    }

    /// The engine, for knn/stats calls that bypass the embed queue.
    fn engine(&self) -> MutexGuard<'_, Engine> {
        lock(&self.shared.engine)
    }

    /// Runs `f` under the engine lock.
    pub fn with_engine<R>(&self, f: impl FnOnce(&mut Engine) -> R) -> R {
        f(&mut self.engine())
    }

    /// Batches flushed, requests coalesced, and the largest batch so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.shared.stats.batches.load(Ordering::Relaxed),
            self.shared.stats.batched_requests.load(Ordering::Relaxed),
            self.shared.stats.max_batch.load(Ordering::Relaxed),
        )
    }

    /// Requests shed so far: `(deadline-expired, queue-overload)`.
    pub fn rejected(&self) -> (u64, u64) {
        (
            self.shared.stats.rejected_deadline.load(Ordering::Relaxed),
            self.shared.stats.rejected_overload.load(Ordering::Relaxed),
        )
    }

    /// Completed live snapshot rotations.
    pub fn rotations(&self) -> u64 {
        self.shared.stats.rotations.load(Ordering::Relaxed)
    }

    /// Drains the queue and stops the worker thread. Submissions after
    /// this fail with [`SubmitError::ShuttingDown`]; knn/stats through
    /// [`with_engine`](Self::with_engine) keep working.
    pub fn stop(&mut self) {
        self.stop_worker();
    }

    fn stop_worker(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        self.shared.rotate_cv.notify_all();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
        if let Some(r) = self.rotator.take() {
            let _ = r.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.stop_worker();
    }
}

/// A per-caller embed handle. `embed` blocks until the batcher answers.
pub struct Submitter {
    shared: Arc<BatchShared>,
    slot: Arc<Slot>,
}

impl Submitter {
    /// Submits one embed request: `input` is handed to the batcher and
    /// returned (unchanged) on completion; the embedding lands in `out`.
    /// Both buffers are recycled — warm calls allocate nothing here.
    pub fn embed(
        &mut self,
        task: usize,
        input: &mut Vec<f32>,
        out: &mut Vec<f32>,
    ) -> Result<EmbedReport, SubmitError> {
        if self.shared.stop.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        {
            let mut inner = lock(&self.slot.inner);
            debug_assert_eq!(inner.phase, Phase::Idle, "slot reused while in flight");
            inner.task = task;
            inner.enqueued = Instant::now();
            std::mem::swap(&mut inner.input, input);
            std::mem::swap(&mut inner.out, out);
            inner.phase = Phase::Queued;
        }
        // Lock order: a submitter never holds its slot lock while taking
        // the queue lock (the batcher acquires queue → slot).
        {
            let mut q = lock(&self.shared.queue);
            if q.len() >= self.shared.queue_cap {
                // Bounded queue: shed now instead of blocking forever.
                // The hint is one batching window — by then the batcher
                // has drained at least one flush from the backlog.
                drop(q);
                let mut inner = lock(&self.slot.inner);
                inner.phase = Phase::Idle;
                std::mem::swap(&mut inner.input, input);
                std::mem::swap(&mut inner.out, out);
                self.shared
                    .stats
                    .rejected_overload
                    .fetch_add(1, Ordering::Relaxed);
                if edsr_obs::enabled() {
                    edsr_obs::counter_at("serve/rejected", REJECT_OVERLOAD, 1);
                }
                return Err(SubmitError::Overloaded {
                    retry_after_ms: (self.shared.window.as_millis() as u32).max(1),
                });
            }
            q.push_back(Arc::clone(&self.slot));
            self.shared.queue_cv.notify_all();
        }
        let mut inner = lock(&self.slot.inner);
        while inner.phase == Phase::Queued {
            inner = self.slot.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
        std::mem::swap(&mut inner.input, input);
        std::mem::swap(&mut inner.out, out);
        let failed = inner.phase == Phase::Failed;
        let report = inner.report;
        inner.phase = Phase::Idle;
        if failed {
            match inner.code {
                ERR_SHUTTING_DOWN => Err(SubmitError::ShuttingDown),
                ERR_DEADLINE => Err(SubmitError::DeadlineExceeded),
                _ => Err(SubmitError::Rejected(std::mem::take(&mut inner.error))),
            }
        } else {
            Ok(report)
        }
    }
}

/// The batcher thread: wait for work, honour the batching window, flush.
fn batch_worker(shared: &BatchShared) {
    let mut batch: Vec<Arc<Slot>> = Vec::with_capacity(shared.max_batch);
    let mut order: Vec<usize> = Vec::with_capacity(shared.max_batch);
    let mut done: Vec<bool> = Vec::with_capacity(shared.max_batch);
    let mut staging = Matrix::zeros(0, 0);
    loop {
        let mut q = lock(&shared.queue);
        loop {
            if !q.is_empty() {
                break;
            }
            if shared.stop.load(Ordering::SeqCst) {
                return; // queue drained, safe to exit
            }
            let (guard, _) = shared
                .queue_cv
                .wait_timeout(q, Duration::from_millis(5))
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
        // Window: flush when full, when the oldest request ages out, or
        // immediately when draining for shutdown.
        if !shared.stop.load(Ordering::SeqCst) {
            let deadline = {
                let front = q.front().expect("non-empty");
                let enqueued = lock(&front.inner).enqueued;
                enqueued + shared.window
            };
            while q.len() < shared.max_batch && !shared.stop.load(Ordering::SeqCst) {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }
        let n = q.len().min(shared.max_batch);
        batch.clear();
        batch.extend(q.drain(..n));
        drop(q);
        flush(shared, &batch, &mut order, &mut done, &mut staging);
        batch.clear(); // drop Arc refs promptly
    }
}

/// Answers one drained batch: shed deadline-expired requests, group the
/// rest by task, one batched forward per group, fill and wake every slot.
fn flush(
    shared: &BatchShared,
    batch: &[Arc<Slot>],
    order: &mut Vec<usize>,
    done: &mut Vec<bool>,
    staging: &mut Matrix,
) {
    let n = batch.len();
    if n == 0 {
        return;
    }
    done.clear();
    done.resize(n, false);
    // Deadline shedding happens before the engine lock: an expired
    // request costs a slot wake, never a forward.
    let mut live = n;
    if let Some(deadline) = shared.deadline {
        let now = Instant::now();
        for (i, slot) in batch.iter().enumerate() {
            let expired = {
                let inner = lock(&slot.inner);
                now.saturating_duration_since(inner.enqueued) > deadline
            };
            if expired {
                done[i] = true;
                live -= 1;
                shared
                    .stats
                    .rejected_deadline
                    .fetch_add(1, Ordering::Relaxed);
                if edsr_obs::enabled() {
                    edsr_obs::counter_at("serve/rejected", REJECT_DEADLINE, 1);
                }
                fail_slot(
                    slot,
                    ERR_DEADLINE,
                    "request deadline exceeded in batch queue",
                );
            }
        }
    }
    if live == 0 {
        return;
    }
    let obs_on = edsr_obs::enabled();
    if obs_on {
        edsr_obs::counter("serve/batches", 1);
        edsr_obs::counter("serve/batched_requests", live as u64);
        edsr_obs::histogram("serve/batch_size", live as f64);
    }
    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .batched_requests
        .fetch_add(live as u64, Ordering::Relaxed);
    shared
        .stats
        .max_batch
        .fetch_max(live as u64, Ordering::Relaxed);

    let mut engine = lock(&shared.engine);
    for start in 0..n {
        if done[start] {
            continue;
        }
        let task = lock(&batch[start].inner).task;
        let dim = match engine.expected_input_dim(task) {
            Ok(d) => d,
            Err(msg) => {
                // Fail every request of this (invalid) task in the batch.
                for (i, slot) in batch.iter().enumerate().skip(start) {
                    if !done[i] && lock(&slot.inner).task == task {
                        done[i] = true;
                        fail_slot(slot, ERR_BAD_REQUEST, &msg);
                    }
                }
                continue;
            }
        };
        // Gather this task's rows; wrong-width inputs fail individually
        // so one bad client cannot sink its batch-mates.
        order.clear();
        for (i, slot) in batch.iter().enumerate().skip(start) {
            if done[i] {
                continue;
            }
            let inner = lock(&slot.inner);
            if inner.task != task {
                continue;
            }
            done[i] = true;
            if inner.input.len() == dim {
                order.push(i);
            } else {
                let msg = format!(
                    "got {} features, task {task} expects {dim}",
                    inner.input.len()
                );
                drop(inner);
                fail_slot(slot, ERR_BAD_REQUEST, &msg);
            }
        }
        if order.is_empty() {
            continue;
        }
        if staging.rows() != order.len() || staging.cols() != dim {
            *staging = Matrix::zeros(order.len(), dim);
        }
        for (row, &i) in order.iter().enumerate() {
            staging
                .row_mut(row)
                .copy_from_slice(&lock(&batch[i].inner).input);
        }
        let result = engine.embed_rows(task, staging, |row, emb, hit| {
            let slot = &batch[order[row]];
            let mut inner = lock(&slot.inner);
            inner.out.clear();
            inner.out.extend_from_slice(emb);
            inner.report = EmbedReport {
                forward_rows: usize::from(!hit),
                cache_hits: usize::from(hit),
            };
            inner.phase = Phase::Done;
            slot.cv.notify_one();
        });
        if let Err(msg) = result {
            for &i in order.iter() {
                // embed_rows validates before emitting: on error no slot
                // of this group has been answered yet.
                fail_slot(&batch[i], ERR_BAD_REQUEST, &msg);
            }
        }
    }
}

fn fail_slot(slot: &Slot, code: u16, msg: &str) {
    let mut inner = lock(&slot.inner);
    inner.code = code;
    inner.error.clear();
    inner.error.push_str(msg);
    inner.phase = Phase::Failed;
    slot.cv.notify_one();
}

// ---------------------------------------------------------------------------
// Live snapshot rotation.

/// `.snapshot` files in `dir`, path-sorted ascending (the exporter's
/// naming embeds the completed-task count, so newest sorts last — the
/// same convention as `latest_valid_serve_snapshot`).
fn scan_snapshots(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("snapshot") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// One rotation attempt: newest candidate first, skipping corrupt files
/// (CRC/decode failures), stopping at the live snapshot. The fresh
/// engine is fully built before the engine lock is taken, so the swap
/// itself is one pointer-sized store between micro-batch flushes.
fn try_rotate(shared: &BatchShared, cfg: &RotateConfig, current: &mut Option<PathBuf>) {
    let paths = scan_snapshots(&cfg.dir);
    for path in paths.iter().rev() {
        if let Some(cur) = current.as_ref() {
            if path <= cur {
                break; // nothing newer than the live snapshot
            }
        }
        let started = Instant::now();
        let fresh = load_any_serve_snapshot(path)
            .ok()
            .and_then(|any| match any {
                // Serving quantized: v1 candidates are quantized
                // in-process so a mixed directory still hot-swaps onto
                // the int8 backend.
                AnyServeSnapshot::V1(snap) if cfg.quantize => {
                    edsr_cl::quantize_serve_snapshot(&snap)
                        .ok()
                        .map(|q| AnyServeSnapshot::V2(Box::new(q)))
                }
                other => Some(other),
            })
            .and_then(|any| Engine::from_any(any, cfg.cache_capacity).ok());
        match fresh {
            Some(engine) => {
                *lock(&shared.engine) = engine;
                shared.stats.rotations.fetch_add(1, Ordering::Relaxed);
                if edsr_obs::enabled() {
                    edsr_obs::counter("serve/rotations", 1);
                    edsr_obs::histogram("serve/rotation_ms", started.elapsed().as_secs_f64() * 1e3);
                }
                *current = Some(path.clone());
                return;
            }
            None => {
                // Corrupt/torn candidate: skip it and try the next-older
                // one; the next poll retries in case it heals.
                if edsr_obs::enabled() {
                    edsr_obs::counter("serve/rotation_skipped", 1);
                }
            }
        }
    }
}

/// The rotator thread: sleep on its condvar (woken early by stop),
/// then attempt one rotation per poll tick.
fn rotation_worker(shared: &BatchShared, cfg: RotateConfig) {
    let mut current = cfg.current.clone();
    loop {
        {
            let guard = lock(&shared.rotate_mx);
            let _ = shared
                .rotate_cv
                .wait_timeout(guard, cfg.poll)
                .unwrap_or_else(|e| e.into_inner());
        }
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        try_rotate(shared, &cfg, &mut current);
    }
}

// ---------------------------------------------------------------------------
// TCP server.

/// Final counters reported by [`ServeHandle::join`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerReport {
    /// Requests answered across all connections.
    pub requests: u64,
    /// Batched forward flushes.
    pub batches: u64,
    /// Embed requests answered through the batcher.
    pub batched_requests: u64,
    /// Largest coalesced batch observed.
    pub max_batch: u64,
    /// Embedding-cache hits.
    pub cache_hits: u64,
    /// Embedding-cache misses.
    pub cache_misses: u64,
    /// Completed live snapshot rotations.
    pub rotations: u64,
    /// Requests shed because they aged past the deadline.
    pub rejected_deadline: u64,
    /// Requests shed because the submit queue was full.
    pub rejected_overload: u64,
}

struct ServerShared {
    batch: Arc<BatchShared>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    conns: Mutex<usize>,
    conns_cv: Condvar,
    max_connections: usize,
    read_timeout: Duration,
    stall_cap: Duration,
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`shutdown`](Self::shutdown) + [`join`](Self::join) (or send a
/// shutdown request over the wire).
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<std::thread::JoinHandle<ServerReport>>,
}

impl ServeHandle {
    /// The bound address (useful with ephemeral port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the server to drain and stop (same as a wire shutdown).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the accept loop to drain all connections and the
    /// batcher to stop; returns the final counters.
    pub fn join(mut self) -> Result<ServerReport, ServeError> {
        let handle = self.accept.take().expect("join called once");
        handle.join().map_err(|_| ServeError::ServerClosed)
    }
}

/// Starts the server over `engine` on `addr` (use port 0 for an
/// ephemeral port; read it back from [`ServeHandle::addr`]).
pub fn serve(
    engine: Engine,
    addr: impl std::net::ToSocketAddrs,
    cfg: ServerConfig,
) -> Result<ServeHandle, ServeError> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let mut batcher = Batcher::with_config(engine, &cfg);
    if let Some(rotate) = cfg.rotate.clone() {
        batcher.start_rotation(rotate);
    }
    let read_timeout = if cfg.read_timeout.is_zero() {
        ServerConfig::default().read_timeout
    } else {
        cfg.read_timeout
    };
    let shared = Arc::new(ServerShared {
        batch: Arc::clone(&batcher.shared),
        shutdown: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        conns: Mutex::new(0),
        conns_cv: Condvar::new(),
        max_connections: cfg.max_connections.max(1),
        read_timeout,
        stall_cap: cfg.stall_cap.max(Duration::from_millis(1)),
    });
    let accept_shared = Arc::clone(&shared);
    let fault_seed = cfg.fault_seed;
    let accept = std::thread::Builder::new()
        .name("edsr-serve-accept".into())
        .spawn(move || accept_loop(&listener, &accept_shared, batcher, fault_seed))
        .map_err(ServeError::Io)?;
    Ok(ServeHandle {
        addr: local,
        shared,
        accept: Some(accept),
    })
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    mut batcher: Batcher,
    fault_seed: Option<u64>,
) -> ServerReport {
    let _span = edsr_obs::span!("serve/accept_loop");
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut accepted: u64 = 0;
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Bounded accept pool: block admission at capacity.
                {
                    let mut active = lock(&shared.conns);
                    while *active >= shared.max_connections {
                        active = shared
                            .conns_cv
                            .wait(active)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    *active += 1;
                }
                let conn_idx = accepted;
                accepted += 1;
                let conn_shared = Arc::clone(shared);
                let submitter = batcher.submitter();
                let h = std::thread::Builder::new()
                    .name("edsr-serve-conn".into())
                    .spawn(move || {
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_read_timeout(Some(conn_shared.read_timeout));
                        match fault_seed {
                            Some(seed) => {
                                // A per-connection plan so reconnects see
                                // fresh faults (deterministic in the
                                // seed + accept order).
                                let plan =
                                    WireFaultPlan::seeded(seed.wrapping_add(conn_idx), 64, 6);
                                let faulty = FaultyStream::new(stream, plan);
                                handle_connection(faulty, &conn_shared, submitter);
                            }
                            None => handle_connection(stream, &conn_shared, submitter),
                        }
                        let mut active = lock(&conn_shared.conns);
                        *active -= 1;
                        conn_shared.conns_cv.notify_one();
                    })
                    .expect("spawn connection handler");
                handlers.push(h);
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
    // Graceful drain: every accepted connection finishes its in-flight
    // frames, then the batcher empties its queue and stops.
    for h in handlers {
        let _ = h.join();
    }
    batcher.stop_worker();
    let (batches, batched_requests, max_batch) = batcher.stats();
    let (rejected_deadline, rejected_overload) = batcher.rejected();
    let rotations = batcher.rotations();
    let (cache_hits, cache_misses) = batcher.with_engine(|e| (e.cache_hits(), e.cache_misses()));
    edsr_obs::flush();
    ServerReport {
        requests: shared.requests.load(Ordering::Relaxed),
        batches,
        batched_requests,
        max_batch,
        cache_hits,
        cache_misses,
        rotations,
        rejected_deadline,
        rejected_overload,
    }
}

/// Reads one frame, polling the shutdown flag between frames (a read
/// timeout only aborts the connection mid-frame after the configured
/// stall cap — slow-loris protection).
fn poll_frame<S: Read>(
    stream: &mut S,
    buf: &mut Vec<u8>,
    shared: &ServerShared,
) -> Result<bool, ProtocolError> {
    let stall_cap = shared.stall_cap;
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    let mut stall_start: Option<Instant> = None;
    while filled < 4 {
        match stream.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(ProtocolError::Truncated {
                    expected: 4,
                    got: filled,
                })
            }
            Ok(n) => {
                filled += n;
                stall_start = None;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if filled == 0 {
                    // Idle between frames: honour shutdown.
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return Ok(false);
                    }
                } else {
                    // Mid-frame: give the client time, but not forever.
                    let start = *stall_start.get_or_insert_with(Instant::now);
                    if start.elapsed() > stall_cap {
                        return Err(ProtocolError::Truncated {
                            expected: 4,
                            got: filled,
                        });
                    }
                }
            }
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > crate::protocol::MAX_FRAME {
        return Err(ProtocolError::TooLarge(len));
    }
    buf.clear();
    buf.resize(len, 0);
    let mut read = 0usize;
    let mut stall_start: Option<Instant> = None;
    while read < len {
        match stream.read(&mut buf[read..]) {
            Ok(0) => {
                return Err(ProtocolError::Truncated {
                    expected: len,
                    got: read,
                })
            }
            Ok(n) => {
                read += n;
                stall_start = None;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                let start = *stall_start.get_or_insert_with(Instant::now);
                if start.elapsed() > stall_cap {
                    return Err(ProtocolError::Truncated {
                        expected: len,
                        got: read,
                    });
                }
            }
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    Ok(true)
}

fn handle_connection<S: Read + Write>(
    mut stream: S,
    shared: &ServerShared,
    mut submitter: Submitter,
) {
    let mut frame = Vec::new();
    let mut payload = Vec::new();
    let mut input = Vec::new();
    let mut out = Vec::new();
    let mut neighbors = Vec::new();
    loop {
        match poll_frame(&mut stream, &mut frame, shared) {
            Ok(false) => return,
            Ok(true) => {}
            Err(ProtocolError::Io(_)) => return, // peer went away
            Err(e) => {
                // Malformed framing: answer with a structured error, then
                // close — the stream can no longer be re-synchronised.
                let resp = Response::Error {
                    code: ERR_BAD_REQUEST,
                    retry_after_ms: 0,
                    message: e.to_string(),
                };
                resp.encode_into(0, &mut payload);
                let _ = write_frame(&mut stream, &payload);
                return;
            }
        }
        let started = Instant::now();
        let _req_span = edsr_obs::span!("serve/request");
        let (opcode, response) = match Request::decode(&frame) {
            Err(e) => (
                0,
                Response::Error {
                    code: ERR_BAD_REQUEST,
                    retry_after_ms: 0,
                    message: e.to_string(),
                },
            ),
            Ok(req) => {
                let opcode = req.opcode();
                let resp = answer(
                    req,
                    shared,
                    &mut submitter,
                    &mut input,
                    &mut out,
                    &mut neighbors,
                );
                (opcode, resp)
            }
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        response.encode_into(opcode, &mut payload);
        if write_frame(&mut stream, &payload).is_err() {
            return;
        }
        if edsr_obs::enabled() {
            edsr_obs::histogram("serve/latency_us", started.elapsed().as_secs_f64() * 1e6);
        }
        // Recycle the embedding buffer moved into the response.
        if let Response::Embedding(v) = response {
            out = v;
        }
    }
}

fn answer(
    req: Request,
    shared: &ServerShared,
    submitter: &mut Submitter,
    input: &mut Vec<f32>,
    out: &mut Vec<f32>,
    neighbors: &mut Vec<edsr_linalg::Neighbor>,
) -> Response {
    match req {
        Request::Embed { task, input: body } => {
            input.clear();
            input.extend_from_slice(&body);
            match submitter.embed(task as usize, input, out) {
                Ok(_) => Response::Embedding(std::mem::take(out)),
                Err(SubmitError::ShuttingDown) => Response::Error {
                    code: ERR_SHUTTING_DOWN,
                    retry_after_ms: 0,
                    message: "server is shutting down".into(),
                },
                Err(SubmitError::DeadlineExceeded) => Response::Error {
                    code: ERR_DEADLINE,
                    retry_after_ms: 0,
                    message: "request deadline exceeded in batch queue".into(),
                },
                Err(SubmitError::Overloaded { retry_after_ms }) => Response::Error {
                    code: ERR_OVERLOADED,
                    retry_after_ms,
                    message: "server overloaded, submit queue full".into(),
                },
                Err(SubmitError::Rejected(message)) => Response::Error {
                    code: ERR_BAD_REQUEST,
                    retry_after_ms: 0,
                    message,
                },
            }
        }
        Request::Knn { k, metric, query } => {
            let result = {
                let mut engine = lock(&shared.batch.engine);
                engine.knn_into(&query, k as usize, metric.into(), neighbors)
            };
            match result {
                Ok(()) => Response::Neighbors(
                    neighbors
                        .iter()
                        .map(|n| WireNeighbor {
                            index: n.index as u64,
                            score: n.score,
                        })
                        .collect(),
                ),
                Err(message) => Response::Error {
                    code: ERR_BAD_REQUEST,
                    retry_after_ms: 0,
                    message,
                },
            }
        }
        Request::Stats => {
            let engine_stats = {
                let engine = lock(&shared.batch.engine);
                (
                    engine.cache_hits(),
                    engine.cache_misses(),
                    engine.memory_rows() as u64,
                    engine.repr_dim() as u64,
                    engine.quantized() as u64,
                )
            };
            Response::Stats(StatsReply {
                // +1: count this stats request itself.
                requests: shared.requests.load(Ordering::Relaxed) + 1,
                batches: shared.batch.stats.batches.load(Ordering::Relaxed),
                batched_requests: shared.batch.stats.batched_requests.load(Ordering::Relaxed),
                max_batch: shared.batch.stats.max_batch.load(Ordering::Relaxed),
                cache_hits: engine_stats.0,
                cache_misses: engine_stats.1,
                memory_rows: engine_stats.2,
                repr_dim: engine_stats.3,
                rotations: shared.batch.stats.rotations.load(Ordering::Relaxed),
                rejected_deadline: shared.batch.stats.rejected_deadline.load(Ordering::Relaxed),
                rejected_overload: shared.batch.stats.rejected_overload.load(Ordering::Relaxed),
                quantized: engine_stats.4,
            })
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::ShutdownAck
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_cl::checkpoint::ServeSnapshot;
    use edsr_cl::{ContinualModel, ModelConfig};
    use edsr_tensor::rng::seeded;

    fn engine_seeded(seed: u64) -> Engine {
        let mut rng = seeded(seed);
        let model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
        let inputs = Matrix::randn(4, 16, 1.0, &mut rng);
        let reprs = model.represent(&inputs, 0);
        let snap = ServeSnapshot::capture(&model, reprs, vec![0; 4], "t", 1).unwrap();
        Engine::from_snapshot(snap, 16).unwrap()
    }

    fn engine() -> Engine {
        engine_seeded(21)
    }

    #[test]
    fn batcher_answers_and_reports_errors() {
        let batcher = Batcher::new(engine(), 4, Duration::from_micros(100));
        let mut sub = batcher.submitter();
        let mut input: Vec<f32> = (0..16).map(|i| i as f32 * 0.1).collect();
        let mut out = Vec::new();
        let report = sub.embed(0, &mut input, &mut out).expect("valid embed");
        assert_eq!(report.forward_rows, 1);
        assert_eq!(out.len(), 48);
        assert_eq!(input.len(), 16, "input buffer handed back");

        // Second identical request: cache hit, same bits.
        let mut out2 = Vec::new();
        let report = sub.embed(0, &mut input, &mut out2).expect("valid embed");
        assert_eq!(report.cache_hits, 1);
        assert_eq!(
            out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            out2.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );

        // Wrong width → Rejected, buffers intact.
        let mut bad: Vec<f32> = vec![0.0; 9];
        match sub.embed(0, &mut bad, &mut out) {
            Err(SubmitError::Rejected(msg)) => assert!(msg.contains("expects 16")),
            other => panic!("expected rejection, got {other:?}"),
        }

        let (batches, reqs, max_batch) = batcher.stats();
        assert!(batches >= 2);
        assert_eq!(reqs, 3);
        assert!(max_batch >= 1);
        assert_eq!(batcher.with_engine(|e| e.cache_hits()), 1);
    }

    #[test]
    fn concurrent_submitters_coalesce_into_one_batch() {
        let n = 4;
        // A long window so all submitters land in one flush once the
        // batch fills to exactly n.
        let batcher = Arc::new(Batcher::new(engine(), n, Duration::from_secs(5)));
        let results: Vec<_> = (0..n)
            .map(|c| {
                let b = Arc::clone(&batcher);
                std::thread::spawn(move || {
                    let mut sub = b.submitter();
                    let mut input: Vec<f32> = (0..16).map(|i| (i + c) as f32 * 0.05).collect();
                    let mut out = Vec::new();
                    sub.embed(0, &mut input, &mut out).expect("valid");
                    (input, out)
                })
            })
            .collect();
        let outs: Vec<(Vec<f32>, Vec<f32>)> =
            results.into_iter().map(|h| h.join().unwrap()).collect();
        let (batches, reqs, max_batch) = batcher.stats();
        assert_eq!(reqs, n as u64);
        assert_eq!(max_batch, n as u64, "all requests coalesced");
        assert_eq!(batches, 1);

        // Each coalesced answer matches a direct single-input embed.
        let mut solo = engine();
        for (input, got) in &outs {
            let mut want = Vec::new();
            solo.embed_into(0, input, &mut want).unwrap();
            assert_eq!(
                want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn full_queue_sheds_with_overloaded_and_retry_hint() {
        // Two queued requests saturate queue_cap; the window is long
        // enough that they are still queued when the third submits.
        let cfg = ServerConfig {
            max_batch: 64,
            window: Duration::from_millis(400),
            queue_cap: 2,
            ..ServerConfig::default()
        };
        let batcher = Arc::new(Batcher::with_config(engine(), &cfg));
        let blocked: Vec<_> = (0..2)
            .map(|c| {
                let b = Arc::clone(&batcher);
                std::thread::spawn(move || {
                    let mut sub = b.submitter();
                    let mut input: Vec<f32> = (0..16).map(|i| (i + c) as f32 * 0.05).collect();
                    let mut out = Vec::new();
                    sub.embed(0, &mut input, &mut out)
                })
            })
            .collect();
        // Give both background submitters time to enqueue.
        std::thread::sleep(Duration::from_millis(100));
        let mut sub = batcher.submitter();
        let mut input: Vec<f32> = (0..16).map(|i| i as f32 * 0.1).collect();
        let mut out = Vec::new();
        match sub.embed(0, &mut input, &mut out) {
            Err(SubmitError::Overloaded { retry_after_ms }) => {
                assert!(retry_after_ms >= 1, "hint must be non-zero");
            }
            other => panic!("expected overload shed, got {other:?}"),
        }
        assert_eq!(input.len(), 16, "input buffer handed back on shed");
        for worker in blocked {
            worker
                .join()
                .expect("thread")
                .expect("queued requests still answered");
        }
        assert_eq!(batcher.rejected().1, 1);
    }

    #[test]
    fn queued_requests_past_deadline_fail_with_deadline_exceeded() {
        // The window keeps the request queued for ~80 ms while the
        // deadline expires after 1 ms: the flush must shed it.
        let cfg = ServerConfig {
            max_batch: 64,
            window: Duration::from_millis(80),
            deadline: Some(Duration::from_millis(1)),
            ..ServerConfig::default()
        };
        let batcher = Batcher::with_config(engine(), &cfg);
        let mut sub = batcher.submitter();
        let mut input: Vec<f32> = (0..16).map(|i| i as f32 * 0.1).collect();
        let mut out = Vec::new();
        match sub.embed(0, &mut input, &mut out) {
            Err(SubmitError::DeadlineExceeded) => {}
            other => panic!("expected deadline shed, got {other:?}"),
        }
        assert_eq!(batcher.rejected().0, 1);
        assert_eq!(batcher.stats().0, 0, "expired request must not flush");
    }

    #[test]
    fn rotation_swaps_to_newer_snapshot_and_skips_corrupt() {
        let dir = std::env::temp_dir().join(format!("edsr-rotate-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let save = |seed: u64, name: &str| {
            let mut rng = seeded(seed);
            let model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
            let inputs = Matrix::randn(4, 16, 1.0, &mut rng);
            let reprs = model.represent_eval(&inputs, 0);
            let snap = ServeSnapshot::capture(&model, reprs, vec![0; 4], "rot", 1).unwrap();
            let path = dir.join(name);
            snap.save(&path).unwrap();
            path
        };
        let first = save(100, "rot.task0001.snapshot");

        let mut batcher = Batcher::new(engine_seeded(100), 4, Duration::from_micros(100));
        batcher.start_rotation(RotateConfig {
            dir: dir.clone(),
            poll: Duration::from_millis(5),
            cache_capacity: 16,
            current: Some(first.clone()),
            quantize: false,
        });

        // A corrupt newer candidate must be skipped. Corrupt a copy
        // *outside* the watched directory, then rename it in atomically,
        // so the poller can never observe it in a valid state.
        let staged = std::env::temp_dir().join(format!("edsr-rotate-bad-{}", std::process::id()));
        std::fs::copy(&first, &staged).unwrap();
        let len = std::fs::metadata(&staged).unwrap().len() as usize;
        edsr_cl::fault::flip_byte(&staged, len / 2, 0xFF).unwrap();
        std::fs::rename(&staged, dir.join("rot.task0002.snapshot")).unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(batcher.rotations(), 0, "corrupt snapshot must not rotate");

        // ... while a valid even-newer one rotates within a few polls.
        save(102, "rot.task0003.snapshot");
        let deadline = Instant::now() + Duration::from_secs(5);
        while batcher.rotations() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(batcher.rotations(), 1, "valid snapshot must rotate");

        // The served embedding now matches the rotated model.
        let mut rng = seeded(102);
        let model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
        let probe = Matrix::randn(1, 16, 1.0, &mut seeded(7));
        let want = model.represent_eval(&probe, 0);
        let mut sub = batcher.submitter();
        let mut input = probe.row(0).to_vec();
        let mut out = Vec::new();
        sub.embed(0, &mut input, &mut out).expect("embed");
        assert_eq!(
            want.row(0).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "post-rotation embedding diverged from the new snapshot"
        );
        batcher.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
