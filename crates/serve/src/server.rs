//! Dynamic micro-batching queue and the blocking TCP server.
//!
//! ## Batching window semantics
//!
//! Embed requests enqueue onto one shared queue and block on a
//! per-submitter slot. A dedicated batcher thread flushes the queue when
//! either **max batch size** requests are waiting or the **batching
//! window** has elapsed since the *oldest* queued request arrived —
//! whichever comes first. A flush drains up to `max_batch` requests,
//! groups them by task, and answers each group with one
//! [`Engine::embed_rows`] call, so concurrent clients share a single
//! batched forward. Because the forward computes rows independently,
//! coalescing never changes any individual answer.
//!
//! The submit path and the flush path recycle every buffer they touch
//! (slot state, staging matrix, drained-batch vector), so a warm
//! cache-hit embed makes zero steady-state heap allocations end to end
//! (`tests/zero_alloc.rs`).
//!
//! ## Shutdown
//!
//! A shutdown request (or [`ServeHandle::shutdown`]) stops the accept
//! loop; connection handlers observe the flag only **between** frames, so
//! every fully received request is still answered; the batcher drains its
//! queue before exiting. Accepted requests are never dropped.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use edsr_tensor::Matrix;

use crate::engine::{EmbedReport, Engine};
use crate::protocol::{
    write_frame, ProtocolError, Request, Response, StatsReply, WireNeighbor, ERR_BAD_REQUEST,
    ERR_SHUTTING_DOWN,
};
use crate::ServeError;

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Server/batcher tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Flush the micro-batch queue at this many waiting requests.
    pub max_batch: usize,
    /// ... or once the oldest waiting request is this old.
    pub window: Duration,
    /// Concurrent connections the accept pool admits; further clients
    /// queue in the listen backlog.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            window: Duration::from_micros(500),
            max_connections: 8,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Queued,
    Done,
    Failed,
}

struct SlotInner {
    phase: Phase,
    task: usize,
    enqueued: Instant,
    input: Vec<f32>,
    out: Vec<f32>,
    error: String,
    report: EmbedReport,
}

/// One submitter's rendezvous cell with the batcher thread. All buffers
/// live inside and are recycled across requests.
struct Slot {
    inner: Mutex<SlotInner>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(SlotInner {
                phase: Phase::Idle,
                task: 0,
                enqueued: Instant::now(),
                input: Vec::new(),
                out: Vec::new(),
                error: String::new(),
                report: EmbedReport::default(),
            }),
            cv: Condvar::new(),
        })
    }
}

#[derive(Default)]
struct BatchStats {
    batches: AtomicU64,
    batched_requests: AtomicU64,
    max_batch: AtomicU64,
}

/// State shared between submitters, the batcher thread, and the TCP
/// handlers (which also reach the engine directly for knn/stats).
struct BatchShared {
    engine: Mutex<Engine>,
    queue: Mutex<VecDeque<Arc<Slot>>>,
    queue_cv: Condvar,
    stop: AtomicBool,
    max_batch: usize,
    window: Duration,
    stats: BatchStats,
}

/// The dynamic micro-batcher: owns the [`Engine`] (behind a mutex shared
/// with knn/stats callers) and a worker thread coalescing embed
/// submissions. Usable standalone, without the TCP server — the
/// zero-allocation tests drive it in-process.
pub struct Batcher {
    shared: Arc<BatchShared>,
    worker: Option<std::thread::JoinHandle<()>>,
}

/// Why a submission was not answered.
#[derive(Debug)]
pub enum SubmitError {
    /// The batcher is draining for shutdown.
    ShuttingDown,
    /// The engine rejected the request (dimension/task validation).
    Rejected(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
            SubmitError::Rejected(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl Batcher {
    /// Starts the batcher thread over `engine`.
    pub fn new(engine: Engine, max_batch: usize, window: Duration) -> Self {
        let shared = Arc::new(BatchShared {
            engine: Mutex::new(engine),
            queue: Mutex::new(VecDeque::with_capacity(max_batch.max(1) * 2)),
            queue_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            max_batch: max_batch.max(1),
            window,
            stats: BatchStats::default(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("edsr-serve-batch".into())
            .spawn(move || batch_worker(&worker_shared))
            .expect("spawn batcher thread");
        Self {
            shared,
            worker: Some(worker),
        }
    }

    /// A new submission handle (one per concurrent caller; each embeds
    /// through its own recycled slot).
    pub fn submitter(&self) -> Submitter {
        Submitter {
            shared: Arc::clone(&self.shared),
            slot: Slot::new(),
        }
    }

    /// The engine, for knn/stats calls that bypass the embed queue.
    fn engine(&self) -> MutexGuard<'_, Engine> {
        lock(&self.shared.engine)
    }

    /// Runs `f` under the engine lock.
    pub fn with_engine<R>(&self, f: impl FnOnce(&mut Engine) -> R) -> R {
        f(&mut self.engine())
    }

    /// Batches flushed, requests coalesced, and the largest batch so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.shared.stats.batches.load(Ordering::Relaxed),
            self.shared.stats.batched_requests.load(Ordering::Relaxed),
            self.shared.stats.max_batch.load(Ordering::Relaxed),
        )
    }

    /// Drains the queue and stops the worker thread. Submissions after
    /// this fail with [`SubmitError::ShuttingDown`]; knn/stats through
    /// [`with_engine`](Self::with_engine) keep working.
    pub fn stop(&mut self) {
        self.stop_worker();
    }

    fn stop_worker(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.stop_worker();
    }
}

/// A per-caller embed handle. `embed` blocks until the batcher answers.
pub struct Submitter {
    shared: Arc<BatchShared>,
    slot: Arc<Slot>,
}

impl Submitter {
    /// Submits one embed request: `input` is handed to the batcher and
    /// returned (unchanged) on completion; the embedding lands in `out`.
    /// Both buffers are recycled — warm calls allocate nothing here.
    pub fn embed(
        &mut self,
        task: usize,
        input: &mut Vec<f32>,
        out: &mut Vec<f32>,
    ) -> Result<EmbedReport, SubmitError> {
        if self.shared.stop.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        {
            let mut inner = lock(&self.slot.inner);
            debug_assert_eq!(inner.phase, Phase::Idle, "slot reused while in flight");
            inner.task = task;
            inner.enqueued = Instant::now();
            std::mem::swap(&mut inner.input, input);
            std::mem::swap(&mut inner.out, out);
            inner.phase = Phase::Queued;
        }
        // Lock order: a submitter never holds its slot lock while taking
        // the queue lock (the batcher acquires queue → slot).
        {
            let mut q = lock(&self.shared.queue);
            q.push_back(Arc::clone(&self.slot));
            self.shared.queue_cv.notify_all();
        }
        let mut inner = lock(&self.slot.inner);
        while inner.phase == Phase::Queued {
            inner = self.slot.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
        std::mem::swap(&mut inner.input, input);
        std::mem::swap(&mut inner.out, out);
        let failed = inner.phase == Phase::Failed;
        let report = inner.report;
        inner.phase = Phase::Idle;
        if failed {
            let msg = std::mem::take(&mut inner.error);
            if msg == "server is shutting down" {
                Err(SubmitError::ShuttingDown)
            } else {
                Err(SubmitError::Rejected(msg))
            }
        } else {
            Ok(report)
        }
    }
}

/// The batcher thread: wait for work, honour the batching window, flush.
fn batch_worker(shared: &BatchShared) {
    let mut batch: Vec<Arc<Slot>> = Vec::with_capacity(shared.max_batch);
    let mut order: Vec<usize> = Vec::with_capacity(shared.max_batch);
    let mut done: Vec<bool> = Vec::with_capacity(shared.max_batch);
    let mut staging = Matrix::zeros(0, 0);
    loop {
        let mut q = lock(&shared.queue);
        loop {
            if !q.is_empty() {
                break;
            }
            if shared.stop.load(Ordering::SeqCst) {
                return; // queue drained, safe to exit
            }
            let (guard, _) = shared
                .queue_cv
                .wait_timeout(q, Duration::from_millis(5))
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
        // Window: flush when full, when the oldest request ages out, or
        // immediately when draining for shutdown.
        if !shared.stop.load(Ordering::SeqCst) {
            let deadline = {
                let front = q.front().expect("non-empty");
                let enqueued = lock(&front.inner).enqueued;
                enqueued + shared.window
            };
            while q.len() < shared.max_batch && !shared.stop.load(Ordering::SeqCst) {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }
        let n = q.len().min(shared.max_batch);
        batch.clear();
        batch.extend(q.drain(..n));
        drop(q);
        flush(shared, &batch, &mut order, &mut done, &mut staging);
        batch.clear(); // drop Arc refs promptly
    }
}

/// Answers one drained batch: group by task, one batched forward per
/// group, fill and wake every slot.
fn flush(
    shared: &BatchShared,
    batch: &[Arc<Slot>],
    order: &mut Vec<usize>,
    done: &mut Vec<bool>,
    staging: &mut Matrix,
) {
    let n = batch.len();
    if n == 0 {
        return;
    }
    let obs_on = edsr_obs::enabled();
    if obs_on {
        edsr_obs::counter("serve/batches", 1);
        edsr_obs::counter("serve/batched_requests", n as u64);
        edsr_obs::histogram("serve/batch_size", n as f64);
    }
    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .batched_requests
        .fetch_add(n as u64, Ordering::Relaxed);
    shared
        .stats
        .max_batch
        .fetch_max(n as u64, Ordering::Relaxed);

    let mut engine = lock(&shared.engine);
    done.clear();
    done.resize(n, false);
    for start in 0..n {
        if done[start] {
            continue;
        }
        let task = lock(&batch[start].inner).task;
        let dim = match engine.expected_input_dim(task) {
            Ok(d) => d,
            Err(msg) => {
                // Fail every request of this (invalid) task in the batch.
                for (i, slot) in batch.iter().enumerate().skip(start) {
                    if !done[i] && lock(&slot.inner).task == task {
                        done[i] = true;
                        fail_slot(slot, &msg);
                    }
                }
                continue;
            }
        };
        // Gather this task's rows; wrong-width inputs fail individually
        // so one bad client cannot sink its batch-mates.
        order.clear();
        for (i, slot) in batch.iter().enumerate().skip(start) {
            if done[i] {
                continue;
            }
            let inner = lock(&slot.inner);
            if inner.task != task {
                continue;
            }
            done[i] = true;
            if inner.input.len() == dim {
                order.push(i);
            } else {
                let msg = format!(
                    "got {} features, task {task} expects {dim}",
                    inner.input.len()
                );
                drop(inner);
                fail_slot(slot, &msg);
            }
        }
        if order.is_empty() {
            continue;
        }
        if staging.rows() != order.len() || staging.cols() != dim {
            *staging = Matrix::zeros(order.len(), dim);
        }
        for (row, &i) in order.iter().enumerate() {
            staging
                .row_mut(row)
                .copy_from_slice(&lock(&batch[i].inner).input);
        }
        let result = engine.embed_rows(task, staging, |row, emb, hit| {
            let slot = &batch[order[row]];
            let mut inner = lock(&slot.inner);
            inner.out.clear();
            inner.out.extend_from_slice(emb);
            inner.report = EmbedReport {
                forward_rows: usize::from(!hit),
                cache_hits: usize::from(hit),
            };
            inner.phase = Phase::Done;
            slot.cv.notify_one();
        });
        if let Err(msg) = result {
            for &i in order.iter() {
                // embed_rows validates before emitting: on error no slot
                // of this group has been answered yet.
                fail_slot(&batch[i], &msg);
            }
        }
    }
}

fn fail_slot(slot: &Slot, msg: &str) {
    let mut inner = lock(&slot.inner);
    inner.error.clear();
    inner.error.push_str(msg);
    inner.phase = Phase::Failed;
    slot.cv.notify_one();
}

// ---------------------------------------------------------------------------
// TCP server.

/// Final counters reported by [`ServeHandle::join`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerReport {
    /// Requests answered across all connections.
    pub requests: u64,
    /// Batched forward flushes.
    pub batches: u64,
    /// Embed requests answered through the batcher.
    pub batched_requests: u64,
    /// Largest coalesced batch observed.
    pub max_batch: u64,
    /// Embedding-cache hits.
    pub cache_hits: u64,
    /// Embedding-cache misses.
    pub cache_misses: u64,
}

struct ServerShared {
    batch: Arc<BatchShared>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    conns: Mutex<usize>,
    conns_cv: Condvar,
    max_connections: usize,
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`shutdown`](Self::shutdown) + [`join`](Self::join) (or send a
/// shutdown request over the wire).
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<std::thread::JoinHandle<ServerReport>>,
}

impl ServeHandle {
    /// The bound address (useful with ephemeral port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the server to drain and stop (same as a wire shutdown).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the accept loop to drain all connections and the
    /// batcher to stop; returns the final counters.
    pub fn join(mut self) -> Result<ServerReport, ServeError> {
        let handle = self.accept.take().expect("join called once");
        handle.join().map_err(|_| ServeError::ServerClosed)
    }
}

/// Starts the server over `engine` on `addr` (use port 0 for an
/// ephemeral port; read it back from [`ServeHandle::addr`]).
pub fn serve(
    engine: Engine,
    addr: impl std::net::ToSocketAddrs,
    cfg: ServerConfig,
) -> Result<ServeHandle, ServeError> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let batcher = Batcher::new(engine, cfg.max_batch, cfg.window);
    let shared = Arc::new(ServerShared {
        batch: Arc::clone(&batcher.shared),
        shutdown: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        conns: Mutex::new(0),
        conns_cv: Condvar::new(),
        max_connections: cfg.max_connections.max(1),
    });
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("edsr-serve-accept".into())
        .spawn(move || accept_loop(&listener, &accept_shared, batcher))
        .map_err(ServeError::Io)?;
    Ok(ServeHandle {
        addr: local,
        shared,
        accept: Some(accept),
    })
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    mut batcher: Batcher,
) -> ServerReport {
    let _span = edsr_obs::span!("serve/accept_loop");
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Bounded accept pool: block admission at capacity.
                {
                    let mut active = lock(&shared.conns);
                    while *active >= shared.max_connections {
                        active = shared
                            .conns_cv
                            .wait(active)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    *active += 1;
                }
                let conn_shared = Arc::clone(shared);
                let submitter = batcher.submitter();
                let h = std::thread::Builder::new()
                    .name("edsr-serve-conn".into())
                    .spawn(move || {
                        handle_connection(stream, &conn_shared, submitter);
                        let mut active = lock(&conn_shared.conns);
                        *active -= 1;
                        conn_shared.conns_cv.notify_one();
                    })
                    .expect("spawn connection handler");
                handlers.push(h);
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
    // Graceful drain: every accepted connection finishes its in-flight
    // frames, then the batcher empties its queue and stops.
    for h in handlers {
        let _ = h.join();
    }
    batcher.stop_worker();
    let (batches, batched_requests, max_batch) = batcher.stats();
    let (cache_hits, cache_misses) = batcher.with_engine(|e| (e.cache_hits(), e.cache_misses()));
    edsr_obs::flush();
    ServerReport {
        requests: shared.requests.load(Ordering::Relaxed),
        batches,
        batched_requests,
        max_batch,
        cache_hits,
        cache_misses,
    }
}

/// Reads one frame, polling the shutdown flag between frames (a read
/// timeout only aborts the connection mid-frame after `stall_cap`).
fn poll_frame(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    shared: &ServerShared,
) -> Result<bool, ProtocolError> {
    use std::io::Read;
    let stall_cap = Duration::from_secs(5);
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    let mut stall_start: Option<Instant> = None;
    while filled < 4 {
        match stream.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(ProtocolError::Truncated {
                    expected: 4,
                    got: filled,
                })
            }
            Ok(n) => {
                filled += n;
                stall_start = None;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if filled == 0 {
                    // Idle between frames: honour shutdown.
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return Ok(false);
                    }
                } else {
                    // Mid-frame: give the client time, but not forever.
                    let start = *stall_start.get_or_insert_with(Instant::now);
                    if start.elapsed() > stall_cap {
                        return Err(ProtocolError::Truncated {
                            expected: 4,
                            got: filled,
                        });
                    }
                }
            }
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > crate::protocol::MAX_FRAME {
        return Err(ProtocolError::TooLarge(len));
    }
    buf.clear();
    buf.resize(len, 0);
    let mut read = 0usize;
    let mut stall_start: Option<Instant> = None;
    while read < len {
        match stream.read(&mut buf[read..]) {
            Ok(0) => {
                return Err(ProtocolError::Truncated {
                    expected: len,
                    got: read,
                })
            }
            Ok(n) => {
                read += n;
                stall_start = None;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                let start = *stall_start.get_or_insert_with(Instant::now);
                if start.elapsed() > stall_cap {
                    return Err(ProtocolError::Truncated {
                        expected: len,
                        got: read,
                    });
                }
            }
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    Ok(true)
}

fn handle_connection(mut stream: TcpStream, shared: &ServerShared, mut submitter: Submitter) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut frame = Vec::new();
    let mut payload = Vec::new();
    let mut input = Vec::new();
    let mut out = Vec::new();
    let mut neighbors = Vec::new();
    loop {
        match poll_frame(&mut stream, &mut frame, shared) {
            Ok(false) => return,
            Ok(true) => {}
            Err(ProtocolError::Io(_)) => return, // peer went away
            Err(e) => {
                // Malformed framing: answer with a structured error, then
                // close — the stream can no longer be re-synchronised.
                let resp = Response::Error {
                    code: ERR_BAD_REQUEST,
                    message: e.to_string(),
                };
                resp.encode_into(0, &mut payload);
                let _ = write_frame(&mut stream, &payload);
                return;
            }
        }
        let started = Instant::now();
        let _req_span = edsr_obs::span!("serve/request");
        let (opcode, response) = match Request::decode(&frame) {
            Err(e) => (
                0,
                Response::Error {
                    code: ERR_BAD_REQUEST,
                    message: e.to_string(),
                },
            ),
            Ok(req) => {
                let opcode = req.opcode();
                let resp = answer(
                    req,
                    shared,
                    &mut submitter,
                    &mut input,
                    &mut out,
                    &mut neighbors,
                );
                (opcode, resp)
            }
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        response.encode_into(opcode, &mut payload);
        if write_frame(&mut stream, &payload).is_err() {
            return;
        }
        if edsr_obs::enabled() {
            edsr_obs::histogram("serve/latency_us", started.elapsed().as_secs_f64() * 1e6);
        }
        // Recycle the embedding buffer moved into the response.
        if let Response::Embedding(v) = response {
            out = v;
        }
    }
}

fn answer(
    req: Request,
    shared: &ServerShared,
    submitter: &mut Submitter,
    input: &mut Vec<f32>,
    out: &mut Vec<f32>,
    neighbors: &mut Vec<edsr_linalg::Neighbor>,
) -> Response {
    match req {
        Request::Embed { task, input: body } => {
            input.clear();
            input.extend_from_slice(&body);
            match submitter.embed(task as usize, input, out) {
                Ok(_) => Response::Embedding(std::mem::take(out)),
                Err(SubmitError::ShuttingDown) => Response::Error {
                    code: ERR_SHUTTING_DOWN,
                    message: "server is shutting down".into(),
                },
                Err(SubmitError::Rejected(message)) => Response::Error {
                    code: ERR_BAD_REQUEST,
                    message,
                },
            }
        }
        Request::Knn { k, metric, query } => {
            let result = {
                let mut engine = lock(&shared.batch.engine);
                engine.knn_into(&query, k as usize, metric.into(), neighbors)
            };
            match result {
                Ok(()) => Response::Neighbors(
                    neighbors
                        .iter()
                        .map(|n| WireNeighbor {
                            index: n.index as u64,
                            score: n.score,
                        })
                        .collect(),
                ),
                Err(message) => Response::Error {
                    code: ERR_BAD_REQUEST,
                    message,
                },
            }
        }
        Request::Stats => {
            let engine_stats = {
                let engine = lock(&shared.batch.engine);
                (
                    engine.cache_hits(),
                    engine.cache_misses(),
                    engine.memory_rows() as u64,
                    engine.repr_dim() as u64,
                )
            };
            Response::Stats(StatsReply {
                // +1: count this stats request itself.
                requests: shared.requests.load(Ordering::Relaxed) + 1,
                batches: shared.batch.stats.batches.load(Ordering::Relaxed),
                batched_requests: shared.batch.stats.batched_requests.load(Ordering::Relaxed),
                max_batch: shared.batch.stats.max_batch.load(Ordering::Relaxed),
                cache_hits: engine_stats.0,
                cache_misses: engine_stats.1,
                memory_rows: engine_stats.2,
                repr_dim: engine_stats.3,
            })
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::ShutdownAck
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_cl::checkpoint::ServeSnapshot;
    use edsr_cl::{ContinualModel, ModelConfig};
    use edsr_tensor::rng::seeded;

    fn engine() -> Engine {
        let mut rng = seeded(21);
        let model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
        let inputs = Matrix::randn(4, 16, 1.0, &mut rng);
        let reprs = model.represent(&inputs, 0);
        let snap = ServeSnapshot::capture(&model, reprs, vec![0; 4], "t", 1).unwrap();
        Engine::from_snapshot(snap, 16).unwrap()
    }

    #[test]
    fn batcher_answers_and_reports_errors() {
        let batcher = Batcher::new(engine(), 4, Duration::from_micros(100));
        let mut sub = batcher.submitter();
        let mut input: Vec<f32> = (0..16).map(|i| i as f32 * 0.1).collect();
        let mut out = Vec::new();
        let report = sub.embed(0, &mut input, &mut out).expect("valid embed");
        assert_eq!(report.forward_rows, 1);
        assert_eq!(out.len(), 48);
        assert_eq!(input.len(), 16, "input buffer handed back");

        // Second identical request: cache hit, same bits.
        let mut out2 = Vec::new();
        let report = sub.embed(0, &mut input, &mut out2).expect("valid embed");
        assert_eq!(report.cache_hits, 1);
        assert_eq!(
            out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            out2.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );

        // Wrong width → Rejected, buffers intact.
        let mut bad: Vec<f32> = vec![0.0; 9];
        match sub.embed(0, &mut bad, &mut out) {
            Err(SubmitError::Rejected(msg)) => assert!(msg.contains("expects 16")),
            other => panic!("expected rejection, got {other:?}"),
        }

        let (batches, reqs, max_batch) = batcher.stats();
        assert!(batches >= 2);
        assert_eq!(reqs, 3);
        assert!(max_batch >= 1);
        assert_eq!(batcher.with_engine(|e| e.cache_hits()), 1);
    }

    #[test]
    fn concurrent_submitters_coalesce_into_one_batch() {
        let n = 4;
        // A long window so all submitters land in one flush once the
        // batch fills to exactly n.
        let batcher = Arc::new(Batcher::new(engine(), n, Duration::from_secs(5)));
        let results: Vec<_> = (0..n)
            .map(|c| {
                let b = Arc::clone(&batcher);
                std::thread::spawn(move || {
                    let mut sub = b.submitter();
                    let mut input: Vec<f32> = (0..16).map(|i| (i + c) as f32 * 0.05).collect();
                    let mut out = Vec::new();
                    sub.embed(0, &mut input, &mut out).expect("valid");
                    (input, out)
                })
            })
            .collect();
        let outs: Vec<(Vec<f32>, Vec<f32>)> =
            results.into_iter().map(|h| h.join().unwrap()).collect();
        let (batches, reqs, max_batch) = batcher.stats();
        assert_eq!(reqs, n as u64);
        assert_eq!(max_batch, n as u64, "all requests coalesced");
        assert_eq!(batches, 1);

        // Each coalesced answer matches a direct single-input embed.
        let mut solo = engine();
        for (input, got) in &outs {
            let mut want = Vec::new();
            solo.embed_into(0, input, &mut want).unwrap();
            assert_eq!(
                want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
