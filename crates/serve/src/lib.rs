//! # edsr-serve
//!
//! Embedding inference server over trained EDSR snapshots: the queryable
//! product of unsupervised continual learning (DESIGN.md §12).
//!
//! - [`engine`] — loads a `cl::checkpoint::ServeSnapshot` (encoder
//!   architecture + weights + replay-memory representations) and answers
//!   embed/kNN requests through the zero-alloc workspace forward and
//!   `linalg::KnnQuery`.
//! - [`server`] — a dynamic micro-batching queue that coalesces
//!   concurrent embed requests into one batched forward, plus a blocking
//!   thread-per-connection TCP server with a bounded accept pool and
//!   graceful drain.
//! - [`protocol`] — the versioned length-prefixed binary wire format.
//! - [`client`] — a blocking client for tests, load generation, and the
//!   `edsr query` CLI, with reconnect + bounded seeded-jitter backoff.
//! - [`fault`] — deterministic wire fault injection ([`FaultyStream`])
//!   for chaos tests on either end of a connection.
//!
//! Robustness contract (DESIGN.md §13): the server enforces per-request
//! deadlines and bounded-queue backpressure (structured `ERR_DEADLINE` /
//! `ERR_OVERLOADED` errors with a retry-after hint), survives torn or
//! corrupt frames at any byte offset, and can rotate to newer snapshots
//! under live traffic without mixing answers across snapshots.
//!
//! Determinism contract: serving runs the encoder's eval-mode forward
//! (batch standardization skipped), which computes each output row
//! independently in a fixed accumulation order, so batched responses are
//! bit-identical to single-request responses at any `EDSR_THREADS`.

pub mod cache;
pub mod client;
pub mod engine;
pub mod fault;
pub mod protocol;
pub mod server;

pub use cache::EmbedCache;
pub use client::{Client, RetryPolicy};
pub use engine::{EmbedReport, Engine};
pub use fault::{FaultyStream, WireFault, WireFaultPlan};
pub use protocol::{
    ProtocolError, Request, Response, StatsReply, WireMetric, WireNeighbor, MAX_FRAME,
    PROTOCOL_VERSION,
};
pub use server::{
    serve, Batcher, RotateConfig, ServeHandle, ServerConfig, ServerReport, SubmitError, Submitter,
};

/// Failures surfaced by the serve layer (client and server setup).
#[derive(Debug)]
pub enum ServeError {
    /// Socket/listener error.
    Io(std::io::Error),
    /// Malformed or truncated wire traffic.
    Protocol(ProtocolError),
    /// The server answered with an error response.
    Rejected {
        /// One of the protocol `ERR_*` codes.
        code: u16,
        /// Backpressure hint from the server (0 = none).
        retry_after_ms: u32,
        /// Server-provided reason.
        message: String,
    },
    /// The server closed the connection before answering.
    ServerClosed,
    /// The server answered with a different response type than the
    /// request called for.
    UnexpectedResponse,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve i/o: {e}"),
            ServeError::Protocol(e) => write!(f, "serve protocol: {e}"),
            ServeError::Rejected { code, message, .. } => {
                write!(f, "request rejected (code {code}): {message}")
            }
            ServeError::ServerClosed => write!(f, "server closed the connection"),
            ServeError::UnexpectedResponse => write!(f, "unexpected response type"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ProtocolError> for ServeError {
    fn from(e: ProtocolError) -> Self {
        match e {
            ProtocolError::Io(io) => ServeError::Io(io),
            other => ServeError::Protocol(other),
        }
    }
}
