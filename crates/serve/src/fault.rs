//! Deterministic network fault injection for the serve layer.
//!
//! Extends the trainer's fault philosophy (`edsr_cl::FaultPlan`) to the
//! wire: a [`WireFaultPlan`] pins faults to exact I/O-operation indices —
//! hand-placed or drawn from a seed — and [`FaultyStream`] wraps any
//! `Read + Write` transport (either end of a connection) to fire them:
//! injected delays, partial reads/writes, mid-frame disconnects, and
//! single-byte corruption. Same seed, same plan, so a failing chaos test
//! replays exactly.
//!
//! The wrapper is transparent to timeout semantics: `WouldBlock` /
//! `TimedOut` results from the inner stream pass through untouched, so
//! the server's poll loop keeps working under a fault plan.

use std::io::{self, Read, Write};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One planned wire fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Sleep before performing the operation (a slow or congested peer).
    Delay(Duration),
    /// Cap the read buffer to one byte, forcing the caller's read loop to
    /// reassemble the frame from fragments.
    PartialRead,
    /// Write at most half of the offered bytes, forcing `write_all` to
    /// loop — a torn frame becomes visible to the peer mid-write if a
    /// later fault disconnects.
    PartialWrite,
    /// Drop the connection: this and every later operation fails with
    /// `ConnectionReset`, exactly like a peer vanishing mid-frame.
    Disconnect,
    /// XOR the first transferred byte with `mask` (bit rot on the wire).
    CorruptByte {
        /// XOR mask applied to the first byte moved by the operation.
        mask: u8,
    },
}

/// A deterministic set of wire faults keyed by operation index (each
/// `read`/`write` call on the wrapped stream consumes one index).
#[derive(Debug, Clone, Default)]
pub struct WireFaultPlan {
    /// Planned `(operation index, fault)` pairs.
    pub faults: Vec<(u64, WireFault)>,
}

impl WireFaultPlan {
    /// No faults: the wrapper becomes a transparent pass-through.
    pub fn none() -> Self {
        Self::default()
    }

    /// A single disconnect at operation `op` (mid-frame if `op` lands
    /// inside a frame's reads/writes).
    pub fn disconnect_at(op: u64) -> Self {
        Self {
            faults: vec![(op, WireFault::Disconnect)],
        }
    }

    /// Draws `count` faults over operation indices `0..horizon_ops`,
    /// cycling through every fault kind — same seed, same plan. Delays
    /// stay small (≤ 5 ms) so chaos suites finish inside test budgets.
    pub fn seeded(seed: u64, horizon_ops: u64, count: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let faults = (0..count)
            .map(|i| {
                let op = rng.random_range(0..horizon_ops.max(1));
                let fault = match i % 5 {
                    0 => WireFault::Delay(Duration::from_millis(rng.random_range(1..=5u64))),
                    1 => WireFault::PartialRead,
                    2 => WireFault::PartialWrite,
                    3 => WireFault::CorruptByte {
                        mask: 1 << rng.random_range(0..8u32),
                    },
                    _ => WireFault::Disconnect,
                };
                (op, fault)
            })
            .collect();
        Self { faults }
    }

    /// Like [`seeded`](Self::seeded) but without disconnects or
    /// corruption: only delays and partial transfers, which any correct
    /// peer must absorb without a single failed request.
    pub fn seeded_benign(seed: u64, horizon_ops: u64, count: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let faults = (0..count)
            .map(|i| {
                let op = rng.random_range(0..horizon_ops.max(1));
                let fault = match i % 3 {
                    0 => WireFault::Delay(Duration::from_millis(rng.random_range(1..=5u64))),
                    1 => WireFault::PartialRead,
                    _ => WireFault::PartialWrite,
                };
                (op, fault)
            })
            .collect();
        Self { faults }
    }

    fn find(&self, op: u64) -> Option<WireFault> {
        self.faults
            .iter()
            .find(|(at, _)| *at == op)
            .map(|(_, f)| *f)
    }
}

/// Wraps a transport and fires the plan's faults at their operation
/// indices. Usable on both ends: wrap the server's accepted stream or
/// the client's connection.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    plan: WireFaultPlan,
    op: u64,
    injected: u64,
    dead: bool,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: S, plan: WireFaultPlan) -> Self {
        Self {
            inner,
            plan,
            op: 0,
            injected: 0,
            dead: false,
        }
    }

    /// Faults actually fired so far (tests assert the plan executed).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    fn next_fault(&mut self) -> Option<WireFault> {
        let fault = self.plan.find(self.op);
        self.op += 1;
        if fault.is_some() {
            self.injected += 1;
        }
        fault
    }

    fn reset_err() -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "injected disconnect")
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(Self::reset_err());
        }
        match self.next_fault() {
            Some(WireFault::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            Some(WireFault::PartialRead) => {
                let cap = buf.len().min(1);
                self.inner.read(&mut buf[..cap])
            }
            Some(WireFault::Disconnect) => {
                self.dead = true;
                Err(Self::reset_err())
            }
            Some(WireFault::CorruptByte { mask }) => {
                let n = self.inner.read(buf)?;
                if n > 0 {
                    buf[0] ^= mask;
                }
                Ok(n)
            }
            Some(WireFault::PartialWrite) | None => self.inner.read(buf),
        }
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(Self::reset_err());
        }
        match self.next_fault() {
            Some(WireFault::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            Some(WireFault::PartialWrite) => {
                let cap = (buf.len() / 2).max(1).min(buf.len());
                self.inner.write(&buf[..cap])
            }
            Some(WireFault::Disconnect) => {
                self.dead = true;
                Err(Self::reset_err())
            }
            Some(WireFault::CorruptByte { mask }) => {
                if buf.is_empty() {
                    return self.inner.write(buf);
                }
                // Corrupt a copy; the caller's buffer must stay pristine
                // (it may retry the same bytes after a reconnect).
                let mut mangled = buf.to_vec();
                mangled[0] ^= mask;
                self.inner.write(&mangled)
            }
            Some(WireFault::PartialRead) | None => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(Self::reset_err());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_bounded() {
        let a = WireFaultPlan::seeded(9, 64, 10);
        let b = WireFaultPlan::seeded(9, 64, 10);
        assert_eq!(a.faults, b.faults);
        let c = WireFaultPlan::seeded(10, 64, 10);
        assert_ne!(a.faults, c.faults, "different seeds should differ");
        assert!(a.faults.iter().all(|(op, _)| *op < 64));
        assert!(WireFaultPlan::seeded_benign(9, 64, 9)
            .faults
            .iter()
            .all(|(_, f)| !matches!(f, WireFault::Disconnect | WireFault::CorruptByte { .. })));
    }

    #[test]
    fn disconnect_poisons_all_later_operations() {
        let data = vec![1u8, 2, 3, 4];
        let mut s = FaultyStream::new(std::io::Cursor::new(data), WireFaultPlan::disconnect_at(1));
        let mut buf = [0u8; 2];
        assert_eq!(s.read(&mut buf).unwrap(), 2);
        assert_eq!(
            s.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        assert_eq!(
            s.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset,
            "dead stream must stay dead"
        );
        assert_eq!(s.injected(), 1);
    }

    #[test]
    fn partial_and_corrupt_faults_shape_the_transfer() {
        let plan = WireFaultPlan {
            faults: vec![
                (0, WireFault::PartialRead),
                (1, WireFault::CorruptByte { mask: 0x01 }),
            ],
        };
        let mut s = FaultyStream::new(std::io::Cursor::new(vec![8u8, 9, 10]), plan);
        let mut buf = [0u8; 3];
        assert_eq!(s.read(&mut buf).unwrap(), 1, "partial read caps at 1 byte");
        assert_eq!(buf[0], 8);
        assert_eq!(s.read(&mut buf).unwrap(), 2);
        assert_eq!(buf[0], 9 ^ 0x01, "first byte of the chunk is corrupted");
        assert_eq!(s.injected(), 2);

        let plan = WireFaultPlan {
            faults: vec![(0, WireFault::PartialWrite)],
        };
        let mut s = FaultyStream::new(std::io::Cursor::new(Vec::new()), plan);
        let n = s.write(&[1, 2, 3, 4]).unwrap();
        assert_eq!(n, 2, "partial write moves half the buffer");
        s.write_all(&[3, 4]).unwrap();
        assert_eq!(s.get_ref().get_ref(), &[1, 2, 3, 4]);
    }
}
