//! Event sinks: the bounded in-memory ring and the JSON-lines file.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::Event;

/// Destination for [`Event`]s. Implementations must be `Send`: the sink
/// lives in a process-global slot and any thread may emit.
pub trait Sink: Send {
    /// Records one event. Must not panic; I/O sinks swallow errors after
    /// reporting the first one.
    fn record(&mut self, event: &Event);

    /// Flushes buffered events to their backing store.
    fn flush(&mut self) {}
}

struct Ring {
    events: VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

/// Bounded in-memory sink. Cloning yields another handle to the same
/// buffer, so tests keep a handle, install a clone globally, run, and
/// read [`events`](RingSink::events) back. When full, the oldest event
/// is dropped (and counted) to admit the newest.
#[derive(Clone)]
pub struct RingSink {
    inner: Arc<Mutex<Ring>>,
}

impl RingSink {
    /// Creates a ring holding at most `cap` events (`cap == 0` drops
    /// everything).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Ring {
                events: VecDeque::with_capacity(cap.min(1024)),
                cap,
                dropped: 0,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.lock().events.iter().cloned().collect()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all buffered events (the drop counter is kept).
    pub fn clear(&self) {
        self.lock().events.clear();
    }
}

impl Sink for RingSink {
    fn record(&mut self, event: &Event) {
        let mut ring = self.lock();
        if ring.cap == 0 {
            ring.dropped += 1;
            return;
        }
        if ring.events.len() == ring.cap {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event.clone());
    }
}

/// JSON-lines file sink: one event per line in the stable field order
/// `seq, kind, name, index, value` (see [`crate::parse_line`] for the
/// inverse). Buffered; flushed on [`Sink::flush`] and on drop. Write
/// errors are reported to stderr once and subsequent events discarded.
pub struct JsonlSink {
    out: BufWriter<File>,
    path: PathBuf,
    failed: bool,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            out: BufWriter::new(File::create(path)?),
            path: path.to_path_buf(),
            failed: false,
        })
    }

    /// The file this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        if self.failed {
            return;
        }
        let res = event
            .write_json(&mut self.out)
            .and_then(|()| self.out.write_all(b"\n"));
        if let Err(err) = res {
            eprintln!(
                "edsr-obs: dropping metrics, write to {} failed: {err}",
                self.path.display()
            );
            self.failed = true;
        }
    }

    fn flush(&mut self) {
        if !self.failed {
            let _ = self.out.flush();
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;
    use std::borrow::Cow;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            kind: EventKind::Gauge,
            name: Cow::Borrowed("g"),
            index: 0,
            value: seq as f64,
        }
    }

    #[test]
    fn ring_evicts_oldest_when_full() {
        let mut ring = RingSink::with_capacity(3);
        for s in 0..5 {
            ring.record(&ev(s));
        }
        let got: Vec<u64> = ring.events().iter().map(|e| e.seq).collect();
        assert_eq!(got, vec![2, 3, 4]);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.len(), 3);
        ring.clear();
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_handles_share_the_buffer() {
        let ring = RingSink::with_capacity(8);
        let mut writer = ring.clone();
        writer.record(&ev(7));
        assert_eq!(ring.events().len(), 1);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("edsr_obs_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.jsonl");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            assert_eq!(sink.path(), path.as_path());
            for s in 0..3 {
                sink.record(&ev(s));
            }
        } // drop flushes
        let text = std::fs::read_to_string(&path).unwrap();
        let events = crate::parse_jsonl(&text).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[2], ev(2));
        std::fs::remove_file(&path).ok();
    }
}
