//! Observability layer for the EDSR reproduction (DESIGN.md §11).
//!
//! The stack is instrumented with **hierarchical spans** (per-task /
//! per-epoch / per-step timing via [`span!`]) and **typed metrics**
//! ([`counter`], [`gauge`], [`histogram`]): per-term losses
//! (`loss/css`, `loss/dis`, `loss/rpl`), gradient norms, selection
//! entropy `Tr(Cov)`, kNN noise-scale `r(x)·σ` statistics, pool worker
//! occupancy, and scratch-arena high-water marks.
//!
//! Events flow into one process-global [`Sink`]: either a bounded
//! in-memory [`RingSink`] (tests, interactive inspection) or a
//! [`JsonlSink`] writing one JSON object per line (offline analysis,
//! CI smoke checks). With **no sink installed the layer is zero-cost**:
//! every emit point is gated on one relaxed atomic load ([`enabled`]),
//! no clock is read, no event is built, and no heap allocation happens
//! — `tests/zero_alloc.rs` proves the steady-state training step stays
//! at zero allocations with observability off.
//!
//! ```
//! let ring = edsr_obs::RingSink::with_capacity(128);
//! edsr_obs::install(Box::new(ring.clone()));
//! {
//!     let _span = edsr_obs::span!("demo", 0);
//!     edsr_obs::gauge("loss/css", 0.25);
//! }
//! edsr_obs::uninstall();
//! let events = ring.events();
//! assert_eq!(events.len(), 3); // enter, gauge, exit
//! ```

#![deny(missing_docs)]

use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

mod json;
mod sink;

pub use json::{parse_jsonl, parse_line, ParseError};
pub use sink::{JsonlSink, RingSink, Sink};

/// What a single [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`value` is unused and zero).
    SpanEnter,
    /// A span closed (`value` is the elapsed time in nanoseconds).
    SpanExit,
    /// A monotonic count increment (`value` is the increment).
    Counter,
    /// A point-in-time measurement (`value` is the measurement).
    Gauge,
    /// One observation of a distribution (`value` is the observation).
    Histogram,
}

impl EventKind {
    /// Stable wire name used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanEnter => "enter",
            EventKind::SpanExit => "exit",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
            EventKind::Histogram => "histo",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn from_wire(s: &str) -> Option<Self> {
        Some(match s {
            "enter" => EventKind::SpanEnter,
            "exit" => EventKind::SpanExit,
            "counter" => EventKind::Counter,
            "gauge" => EventKind::Gauge,
            "histo" => EventKind::Histogram,
            _ => return None,
        })
    }
}

/// One observability event.
///
/// `seq` is a process-global monotonic sequence number, so events from
/// any thread can be totally ordered after the fact. `index` carries the
/// instrumented loop variable (task index, worker slot, …); emit points
/// without a natural index use zero.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Process-global monotonic sequence number.
    pub seq: u64,
    /// Event type.
    pub kind: EventKind,
    /// Metric or span name, e.g. `"loss/css"` or `"task"`.
    pub name: Cow<'static, str>,
    /// Loop variable at the emit point (task index, worker slot, …).
    pub index: u64,
    /// Payload: measurement, count, or span duration in nanoseconds.
    pub value: f64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<Option<Box<dyn Sink>>> = Mutex::new(None);

/// Whether a sink is installed. One relaxed atomic load — the gate every
/// emit point (and every caller computing a value only to record it)
/// checks first, which is the whole zero-overhead-when-off contract.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn with_sink(f: impl FnOnce(&mut dyn Sink)) {
    let mut slot = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(sink) = slot.as_mut() {
        f(sink.as_mut());
    }
}

/// Installs `sink` as the process-global event destination and enables
/// emission. A previously installed sink is flushed and dropped.
pub fn install(sink: Box<dyn Sink>) {
    let mut slot = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(mut old) = slot.take() {
        old.flush();
    }
    *slot = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables emission, flushes, and returns the installed sink (if any).
pub fn uninstall() -> Option<Box<dyn Sink>> {
    ENABLED.store(false, Ordering::SeqCst);
    let mut old = SINK.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(sink) = old.as_mut() {
        sink.flush();
    }
    old
}

/// Flushes the installed sink (no-op when none is installed).
pub fn flush() {
    with_sink(|s| s.flush());
}

fn emit(kind: EventKind, name: &'static str, index: u64, value: f64) {
    if !enabled() {
        return;
    }
    let event = Event {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        kind,
        name: Cow::Borrowed(name),
        index,
        value,
    };
    with_sink(|s| s.record(&event));
}

/// Records a counter increment of `value` under `name`.
#[inline]
pub fn counter(name: &'static str, value: u64) {
    emit(EventKind::Counter, name, 0, value as f64);
}

/// [`counter`] with an explicit `index` (worker slot, task index, …).
#[inline]
pub fn counter_at(name: &'static str, index: u64, value: u64) {
    emit(EventKind::Counter, name, index, value as f64);
}

/// Records a point-in-time measurement under `name`.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    emit(EventKind::Gauge, name, 0, value);
}

/// [`gauge`] with an explicit `index` (worker slot, task index, …).
#[inline]
pub fn gauge_at(name: &'static str, index: u64, value: f64) {
    emit(EventKind::Gauge, name, index, value);
}

/// Records one observation of the distribution tracked under `name`.
#[inline]
pub fn histogram(name: &'static str, value: f64) {
    emit(EventKind::Histogram, name, 0, value);
}

/// [`histogram`] with an explicit `index`.
#[inline]
pub fn histogram_at(name: &'static str, index: u64, value: f64) {
    emit(EventKind::Histogram, name, index, value);
}

/// RAII guard for a timed span: emits `SpanEnter` on creation (via
/// [`span()`]) and `SpanExit` with elapsed nanoseconds on drop. Because
/// the exit rides on `Drop`, nesting stays balanced on every exit path —
/// early `return`, `?`, and the divergence-guard error path included.
#[must_use = "a span is timed until dropped; binding it to _ closes it immediately"]
pub struct Span {
    name: &'static str,
    index: u64,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            emit(
                EventKind::SpanExit,
                self.name,
                self.index,
                start.elapsed().as_nanos() as f64,
            );
        }
    }
}

/// Opens a timed span. When observability is off this neither reads the
/// clock nor emits anything — the returned guard is inert.
pub fn span(name: &'static str, index: u64) -> Span {
    if !enabled() {
        return Span {
            name,
            index,
            start: None,
        };
    }
    emit(EventKind::SpanEnter, name, index, 0.0);
    Span {
        name,
        index,
        start: Some(Instant::now()),
    }
}

/// Opens a timed span: `span!("task", i)` or `span!("run")` (index 0).
/// Bind the result to a named `_span` local — binding to `_` drops (and
/// closes) it immediately.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name, 0)
    };
    ($name:expr, $index:expr) => {
        $crate::span($name, $index as u64)
    };
}

/// How the process-global sink is configured (`EDSR_OBS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsMode {
    /// No sink; every emit point is a single atomic load.
    #[default]
    Off,
    /// Bounded in-memory ring buffer ([`RingSink`]).
    Ring,
    /// JSON-lines file ([`JsonlSink`]) at `EDSR_OBS_PATH`.
    Jsonl,
}

impl ObsMode {
    /// Parses the `EDSR_OBS` / `--obs` value (`off`, `ring`, `jsonl`).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s.trim().to_ascii_lowercase().as_str() {
            "" | "off" | "0" | "none" => ObsMode::Off,
            "ring" => ObsMode::Ring,
            "jsonl" | "json" => ObsMode::Jsonl,
            _ => return None,
        })
    }

    /// Canonical spelling (the value [`parse`](Self::parse) accepts).
    pub fn as_str(self) -> &'static str {
        match self {
            ObsMode::Off => "off",
            ObsMode::Ring => "ring",
            ObsMode::Jsonl => "jsonl",
        }
    }
}

/// Capacity of the ring installed by [`install_mode`] for
/// [`ObsMode::Ring`].
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Installs the sink selected by `mode`. For [`ObsMode::Jsonl`] the file
/// at `path` is created (truncated); for [`ObsMode::Ring`] a handle to
/// the installed ring is returned so callers can read the events back.
/// [`ObsMode::Off`] uninstalls any existing sink.
pub fn install_mode(mode: ObsMode, path: &std::path::Path) -> std::io::Result<Option<RingSink>> {
    match mode {
        ObsMode::Off => {
            uninstall();
            Ok(None)
        }
        ObsMode::Ring => {
            let ring = RingSink::with_capacity(DEFAULT_RING_CAPACITY);
            install(Box::new(ring.clone()));
            Ok(Some(ring))
        }
        ObsMode::Jsonl => {
            install(Box::new(JsonlSink::create(path)?));
            Ok(None)
        }
    }
}

/// Five-number summary of the events named `name` (gauges, histograms,
/// counters, or span exits — whatever the caller filtered to).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of matching events.
    pub count: u64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sum of values.
    pub sum: f64,
}

/// Summarizes the values of every event named `name` (span-enter events
/// are skipped — their value carries no information). Returns `None`
/// when no event matches.
pub fn summarize<'a>(events: impl IntoIterator<Item = &'a Event>, name: &str) -> Option<Summary> {
    let mut count = 0u64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0f64;
    for e in events {
        if e.name != name || e.kind == EventKind::SpanEnter {
            continue;
        }
        count += 1;
        min = min.min(e.value);
        max = max.max(e.value);
        sum += e.value;
    }
    (count > 0).then(|| Summary {
        count,
        min,
        max,
        mean: sum / count as f64,
        sum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global sink state is process-wide; tests touching it serialize here.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_emits_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        let before = SEQ.load(Ordering::Relaxed);
        gauge("x", 1.0);
        counter("y", 2);
        let _s = span!("z");
        drop(_s);
        assert_eq!(SEQ.load(Ordering::Relaxed), before);
    }

    #[test]
    fn ring_captures_span_and_metrics_in_order() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let ring = RingSink::with_capacity(16);
        install(Box::new(ring.clone()));
        {
            let _task = span!("task", 3);
            gauge_at("loss/css", 3, 0.5);
            {
                let _step = span!("step", 7);
                histogram("h", 1.0);
            }
            counter("c", 2);
        }
        uninstall();
        let events = ring.events();
        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::SpanEnter,
                EventKind::Gauge,
                EventKind::SpanEnter,
                EventKind::Histogram,
                EventKind::SpanExit,
                EventKind::Counter,
                EventKind::SpanExit,
            ]
        );
        assert_eq!(events[0].name, "task");
        assert_eq!(events[0].index, 3);
        let step_exit = &events[4];
        assert_eq!(step_exit.name, "step");
        assert!(step_exit.value >= 0.0);
        // seq strictly increasing.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn span_exit_rides_on_early_return() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let ring = RingSink::with_capacity(16);
        install(Box::new(ring.clone()));
        fn inner() -> Result<(), ()> {
            let _s = span!("inner");
            Err(())
        }
        let _ = inner();
        uninstall();
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].kind, EventKind::SpanExit);
    }

    #[test]
    fn summarize_aggregates_by_name() {
        let mk = |seq, value| Event {
            seq,
            kind: EventKind::Gauge,
            name: Cow::Borrowed("g"),
            index: 0,
            value,
        };
        let events = vec![mk(0, 1.0), mk(1, 3.0), mk(2, 2.0)];
        let s = summarize(&events, "g").expect("events present");
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
        assert!(summarize(&events, "absent").is_none());
    }

    #[test]
    fn obs_mode_parses() {
        assert_eq!(ObsMode::parse("off"), Some(ObsMode::Off));
        assert_eq!(ObsMode::parse("RING"), Some(ObsMode::Ring));
        assert_eq!(ObsMode::parse("jsonl"), Some(ObsMode::Jsonl));
        assert_eq!(ObsMode::parse("bogus"), None);
    }
}
