//! JSON-lines encoding of [`Event`]s, and its inverse.
//!
//! The encoding is deliberately tiny and self-contained (no external
//! crates in this offline workspace): one flat JSON object per line,
//! fields always in the order `seq, kind, name, index, value`. The
//! value uses Rust's shortest-round-trip `f64` formatting, so
//! serialize → parse reproduces the event bit-for-bit; non-finite
//! values are encoded as `null` and parsed back as NaN.

use std::borrow::Cow;
use std::fmt;
use std::io::Write;

use crate::{Event, EventKind};

impl Event {
    /// Writes the event as one JSON object (no trailing newline) in the
    /// stable field order `seq, kind, name, index, value`.
    pub fn write_json(&self, out: &mut impl Write) -> std::io::Result<()> {
        write!(
            out,
            "{{\"seq\":{},\"kind\":\"{}\",\"name\":\"",
            self.seq,
            self.kind.as_str()
        )?;
        write_escaped(out, &self.name)?;
        write!(out, "\",\"index\":{},\"value\":", self.index)?;
        if self.value.is_finite() {
            write!(out, "{}", self.value)?;
        } else {
            write!(out, "null")?;
        }
        write!(out, "}}")
    }

    /// The event as a JSON string (one line, no newline).
    pub fn to_json(&self) -> String {
        let mut buf = Vec::with_capacity(96);
        self.write_json(&mut buf).expect("Vec write cannot fail");
        String::from_utf8(buf).expect("encoder emits UTF-8")
    }
}

fn write_escaped(out: &mut impl Write, s: &str) -> std::io::Result<()> {
    for c in s.chars() {
        match c {
            '"' => out.write_all(b"\\\"")?,
            '\\' => out.write_all(b"\\\\")?,
            '\n' => out.write_all(b"\\n")?,
            '\r' => out.write_all(b"\\r")?,
            '\t' => out.write_all(b"\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    Ok(())
}

/// Why a line failed to parse as an [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the line where parsing stopped.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            at: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| ParseError {
                        message: "invalid UTF-8".into(),
                        at: self.pos,
                    })?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// A non-negative JSON integer, parsed exactly. Going through f64
    /// would silently round `seq`/`index` above 2^53.
    fn integer(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if start == self.pos {
            return self.err("expected unsigned integer");
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        text.parse::<u64>().map_err(|_| ParseError {
            message: format!("integer out of range '{text}'"),
            at: start,
        })
    }

    /// A JSON number or `null` (→ NaN), as f64.
    fn number_or_null(&mut self) -> Result<f64, ParseError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            return Ok(f64::NAN);
        }
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        if start == self.pos {
            return self.err("expected number");
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        text.parse::<f64>().map_err(|_| ParseError {
            message: format!("bad number '{text}'"),
            at: start,
        })
    }
}

/// Parses one JSONL line back into an [`Event`]. Inverse of
/// [`Event::write_json`]; unknown keys are rejected, missing keys are an
/// error, key order is not enforced on input.
pub fn parse_line(line: &str) -> Result<Event, ParseError> {
    let mut p = Parser {
        bytes: line.trim().as_bytes(),
        pos: 0,
    };
    p.expect(b'{')?;
    let mut seq = None;
    let mut kind = None;
    let mut name = None;
    let mut index = None;
    let mut value = None;
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "seq" => seq = Some(p.integer()?),
            "kind" => {
                let s = p.string()?;
                kind = Some(match EventKind::from_wire(&s) {
                    Some(k) => k,
                    None => return p.err(format!("unknown kind '{s}'")),
                });
            }
            "name" => name = Some(p.string()?),
            "index" => index = Some(p.integer()?),
            "value" => value = Some(p.number_or_null()?),
            other => return p.err(format!("unknown key '{other}'")),
        }
        p.skip_ws();
        match p.peek() {
            Some(b',') => p.pos += 1,
            Some(b'}') => {
                p.pos += 1;
                break;
            }
            _ => return p.err("expected ',' or '}'"),
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing content after object");
    }
    match (seq, kind, name, index, value) {
        (Some(seq), Some(kind), Some(name), Some(index), Some(value)) => Ok(Event {
            seq,
            kind,
            name: Cow::Owned(name),
            index,
            value,
        }),
        _ => p.err("missing field (need seq, kind, name, index, value)"),
    }
}

/// Parses a whole JSONL document (blank lines skipped) into events.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, ParseError> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse_line)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, kind: EventKind, name: &'static str, index: u64, value: f64) -> Event {
        Event {
            seq,
            kind,
            name: Cow::Borrowed(name),
            index,
            value,
        }
    }

    #[test]
    fn encode_uses_stable_field_order() {
        let e = ev(5, EventKind::Gauge, "loss/css", 2, 0.125);
        let json = e.to_json();
        assert_eq!(
            json,
            "{\"seq\":5,\"kind\":\"gauge\",\"name\":\"loss/css\",\"index\":2,\"value\":0.125}"
        );
    }

    #[test]
    fn roundtrip_exact_for_tricky_floats() {
        for &v in &[
            0.0,
            -0.0,
            1.0,
            0.1,
            1e-300,
            1e300,
            std::f64::consts::PI,
            f64::MIN_POSITIVE,
            f64::MAX,
        ] {
            let e = ev(1, EventKind::Histogram, "h", 0, v);
            let back = parse_line(&e.to_json()).unwrap();
            assert_eq!(back.value.to_bits(), v.to_bits(), "value {v} changed");
        }
    }

    #[test]
    fn seq_and_index_roundtrip_exactly_above_f64_precision() {
        let e = ev(u64::MAX, EventKind::Counter, "c", u64::MAX - 1, 1.0);
        let back = parse_line(&e.to_json()).unwrap();
        assert_eq!(back.seq, u64::MAX);
        assert_eq!(back.index, u64::MAX - 1);
    }

    #[test]
    fn non_finite_encodes_as_null_and_parses_as_nan() {
        for &v in &[f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let e = ev(1, EventKind::Gauge, "g", 0, v);
            assert!(e.to_json().ends_with("\"value\":null}"));
            let back = parse_line(&e.to_json()).unwrap();
            assert!(back.value.is_nan());
        }
    }

    #[test]
    fn name_escaping_roundtrips() {
        let e = ev(2, EventKind::Counter, "we\"ird\\na\nme\t\u{1}", 9, 3.0);
        let back = parse_line(&e.to_json()).unwrap();
        assert_eq!(back.name, e.name);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line("{\"seq\":1}").is_err(), "missing fields");
        assert!(
            parse_line(
                "{\"seq\":1,\"kind\":\"gauge\",\"name\":\"n\",\"index\":0,\"value\":1,\"x\":2}"
            )
            .is_err(),
            "unknown key"
        );
        assert!(
            parse_line("{\"seq\":1,\"kind\":\"nope\",\"name\":\"n\",\"index\":0,\"value\":1}")
                .is_err(),
            "unknown kind"
        );
    }

    #[test]
    fn parse_jsonl_skips_blank_lines() {
        let a = ev(0, EventKind::SpanEnter, "t", 0, 0.0);
        let b = ev(1, EventKind::SpanExit, "t", 0, 42.0);
        let doc = format!("{}\n\n{}\n", a.to_json(), b.to_json());
        let got = parse_jsonl(&doc).unwrap();
        assert_eq!(got, vec![a, b]);
    }
}
