//! Scenario zoo: deterministic stream generators beyond clean
//! class-incremental boundaries.
//!
//! Each scenario is a recipe that turns a seed into a [`TaskSequence`]
//! plus matching augmenters, and can equally write itself to an
//! `EDSRDS01` shard directory (see [`write_scenario`]) for the
//! out-of-core path. All four are seed-deterministic and independent of
//! thread count, so a streamed run is bit-identical to an in-RAM run of
//! the same scenario.
//!
//! | scenario             | boundary structure                                  |
//! |----------------------|-----------------------------------------------------|
//! | `class-incremental`  | disjoint class groups per increment (paper setting) |
//! | `blurry`             | task-free: each increment leaks a fraction of its   |
//! |                      | head/tail samples into its neighbours               |
//! | `domain-incremental` | same classes every increment, per-increment style   |
//! |                      | shift (domain = additive smooth pattern)            |
//! | `long-tail`          | power-law class sizes, then class-incremental split |
//!
//! The blurry and long-tail settings are where replay *selection*
//! matters most (PAPERS.md: complementary-embedding and R2R-style
//! baselines), which is why the scenarios bench sweeps methods over this
//! zoo rather than only the clean splits.

use std::path::Path;
use std::sync::Arc;

use crate::augment::Augmenter;
use crate::dataset::{Dataset, Task, TaskSequence};
use crate::error::DataError;
use crate::grid::GridSpec;
use crate::presets::Preset;
use crate::shard::write_shard_dir;
use crate::synth::{apply_style, make_class_datasets, smooth_pattern, NuisanceConfig, SynthConfig};
use crate::tasks::split_by_classes;
use edsr_tensor::rng::seeded;

/// Names accepted by [`build_scenario`], in bench-sweep order.
pub const SCENARIO_NAMES: &[&str] = &[
    "class-incremental",
    "blurry",
    "domain-incremental",
    "long-tail",
];

/// Fraction of an increment's rows leaked to each neighbour in the
/// blurry scenario.
const BLURRY_CARRYOVER: f32 = 0.25;

/// Number of domains (increments) in the domain-incremental scenario.
const DOMAINS: usize = 8;

/// Per-class training counts decay by this factor per class rank in the
/// long-tail scenario.
const LONG_TAIL_DECAY: f32 = 0.82;

/// A built scenario: the stream, its augmenters, and the preset whose
/// budget/kNN parameters method construction should use.
pub struct ScenarioData {
    /// Parameter carrier (grid, memory budget, noise neighbours) for
    /// building methods against this stream.
    pub preset: Preset,
    /// The increments in presentation order.
    pub seq: TaskSequence,
    /// One augmenter per increment, sharing the generator's nuisance
    /// pattern world.
    pub augmenters: Vec<Augmenter>,
}

/// Shared generator shape for the whole zoo: 4×4 single-channel grid so
/// scenario sweeps stay test-sized while still giving 8-increment
/// streams (4× the loader's two-shard resident budget).
fn zoo_preset(name: &'static str, num_classes: usize, classes_per_task: usize) -> Preset {
    Preset {
        name,
        grid: GridSpec::new(4, 4, 1),
        synth: SynthConfig {
            nuisance: NuisanceConfig {
                n_patterns: 4,
                pattern_scale: 0.8,
                gain: 0.15,
                flip: true,
                shift: 1,
            },
            ..SynthConfig::default()
        },
        num_classes,
        classes_per_task,
        train_per_class: 20,
        test_per_class: 6,
        memory_total: 32,
        noise_neighbors: 4,
        style_strength: 0.6,
    }
}

fn pattern_augmenters(preset: &Preset, patterns: Arc<Vec<Vec<f32>>>, n: usize) -> Vec<Augmenter> {
    (0..n)
        .map(|_| {
            Augmenter::standard_image_with_patterns(
                preset.grid,
                Arc::clone(&patterns),
                preset.synth.nuisance.pattern_scale,
            )
        })
        .collect()
}

/// Clean class-incremental stream: 8 increments × 2 classes.
fn class_incremental(seed: u64) -> ScenarioData {
    let preset = zoo_preset("class-incremental", 16, 2);
    let mut rng = seeded(seed);
    let (seq, augmenters) = preset.build_with_augmenters(&mut rng);
    ScenarioData {
        preset,
        seq,
        augmenters,
    }
}

/// Task-free/blurry stream: the class-incremental split with each
/// boundary dissolved — the last quarter of increment `i`'s rows move
/// into `i+1` and the first quarter of `i+1`'s rows move into `i`.
/// Membership is decided on the *original* split, so the transform is a
/// deterministic permutation of rows (byte-identical samples, blurred
/// labels-per-increment). Test splits keep clean boundaries: evaluation
/// still asks "how well is increment i's content represented".
fn blurry(seed: u64) -> ScenarioData {
    let base = class_incremental(seed);
    let orig: Vec<Dataset> = base.seq.tasks.iter().map(|t| t.train.clone()).collect();
    let n = orig.len();
    let head_len = |d: &Dataset| (d.len() as f32 * BLURRY_CARRYOVER) as usize;

    let mut tasks = Vec::with_capacity(n);
    for (i, task) in base.seq.tasks.iter().enumerate() {
        let mut parts: Vec<Dataset> = Vec::new();
        if i > 0 {
            // Tail of the previous increment leaks forward into this one.
            let prev = &orig[i - 1];
            let k = head_len(prev);
            let idx: Vec<usize> = (prev.len() - k..prev.len()).collect();
            parts.push(prev.subset(&idx));
        }
        // Own core: minus the head donated backward and tail donated
        // forward (ends of the stream keep their edges).
        let own = &orig[i];
        let start = if i > 0 { head_len(own) } else { 0 };
        let end = if i + 1 < n {
            own.len() - head_len(own)
        } else {
            own.len()
        };
        parts.push(own.subset(&(start..end).collect::<Vec<usize>>()));
        if i + 1 < n {
            // Head of the next increment leaks backward into this one.
            let next = &orig[i + 1];
            let idx: Vec<usize> = (0..head_len(next)).collect();
            parts.push(next.subset(&idx));
        }
        let train = Dataset::concat(
            format!("blurry-train-{i}"),
            &parts.iter().collect::<Vec<_>>(),
        );
        let classes = train.classes();
        tasks.push(Task {
            train,
            test: task.test.clone(),
            classes,
        });
    }
    let preset = Preset {
        name: "blurry",
        ..base.preset
    };
    ScenarioData {
        preset,
        seq: TaskSequence {
            name: "blurry".into(),
            tasks,
        },
        augmenters: base.augmenters,
    }
}

/// Domain-incremental stream: all 6 classes appear in every increment;
/// each increment is one "domain" — a distinct additive smooth-pattern
/// style over both its train and test rows. Forgetting here is loss of
/// robustness to earlier domains, not of earlier classes.
fn domain_incremental(seed: u64) -> ScenarioData {
    let mut preset = zoo_preset("domain-incremental", 6, 6);
    preset.train_per_class = 40; // 5 per class per domain
    preset.test_per_class = 16; // 2 per class per domain
    preset.style_strength = 0.8;
    let mut rng = seeded(seed);
    let (train, test, world) = make_class_datasets(
        preset.name,
        preset.num_classes,
        preset.train_per_class,
        preset.test_per_class,
        preset.grid,
        &preset.synth,
        &mut rng,
    );
    // make_class_datasets lays rows out class-contiguously; domain d
    // takes the d-th stripe of every class.
    let stripe = |per_class: usize, d: usize, data: &Dataset| {
        let width = per_class / DOMAINS;
        let idx: Vec<usize> = (0..preset.num_classes)
            .flat_map(|k| k * per_class + d * width..k * per_class + (d + 1) * width)
            .collect();
        data.subset(&idx)
    };
    let tasks = (0..DOMAINS)
        .map(|d| {
            let mut tr = stripe(preset.train_per_class, d, &train);
            let mut te = stripe(preset.test_per_class, d, &test);
            let style = smooth_pattern(preset.grid, preset.synth.coarse_factor, &mut rng);
            apply_style(&mut tr, &style, preset.style_strength);
            apply_style(&mut te, &style, preset.style_strength);
            Task {
                train: tr,
                test: te,
                classes: (0..preset.num_classes).collect(),
            }
        })
        .collect();
    let augmenters = pattern_augmenters(&preset, Arc::new(world.patterns), DOMAINS);
    ScenarioData {
        preset,
        seq: TaskSequence {
            name: "domain-incremental".into(),
            tasks,
        },
        augmenters,
    }
}

/// Long-tail stream: class `k` (in generation order) keeps
/// `max(4, 20·0.82^k)` training rows, then the classes are split
/// class-incrementally. Tail increments are data-starved, so replay
/// quality dominates their retention.
fn long_tail(seed: u64) -> ScenarioData {
    let preset = zoo_preset("long-tail", 16, 2);
    let mut rng = seeded(seed);
    let (train, test, world) = make_class_datasets(
        preset.name,
        preset.num_classes,
        preset.train_per_class,
        preset.test_per_class,
        preset.grid,
        &preset.synth,
        &mut rng,
    );
    // Truncate each class-contiguous block to its power-law count.
    let idx: Vec<usize> = (0..preset.num_classes)
        .flat_map(|k| {
            let count =
                ((preset.train_per_class as f32 * LONG_TAIL_DECAY.powi(k as i32)) as usize).max(4);
            k * preset.train_per_class..k * preset.train_per_class + count
        })
        .collect();
    let train = train.subset(&idx);
    let mut seq = split_by_classes(
        preset.name,
        &train,
        &test,
        preset.classes_per_task,
        true,
        &mut rng,
    );
    for task in &mut seq.tasks {
        let style = smooth_pattern(preset.grid, preset.synth.coarse_factor, &mut rng);
        apply_style(&mut task.train, &style, preset.style_strength);
        apply_style(&mut task.test, &style, preset.style_strength);
    }
    let n = seq.len();
    let augmenters = pattern_augmenters(&preset, Arc::new(world.patterns), n);
    ScenarioData {
        preset,
        seq,
        augmenters,
    }
}

/// Builds a scenario by name. Returns `None` for unknown names — callers
/// report [`SCENARIO_NAMES`].
pub fn build_scenario(name: &str, seed: u64) -> Option<ScenarioData> {
    match name {
        "class-incremental" => Some(class_incremental(seed)),
        "blurry" => Some(blurry(seed)),
        "domain-incremental" => Some(domain_incremental(seed)),
        "long-tail" => Some(long_tail(seed)),
        _ => None,
    }
}

/// Generates a scenario and writes it as an `EDSRDS01` shard directory;
/// returns the number of shards written. The stream read back from
/// `dir` is bit-identical to [`build_scenario`]'s in-RAM sequence.
pub fn write_scenario(name: &str, seed: u64, dir: impl AsRef<Path>) -> Result<usize, DataError> {
    let data = build_scenario(name, seed).ok_or_else(|| {
        DataError::Shape(format!(
            "unknown scenario `{name}` (expected one of {SCENARIO_NAMES:?})"
        ))
    })?;
    write_shard_dir(dir.as_ref(), &data.seq)?;
    Ok(data.seq.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_builds_deterministically() {
        for &name in SCENARIO_NAMES {
            let a = build_scenario(name, 9).unwrap();
            let b = build_scenario(name, 9).unwrap();
            assert_eq!(a.seq.name, name);
            assert_eq!(a.seq.len(), b.seq.len());
            assert!(a.seq.len() >= 8, "{name}: {} increments", a.seq.len());
            assert_eq!(a.augmenters.len(), a.seq.len(), "{name}");
            for (x, y) in a.seq.tasks.iter().zip(&b.seq.tasks) {
                assert_eq!(x.train.inputs.max_abs_diff(&y.train.inputs), 0.0);
                assert_eq!(x.test.labels, y.test.labels);
                assert_eq!(x.classes, y.classes);
            }
        }
    }

    #[test]
    fn unknown_scenario_is_none() {
        assert!(build_scenario("nope", 1).is_none());
    }

    #[test]
    fn blurry_leaks_classes_across_boundaries() {
        let clean = build_scenario("class-incremental", 5).unwrap();
        let blur = build_scenario("blurry", 5).unwrap();
        assert_eq!(clean.seq.len(), blur.seq.len());
        // Same total sample count — blurring permutes, never duplicates.
        let total = |s: &TaskSequence| s.tasks.iter().map(|t| t.train.len()).sum::<usize>();
        assert_eq!(total(&clean.seq), total(&blur.seq));
        // Interior increments must contain classes from ≥2 clean groups.
        let mut widened = 0;
        for (i, t) in blur.seq.tasks.iter().enumerate() {
            if t.classes.len() > clean.seq.tasks[i].classes.len() {
                widened += 1;
            }
        }
        assert!(widened >= blur.seq.len() - 2, "only {widened} blurred");
        // Test boundaries stay clean.
        for (c, b) in clean.seq.tasks.iter().zip(&blur.seq.tasks) {
            assert_eq!(c.test.labels, b.test.labels);
        }
    }

    #[test]
    fn domain_incremental_repeats_classes_with_distinct_styles() {
        let d = build_scenario("domain-incremental", 3).unwrap();
        for t in &d.seq.tasks {
            assert_eq!(t.classes, (0..6).collect::<Vec<_>>());
            assert_eq!(t.train.len(), 30);
            assert_eq!(t.test.len(), 12);
        }
        // Distinct domains: increments differ even though classes repeat.
        let a = &d.seq.tasks[0].train.inputs;
        let b = &d.seq.tasks[1].train.inputs;
        assert!(a.max_abs_diff(b) > 0.1);
    }

    #[test]
    fn long_tail_counts_decay() {
        let d = build_scenario("long-tail", 4).unwrap();
        let total: usize = d.seq.tasks.iter().map(|t| t.train.len()).sum();
        let head = 16 * 20;
        assert!(total < head, "no truncation happened: {total}");
        // Class sizes span a real range: some class keeps 20, some hits
        // the floor of 4.
        let mut counts = std::collections::HashMap::new();
        for t in &d.seq.tasks {
            for &l in &t.train.labels {
                *counts.entry(l).or_insert(0usize) += 1;
            }
        }
        let max = counts.values().max().copied().unwrap();
        let min = counts.values().min().copied().unwrap();
        assert_eq!(max, 20);
        assert_eq!(min, 4);
    }

    #[test]
    fn write_scenario_round_trips_bit_identically() {
        let dir = std::env::temp_dir().join("edsr_scenario_rt");
        std::fs::remove_dir_all(&dir).ok();
        let n = write_scenario("blurry", 11, &dir).unwrap();
        assert!(n >= 8);
        let built = build_scenario("blurry", 11).unwrap();
        let mut stream = crate::stream::ShardStream::open(&dir).unwrap();
        use crate::source::TaskSource;
        for (i, t) in built.seq.tasks.iter().enumerate() {
            let s = stream.fetch(i).unwrap();
            assert_eq!(s.train.inputs.max_abs_diff(&t.train.inputs), 0.0);
            assert_eq!(s.test.inputs.max_abs_diff(&t.test.inputs), 0.0);
            assert_eq!(s.classes, t.classes);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_unknown_scenario_errors() {
        let dir = std::env::temp_dir().join("edsr_scenario_bad");
        assert!(write_scenario("nope", 1, &dir).is_err());
    }
}
