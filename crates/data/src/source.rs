//! The [`TaskSource`] abstraction: anything that can yield continual-
//! learning increments in presentation order.
//!
//! The trainer (`edsr-cl`) consumes increments through this trait instead
//! of a concrete [`TaskSequence`], so the same run loop drives both the
//! fully materialized in-RAM path and the out-of-core shard stream
//! ([`crate::stream::ShardStream`]). The contract that makes the two
//! interchangeable:
//!
//! - **Identity**: `fetch(i)` must return the *same bytes* every time it
//!   is called for the same `i` — the trainer re-fetches earlier
//!   increments for the kNN evaluation rows, and bit-identical
//!   checkpoints across sources depend on it.
//! - **Locality**: the trainer's access pattern is sequential with
//!   bounded look-back bursts (`fetch(i)`, then `fetch(0..=i)` for the
//!   evaluation row, then `fetch(i+1)`), so a streaming source only ever
//!   needs a small resident window.
//! - **No RNG**: `fetch` must not consume training randomness; all
//!   stochasticity lives in generators that *write* data, never in
//!   sources that yield it.

use crate::dataset::{Task, TaskSequence};
use crate::error::DataError;

/// An ordered source of continual-learning increments.
///
/// Implemented by [`TaskSequence`] (in-RAM, infallible) and by
/// [`crate::stream::ShardStream`] (out-of-core, at most two shards
/// resident). `fetch` takes `&mut self` so streaming implementations can
/// rotate buffers; in-RAM implementations simply return a borrow.
pub trait TaskSource {
    /// Benchmark / stream name (labels results and checkpoints).
    fn name(&self) -> &str;

    /// Number of increments.
    fn len(&self) -> usize;

    /// True when the source holds no increments.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Input dimensionality of the first increment (heterogeneous-width
    /// streams, e.g. the tabular benchmark, report their first width).
    fn dim(&self) -> usize;

    /// Yields increment `idx`, loading it if necessary. Streaming sources
    /// may evict other increments to stay within their resident budget.
    fn fetch(&mut self, idx: usize) -> Result<&Task, DataError>;
}

impl TaskSource for TaskSequence {
    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.tasks.len()
    }

    fn dim(&self) -> usize {
        self.tasks.first().map_or(0, |t| t.train.dim())
    }

    fn fetch(&mut self, idx: usize) -> Result<&Task, DataError> {
        self.tasks.get(idx).ok_or(DataError::OutOfRange {
            index: idx,
            len: self.tasks.len(),
        })
    }
}

/// A shared sequence is also a source: `fetch` never mutates, so the
/// deprecated `&TaskSequence` trainer shims can wrap their argument in
/// `&mut &TaskSequence` without cloning.
impl TaskSource for &TaskSequence {
    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.tasks.len()
    }

    fn dim(&self) -> usize {
        self.tasks.first().map_or(0, |t| t.train.dim())
    }

    fn fetch(&mut self, idx: usize) -> Result<&Task, DataError> {
        self.tasks.get(idx).ok_or(DataError::OutOfRange {
            index: idx,
            len: self.tasks.len(),
        })
    }
}

/// Materializes any source into an in-RAM [`TaskSequence`] by fetching
/// every increment in order. The joint-training upper bound needs all
/// increments at once (its epochs interleave batches across tasks), so
/// it goes through here; everything else should stream.
pub fn materialize(source: &mut dyn TaskSource) -> Result<TaskSequence, DataError> {
    let name = source.name().to_string();
    let mut tasks = Vec::with_capacity(source.len());
    for idx in 0..source.len() {
        tasks.push(source.fetch(idx)?.clone());
    }
    Ok(TaskSequence { name, tasks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use edsr_tensor::Matrix;

    fn seq() -> TaskSequence {
        let d = Dataset::new("d", Matrix::zeros(4, 3), vec![0, 0, 1, 1]);
        TaskSequence {
            name: "toy".into(),
            tasks: vec![
                Task {
                    train: d.filter_classes(&[0]),
                    test: d.filter_classes(&[0]),
                    classes: vec![0],
                },
                Task {
                    train: d.filter_classes(&[1]),
                    test: d.filter_classes(&[1]),
                    classes: vec![1],
                },
            ],
        }
    }

    #[test]
    fn sequence_is_a_source() {
        let mut s = seq();
        assert_eq!(TaskSource::name(&s), "toy");
        assert_eq!(TaskSource::len(&s), 2);
        assert_eq!(TaskSource::dim(&s), 3);
        assert_eq!(s.fetch(1).unwrap().classes, vec![1]);
        assert!(matches!(
            s.fetch(2),
            Err(DataError::OutOfRange { index: 2, len: 2 })
        ));
    }

    #[test]
    fn shared_reference_is_a_source() {
        let s = seq();
        let mut r = &s;
        let src: &mut dyn TaskSource = &mut r;
        assert_eq!(src.len(), 2);
        assert_eq!(src.fetch(0).unwrap().classes, vec![0]);
    }

    #[test]
    fn materialize_round_trips() {
        let s = seq();
        let back = materialize(&mut &s).unwrap();
        assert_eq!(back.name, s.name);
        assert_eq!(back.len(), s.len());
        for (a, b) in back.tasks.iter().zip(&s.tasks) {
            assert_eq!(a.train.inputs.max_abs_diff(&b.train.inputs), 0.0);
            assert_eq!(a.test.labels, b.test.labels);
        }
    }
}
