//! Structured data-layer errors.
//!
//! Everything that can go wrong while validating, sharding, or streaming
//! datasets is funnelled into [`DataError`], so callers above this crate
//! (the trainer, the CLI, benches) can report *which* shard or shape
//! check failed instead of unwinding on a panic. `edsr-cl` wraps it in
//! `TrainError::Data` and `edsr-core` in `Error::Data`, keeping the `?`
//! operator working across the whole stack.

use std::fmt;
use std::io;
use std::path::PathBuf;

use edsr_wire::EnvelopeError;

/// A failure raised by the data subsystem.
#[derive(Debug)]
pub enum DataError {
    /// Shape validation failed (label/row mismatch, column mismatch,
    /// empty concat, …). The message carries the exact constraint.
    Shape(String),
    /// Plain file I/O on a shard directory or manifest.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// Underlying error.
        source: io::Error,
    },
    /// A shard or manifest envelope failed integrity validation
    /// (bad magic, truncation, CRC mismatch) — the file is skipped
    /// loudly, never partially decoded.
    Envelope {
        /// The offending file.
        path: PathBuf,
        /// What the envelope check found.
        source: EnvelopeError,
    },
    /// A validated payload could not be parsed (internal length field
    /// out of range, trailing bytes, bad UTF-8 name, …).
    Format {
        /// The offending file.
        path: PathBuf,
        /// What the parser found.
        detail: String,
    },
    /// A task index beyond the source's length was requested.
    OutOfRange {
        /// Requested increment index.
        index: usize,
        /// Number of increments the source holds.
        len: usize,
    },
    /// The background prefetcher died (panic while decoding).
    Prefetch(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Shape(msg) => write!(f, "{msg}"),
            DataError::Io { path, source } => {
                write!(f, "data io on {}: {source}", path.display())
            }
            DataError::Envelope { path, source } => {
                write!(f, "shard {}: {source}", path.display())
            }
            DataError::Format { path, detail } => {
                write!(f, "malformed shard payload {}: {detail}", path.display())
            }
            DataError::OutOfRange { index, len } => {
                write!(f, "task index {index} out of range for {len} increments")
            }
            DataError::Prefetch(msg) => write!(f, "shard prefetcher failed: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io { source, .. } => Some(source),
            DataError::Envelope { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_file() {
        let e = DataError::Envelope {
            path: PathBuf::from("/tmp/task0003.shard"),
            source: EnvelopeError::Corrupt {
                stored: 1,
                computed: 2,
            },
        };
        let msg = e.to_string();
        assert!(msg.contains("task0003.shard"), "{msg}");
        assert!(msg.contains("corrupt"), "{msg}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn out_of_range_reports_both_sides() {
        let e = DataError::OutOfRange { index: 7, len: 3 };
        let msg = e.to_string();
        assert!(msg.contains('7') && msg.contains('3'), "{msg}");
    }
}
