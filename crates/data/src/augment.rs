//! Stochastic augmentations — the view generators `T(·; O)` of paper
//! §II-A1.
//!
//! Image ops mirror the paper's `{crop, horizontalFlip, colorJitter,
//! grayScale, gaussianBlur}` as structured analogues on the synthetic
//! grid; the tabular op is SCARF's `tabularCrop` (random feature
//! corruption from the empirical marginal) per \[75\].

use edsr_tensor::rng::{index, uniform};
use edsr_tensor::Matrix;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::grid::GridSpec;

/// One augmentation operation on a grid sample.
#[derive(Debug, Clone)]
pub enum AugOp {
    /// Random crop of relative size in `[min_scale, 1]`, resized back.
    Crop {
        /// Smallest crop window relative to full size (0, 1].
        min_scale: f32,
    },
    /// Horizontal mirror with probability `p`.
    HorizontalFlip {
        /// Application probability.
        p: f32,
    },
    /// Per-channel affine jitter `x·(1+a)+b` (brightness/contrast analogue).
    ColorJitter {
        /// Magnitude of `a` and `b` (uniform in `±strength`).
        strength: f32,
    },
    /// With probability `p`, replaces every channel by the channel mean.
    GrayScale {
        /// Application probability.
        p: f32,
    },
    /// With probability `p`, 3×3 box blur per channel.
    GaussianBlur {
        /// Application probability.
        p: f32,
    },
    /// Nuisance-subspace jitter: adds a fresh random draw over the
    /// benchmark's fixed nuisance patterns (`x += Σ c_j·g_j`,
    /// `c ~ N(0, scale²)`). The colorJitter analogue of this simulation —
    /// it re-randomizes exactly the nuisance the generator planted, giving
    /// same-class samples overlapping view distributions (the
    /// augmentation-overlap property \[71\] contrastive clustering needs).
    PatternJitter {
        /// The benchmark's shared nuisance patterns (unit RMS, flattened).
        patterns: std::sync::Arc<Vec<Vec<f32>>>,
        /// Coefficient std of the fresh draw.
        scale: f32,
    },
}

impl AugOp {
    /// Applies the op in place (Eq. 2: ops compose sequentially).
    pub fn apply(&self, sample: &mut [f32], grid: GridSpec, rng: &mut StdRng) {
        match *self {
            AugOp::Crop { min_scale } => crop_resize(sample, grid, min_scale, rng),
            AugOp::HorizontalFlip { p } => {
                if rng.random::<f32>() < p {
                    horizontal_flip(sample, grid);
                }
            }
            AugOp::ColorJitter { strength } => color_jitter(sample, grid, strength, rng),
            AugOp::GrayScale { p } => {
                if rng.random::<f32>() < p {
                    gray_scale(sample, grid);
                }
            }
            AugOp::GaussianBlur { p } => {
                if rng.random::<f32>() < p {
                    box_blur(sample, grid);
                }
            }
            AugOp::PatternJitter {
                ref patterns,
                scale,
            } => {
                for p in patterns.iter() {
                    let c = edsr_tensor::rng::gaussian(rng) * scale;
                    for (v, &pi) in sample.iter_mut().zip(p) {
                        *v += c * pi;
                    }
                }
            }
        }
    }
}

fn crop_resize(sample: &mut [f32], grid: GridSpec, min_scale: f32, rng: &mut StdRng) {
    let scale = uniform(rng, min_scale.clamp(0.05, 1.0), 1.0);
    let ch = ((grid.height as f32 * scale).round() as usize).clamp(1, grid.height);
    let cw = ((grid.width as f32 * scale).round() as usize).clamp(1, grid.width);
    let top = if grid.height > ch {
        index(rng, grid.height - ch + 1)
    } else {
        0
    };
    let left = if grid.width > cw {
        index(rng, grid.width - cw + 1)
    } else {
        0
    };

    let src = sample.to_vec();
    for c in 0..grid.channels {
        for r in 0..grid.height {
            for col in 0..grid.width {
                let y = top as f32 + r as f32 / (grid.height - 1).max(1) as f32 * (ch - 1) as f32;
                let x = left as f32 + col as f32 / (grid.width - 1).max(1) as f32 * (cw - 1) as f32;
                sample[grid.index(c, r, col)] = grid.bilinear(&src, c, y, x);
            }
        }
    }
}

fn horizontal_flip(sample: &mut [f32], grid: GridSpec) {
    for c in 0..grid.channels {
        for r in 0..grid.height {
            for col in 0..grid.width / 2 {
                let a = grid.index(c, r, col);
                let b = grid.index(c, r, grid.width - 1 - col);
                sample.swap(a, b);
            }
        }
    }
}

fn color_jitter(sample: &mut [f32], grid: GridSpec, strength: f32, rng: &mut StdRng) {
    let plane = grid.height * grid.width;
    for c in 0..grid.channels {
        let a = uniform(rng, -strength, strength);
        let b = uniform(rng, -strength, strength);
        for v in &mut sample[c * plane..(c + 1) * plane] {
            *v = *v * (1.0 + a) + b;
        }
    }
}

fn gray_scale(sample: &mut [f32], grid: GridSpec) {
    if grid.channels < 2 {
        return;
    }
    let plane = grid.height * grid.width;
    for p in 0..plane {
        let mean: f32 = (0..grid.channels)
            .map(|c| sample[c * plane + p])
            .sum::<f32>()
            / grid.channels as f32;
        for c in 0..grid.channels {
            sample[c * plane + p] = mean;
        }
    }
}

fn box_blur(sample: &mut [f32], grid: GridSpec) {
    let src = sample.to_vec();
    for c in 0..grid.channels {
        for r in 0..grid.height {
            for col in 0..grid.width {
                let mut acc = 0.0f32;
                let mut n = 0u32;
                for dr in -1i32..=1 {
                    for dc in -1i32..=1 {
                        let rr = r as i32 + dr;
                        let cc = col as i32 + dc;
                        if rr >= 0
                            && cc >= 0
                            && (rr as usize) < grid.height
                            && (cc as usize) < grid.width
                        {
                            acc += src[grid.index(c, rr as usize, cc as usize)];
                            n += 1;
                        }
                    }
                }
                sample[grid.index(c, r, col)] = acc / n as f32;
            }
        }
    }
}

/// A view generator: either an image-op sequence over a grid, or SCARF
/// feature corruption over a reference corpus, or the identity.
#[derive(Debug, Clone)]
pub enum Augmenter {
    /// Sequential image-style ops on a [`GridSpec`] sample (Eq. 2).
    Image {
        /// Geometry of each sample.
        grid: GridSpec,
        /// Ops applied in order.
        ops: Vec<AugOp>,
    },
    /// SCARF `tabularCrop` \[75\]: each feature is independently replaced,
    /// with probability `corruption_prob`, by the same feature of a random
    /// row of `reference`.
    TabularCrop {
        /// Empirical marginal source (usually the current train split).
        reference: Matrix,
        /// Per-feature corruption probability.
        corruption_prob: f32,
    },
    /// No-op (raw views; useful in tests and for the selection stage,
    /// where the paper extracts representations without augmentation).
    Identity,
}

impl Augmenter {
    /// The paper's image pipeline analogue with default magnitudes (no
    /// nuisance-subspace jitter — use
    /// [`standard_image_with_patterns`](Self::standard_image_with_patterns)
    /// for benchmark data).
    pub fn standard_image(grid: GridSpec) -> Self {
        Augmenter::Image {
            grid,
            ops: vec![
                AugOp::Crop { min_scale: 0.6 },
                AugOp::HorizontalFlip { p: 0.5 },
                AugOp::ColorJitter { strength: 0.25 },
                AugOp::GrayScale { p: 0.2 },
                AugOp::GaussianBlur { p: 0.2 },
            ],
        }
    }

    /// The image pipeline including the nuisance-subspace jitter coupled
    /// to the benchmark's pattern world.
    pub fn standard_image_with_patterns(
        grid: GridSpec,
        patterns: std::sync::Arc<Vec<Vec<f32>>>,
        scale: f32,
    ) -> Self {
        Augmenter::Image {
            grid,
            ops: vec![
                AugOp::Crop { min_scale: 0.92 },
                AugOp::HorizontalFlip { p: 0.3 },
                AugOp::PatternJitter { patterns, scale },
                AugOp::GaussianBlur { p: 0.1 },
            ],
        }
    }

    /// SCARF corruption with the reference corpus.
    pub fn tabular(reference: Matrix, corruption_prob: f32) -> Self {
        Augmenter::TabularCrop {
            reference,
            corruption_prob,
        }
    }

    /// Augments one sample (row slice) into a new view.
    pub fn view(&self, sample: &[f32], rng: &mut StdRng) -> Vec<f32> {
        match self {
            Augmenter::Image { grid, ops } => {
                debug_assert_eq!(sample.len(), grid.dim(), "augment: sample/grid mismatch");
                let mut out = sample.to_vec();
                for op in ops {
                    op.apply(&mut out, *grid, rng);
                }
                out
            }
            Augmenter::TabularCrop {
                reference,
                corruption_prob,
            } => {
                let mut out = sample.to_vec();
                for (f, v) in out.iter_mut().enumerate() {
                    if rng.random::<f32>() < *corruption_prob {
                        let row = index(rng, reference.rows());
                        *v = reference.get(row, f);
                    }
                }
                out
            }
            Augmenter::Identity => sample.to_vec(),
        }
    }

    /// Augments each row of `batch`, producing one full view matrix.
    pub fn view_batch(&self, batch: &Matrix, rng: &mut StdRng) -> Matrix {
        let mut out = Matrix::zeros(batch.rows(), batch.cols());
        for r in 0..batch.rows() {
            let v = self.view(batch.row(r), rng);
            out.row_mut(r).copy_from_slice(&v);
        }
        out
    }

    /// Two independent views of each row — the positive pair `(x_1, x_2)`.
    pub fn two_views(&self, batch: &Matrix, rng: &mut StdRng) -> (Matrix, Matrix) {
        (self.view_batch(batch, rng), self.view_batch(batch, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::rng::seeded;

    fn grid() -> GridSpec {
        GridSpec::new(6, 6, 2)
    }

    fn ramp_sample(g: GridSpec) -> Vec<f32> {
        (0..g.dim()).map(|i| i as f32).collect()
    }

    #[test]
    fn flip_is_involution() {
        let g = grid();
        let mut s = ramp_sample(g);
        let orig = s.clone();
        horizontal_flip(&mut s, g);
        assert_ne!(s, orig);
        horizontal_flip(&mut s, g);
        assert_eq!(s, orig);
    }

    #[test]
    fn gray_scale_equalizes_channels() {
        let g = grid();
        let mut s = ramp_sample(g);
        gray_scale(&mut s, g);
        let plane = g.height * g.width;
        for p in 0..plane {
            assert_eq!(s[p], s[plane + p]);
        }
    }

    #[test]
    fn blur_preserves_constant_images() {
        let g = grid();
        let mut s = vec![3.5f32; g.dim()];
        box_blur(&mut s, g);
        assert!(s.iter().all(|&v| (v - 3.5).abs() < 1e-6));
    }

    #[test]
    fn blur_smooths_a_spike() {
        let g = GridSpec::new(5, 5, 1);
        let mut s = vec![0.0f32; g.dim()];
        s[g.index(0, 2, 2)] = 9.0;
        box_blur(&mut s, g);
        assert!((s[g.index(0, 2, 2)] - 1.0).abs() < 1e-6); // 9/9
        assert!(s[g.index(0, 1, 2)] > 0.0);
        assert_eq!(s[g.index(0, 0, 0)], 0.0);
    }

    #[test]
    fn crop_full_scale_is_identity() {
        let g = grid();
        let mut rng = seeded(150);
        let mut s = ramp_sample(g);
        let orig = s.clone();
        crop_resize(&mut s, g, 1.0, &mut rng);
        for (a, b) in s.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn jitter_changes_values_boundedly() {
        let g = grid();
        let mut rng = seeded(151);
        let mut s = vec![1.0f32; g.dim()];
        color_jitter(&mut s, g, 0.2, &mut rng);
        assert!(s.iter().all(|&v| v > 0.5 && v < 1.5));
    }

    #[test]
    fn two_views_differ_but_correlate() {
        let g = grid();
        let mut rng = seeded(152);
        let aug = Augmenter::standard_image(g);
        let batch = Matrix::from_vec(1, g.dim(), ramp_sample(g));
        let (v1, v2) = aug.two_views(&batch, &mut rng);
        assert!(v1.max_abs_diff(&v2) > 1e-3, "views identical");
        // Still correlated with the source (label-preserving).
        let corr = edsr_linalg::stats::cosine_similarity(v1.row(0), batch.row(0));
        assert!(corr > 0.5, "view destroyed content: corr {corr}");
    }

    #[test]
    fn tabular_crop_replaces_from_marginal() {
        let mut rng = seeded(153);
        let reference = Matrix::from_vec(2, 3, vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]);
        let aug = Augmenter::tabular(reference, 1.0);
        let v = aug.view(&[-1.0, -2.0, -3.0], &mut rng);
        // With prob 1 every feature must come from the reference column.
        assert!(v[0] == 10.0 || v[0] == 40.0);
        assert!(v[1] == 20.0 || v[1] == 50.0);
        assert!(v[2] == 30.0 || v[2] == 60.0);
    }

    #[test]
    fn tabular_crop_zero_prob_is_identity() {
        let mut rng = seeded(154);
        let reference = Matrix::zeros(2, 3);
        let aug = Augmenter::tabular(reference, 0.0);
        let v = aug.view(&[1.0, 2.0, 3.0], &mut rng);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn pattern_jitter_stays_in_affine_subspace() {
        // The jittered view differs from the input only within the span
        // of the patterns.
        let mut rng = seeded(156);
        let p1 = vec![1.0f32, 0.0, 0.0, 0.0];
        let p2 = vec![0.0f32, 1.0, 0.0, 0.0];
        let patterns = std::sync::Arc::new(vec![p1, p2]);
        let op = AugOp::PatternJitter {
            patterns,
            scale: 2.0,
        };
        let g = GridSpec::new(2, 2, 1);
        let base = vec![5.0f32, 6.0, 7.0, 8.0];
        let mut v = base.clone();
        op.apply(&mut v, g, &mut rng);
        assert_eq!(v[2], 7.0, "outside-span coordinate changed");
        assert_eq!(v[3], 8.0, "outside-span coordinate changed");
        assert!(
            (v[0] - 5.0).abs() > 1e-4 || (v[1] - 6.0).abs() > 1e-4,
            "no jitter applied"
        );
    }

    #[test]
    fn pattern_jitter_zero_scale_is_identity() {
        let mut rng = seeded(157);
        let patterns = std::sync::Arc::new(vec![vec![1.0f32; 4]]);
        let op = AugOp::PatternJitter {
            patterns,
            scale: 0.0,
        };
        let g = GridSpec::new(2, 2, 1);
        let mut v = vec![1.0f32, 2.0, 3.0, 4.0];
        op.apply(&mut v, g, &mut rng);
        assert_eq!(v, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn standard_image_with_patterns_includes_jitter() {
        let g = GridSpec::new(4, 4, 1);
        let patterns = std::sync::Arc::new(vec![vec![1.0f32; 16]]);
        let aug = Augmenter::standard_image_with_patterns(g, patterns, 1.0);
        match aug {
            Augmenter::Image { ops, .. } => {
                assert!(ops.iter().any(|o| matches!(o, AugOp::PatternJitter { .. })));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn identity_augmenter_copies() {
        let mut rng = seeded(155);
        let aug = Augmenter::Identity;
        let v = aug.view(&[5.0, 6.0], &mut rng);
        assert_eq!(v, vec![5.0, 6.0]);
    }
}
