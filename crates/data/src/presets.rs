//! Benchmark presets mirroring the paper's four image benchmarks at
//! simulation scale (substitution table in DESIGN.md §2).
//!
//! | preset          | paper benchmark | split (paper)     | split (sim)      |
//! |-----------------|-----------------|-------------------|------------------|
//! | `cifar10_sim`   | CIFAR-10        | 5 tasks × 2 cls   | 5 × 2, 100/cls   |
//! | `cifar100_sim`  | CIFAR-100       | 20 tasks × 5 cls  | 20 × 5, 30/cls   |
//! | `tiny_sim`      | Tiny-ImageNet   | 20 tasks × 5 cls  | 20 × 5, 30/cls   |
//! | `domainnet_sim` | DomainNet-real  | 15 tasks × 23 cls | 15 × 8, 25/cls   |
//!
//! Memory budgets scale the paper's 256/640/640/960 by ×1/8 (the same
//! factor as the dataset shrink is impossible to hold exactly; the chosen
//! budgets keep selection non-trivial at simulation scale).

use rand::rngs::StdRng;

use crate::dataset::TaskSequence;
use crate::grid::GridSpec;
use std::sync::Arc;

use crate::augment::Augmenter;
use crate::synth::{make_class_datasets, NuisanceConfig, SynthConfig};
use crate::tasks::split_by_classes;

/// A self-contained description of one image benchmark simulation.
#[derive(Debug, Clone)]
pub struct Preset {
    /// Benchmark name (`cifar10-sim`, …).
    pub name: &'static str,
    /// Sample geometry.
    pub grid: GridSpec,
    /// Class-manifold generator parameters.
    pub synth: SynthConfig,
    /// Total number of classes.
    pub num_classes: usize,
    /// Classes per increment.
    pub classes_per_task: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Total memory budget across the whole stream (paper Table III note).
    pub memory_total: usize,
    /// Number of neighbours for the replay-noise magnitude `r(x)` (paper
    /// §IV-A5: 100 for CIFAR-10, 10 elsewhere — scaled).
    pub noise_neighbors: usize,
    /// Per-increment domain-style strength (see
    /// [`crate::synth::apply_style`]): makes consecutive increments
    /// interfere so forgetting is observable at simulation scale.
    pub style_strength: f32,
}

impl Preset {
    /// Number of increments.
    pub fn num_tasks(&self) -> usize {
        self.num_classes / self.classes_per_task
    }

    /// Per-increment selection budget `s` (total split evenly, as in the
    /// paper's Fig. 7 description: "32 samples are stored for each data
    /// subset, thus 640 for the original split").
    pub fn per_task_budget(&self) -> usize {
        (self.memory_total / self.num_tasks()).max(1)
    }

    /// Materializes the task sequence and its matching augmenters (one
    /// per increment, sharing the benchmark's nuisance pattern world).
    pub fn build_with_augmenters(&self, rng: &mut StdRng) -> (TaskSequence, Vec<Augmenter>) {
        let (train, test, world) = make_class_datasets(
            self.name,
            self.num_classes,
            self.train_per_class,
            self.test_per_class,
            self.grid,
            &self.synth,
            rng,
        );
        let mut seq = split_by_classes(self.name, &train, &test, self.classes_per_task, true, rng);
        if self.style_strength > 0.0 {
            for task in &mut seq.tasks {
                let style = crate::synth::smooth_pattern(self.grid, self.synth.coarse_factor, rng);
                crate::synth::apply_style(&mut task.train, &style, self.style_strength);
                crate::synth::apply_style(&mut task.test, &style, self.style_strength);
            }
        }
        let patterns = Arc::new(world.patterns);
        let augmenters = (0..seq.len())
            .map(|_| {
                Augmenter::standard_image_with_patterns(
                    self.grid,
                    Arc::clone(&patterns),
                    self.synth.nuisance.pattern_scale,
                )
            })
            .collect();
        (seq, augmenters)
    }

    /// Materializes only the task sequence (tests / quick checks).
    pub fn build(&self, rng: &mut StdRng) -> TaskSequence {
        self.build_with_augmenters(rng).0
    }

    /// Same benchmark resplit into different task granularity (Fig. 7).
    pub fn with_classes_per_task(&self, classes_per_task: usize) -> Preset {
        let mut p = self.clone();
        p.classes_per_task = classes_per_task;
        p
    }

    /// Same benchmark with a different total memory budget (Fig. 8).
    pub fn with_memory_total(&self, memory_total: usize) -> Preset {
        let mut p = self.clone();
        p.memory_total = memory_total;
        p
    }
}

/// CIFAR-10 analogue: 5 increments × 2 classes, easiest generator.
pub fn cifar10_sim() -> Preset {
    Preset {
        name: "cifar10-sim",
        grid: GridSpec::new(8, 8, 3),
        synth: SynthConfig {
            n_latent: 4,
            center_scale: 0.80,
            manifold_scale: 0.18,
            noise_scale: 0.10,
            coarse_factor: 2,
            nuisance: NuisanceConfig {
                n_patterns: 4,
                pattern_scale: 0.8,
                gain: 0.15,
                flip: true,
                shift: 1,
            },
        },
        num_classes: 10,
        classes_per_task: 2,
        train_per_class: 100,
        test_per_class: 20,
        memory_total: 30,
        noise_neighbors: 20,
        style_strength: 0.6,
    }
}

/// CIFAR-100 analogue: 20 increments × 5 classes, smaller per-class data.
pub fn cifar100_sim() -> Preset {
    Preset {
        name: "cifar100-sim",
        grid: GridSpec::new(8, 8, 3),
        synth: SynthConfig {
            n_latent: 4,
            center_scale: 0.5,
            manifold_scale: 0.20,
            noise_scale: 0.12,
            coarse_factor: 2,
            nuisance: NuisanceConfig {
                n_patterns: 4,
                pattern_scale: 0.8,
                gain: 0.15,
                flip: true,
                shift: 1,
            },
        },
        num_classes: 100,
        classes_per_task: 5,
        train_per_class: 30,
        test_per_class: 6,
        memory_total: 80,
        noise_neighbors: 5,
        style_strength: 0.6,
    }
}

/// Tiny-ImageNet analogue: 20 × 5 at higher input resolution/difficulty.
pub fn tiny_imagenet_sim() -> Preset {
    Preset {
        name: "tiny-imagenet-sim",
        grid: GridSpec::new(10, 10, 3),
        synth: SynthConfig {
            n_latent: 5,
            center_scale: 0.50,
            manifold_scale: 0.22,
            noise_scale: 0.14,
            coarse_factor: 2,
            nuisance: NuisanceConfig {
                n_patterns: 4,
                pattern_scale: 0.8,
                gain: 0.15,
                flip: true,
                shift: 1,
            },
        },
        num_classes: 100,
        classes_per_task: 5,
        train_per_class: 30,
        test_per_class: 6,
        memory_total: 80,
        noise_neighbors: 5,
        style_strength: 0.7,
    }
}

/// DomainNet-real analogue: 15 increments of 8 classes (scaled from 23),
/// hardest generator.
pub fn domainnet_sim() -> Preset {
    Preset {
        name: "domainnet-sim",
        grid: GridSpec::new(10, 10, 3),
        synth: SynthConfig {
            n_latent: 5,
            center_scale: 0.60,
            manifold_scale: 0.22,
            noise_scale: 0.12,
            coarse_factor: 3,
            nuisance: NuisanceConfig {
                n_patterns: 4,
                pattern_scale: 0.8,
                gain: 0.15,
                flip: true,
                shift: 1,
            },
        },
        num_classes: 120,
        classes_per_task: 8,
        train_per_class: 25,
        test_per_class: 6,
        memory_total: 120,
        noise_neighbors: 5,
        style_strength: 0.8,
    }
}

/// A deliberately tiny preset for unit/integration tests (seconds, not
/// minutes, in debug builds).
pub fn test_sim() -> Preset {
    Preset {
        name: "test-sim",
        grid: GridSpec::new(4, 4, 1),
        synth: SynthConfig::default(),
        num_classes: 6,
        classes_per_task: 2,
        train_per_class: 20,
        test_per_class: 6,
        memory_total: 12,
        noise_neighbors: 4,
        style_strength: 0.6,
    }
}

/// All four paper-benchmark presets in Table III order.
pub fn all_image_presets() -> Vec<Preset> {
    vec![
        cifar10_sim(),
        cifar100_sim(),
        tiny_imagenet_sim(),
        domainnet_sim(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::rng::seeded;

    #[test]
    fn task_counts_match_paper_structure() {
        assert_eq!(cifar10_sim().num_tasks(), 5);
        assert_eq!(cifar100_sim().num_tasks(), 20);
        assert_eq!(tiny_imagenet_sim().num_tasks(), 20);
        assert_eq!(domainnet_sim().num_tasks(), 15);
    }

    #[test]
    fn build_produces_consistent_sequence() {
        let mut rng = seeded(190);
        let p = test_sim();
        let seq = p.build(&mut rng);
        assert_eq!(seq.len(), 3);
        for t in &seq.tasks {
            assert_eq!(t.train.len(), 40);
            assert_eq!(t.test.len(), 12);
            assert_eq!(t.train.dim(), 16);
        }
    }

    #[test]
    fn per_task_budget_divides_total() {
        let p = cifar100_sim();
        assert_eq!(p.per_task_budget(), 4);
        let p10 = cifar10_sim();
        assert_eq!(p10.per_task_budget(), 6);
    }

    #[test]
    fn resplit_changes_granularity() {
        let p = cifar100_sim().with_classes_per_task(10);
        assert_eq!(p.num_tasks(), 10);
        let mut rng = seeded(191);
        // Use a shrunken version for speed.
        let mut small = p;
        small.num_classes = 20;
        small.train_per_class = 5;
        small.test_per_class = 2;
        let seq = small.build(&mut rng);
        assert_eq!(seq.len(), 2);
    }

    #[test]
    fn memory_override() {
        let p = cifar100_sim().with_memory_total(640);
        assert_eq!(p.memory_total, 640);
        assert_eq!(p.per_task_budget(), 32);
    }

    #[test]
    fn build_with_augmenters_couples_pattern_world() {
        let mut rng = seeded(192);
        let preset = test_sim();
        let (seq, augs) = preset.build_with_augmenters(&mut rng);
        assert_eq!(augs.len(), seq.len());
        // All augmenters share the same Arc'd pattern set with the right
        // count (channels + n_patterns) and matching dimensionality.
        for a in &augs {
            match a {
                crate::augment::Augmenter::Image { ops, .. } => {
                    let jitter = ops.iter().find_map(|o| match o {
                        crate::augment::AugOp::PatternJitter { patterns, scale } => {
                            Some((patterns.clone(), *scale))
                        }
                        _ => None,
                    });
                    let (patterns, scale) = jitter.expect("jitter present");
                    assert_eq!(
                        patterns.len(),
                        preset.grid.channels + preset.synth.nuisance.n_patterns
                    );
                    assert!(patterns.iter().all(|p| p.len() == preset.grid.dim()));
                    assert_eq!(scale, preset.synth.nuisance.pattern_scale);
                }
                other => panic!("unexpected augmenter {other:?}"),
            }
        }
    }

    #[test]
    fn presets_are_distinct_difficulties() {
        let easy = cifar10_sim().synth;
        let hard = domainnet_sim().synth;
        assert!(hard.noise_scale > easy.noise_scale);
        assert!(hard.manifold_scale > easy.manifold_scale);
    }
}
