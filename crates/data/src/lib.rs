//! # edsr-data
//!
//! Data substrate for the EDSR reproduction: synthetic class-manifold
//! image analogues of the paper's four vision benchmarks, synthetic
//! tabular analogues of its five Table-II datasets, class-incremental task
//! splitting, stochastic augmentation pipelines (the paper's image ops and
//! SCARF's `tabularCrop`), and minibatch iteration.
//!
//! Labels exist solely for the kNN evaluation protocol; no training path
//! reads them.

pub mod augment;
pub mod batch;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod grid;
pub mod presets;
pub mod scenarios;
pub mod shard;
pub mod source;
pub mod stream;
pub mod synth;
pub mod tabular;
pub mod tasks;

pub use augment::{AugOp, Augmenter};
pub use batch::BatchIter;
pub use csv::{read_csv, write_csv, CsvError};
pub use dataset::{Dataset, Task, TaskSequence};
pub use error::DataError;
pub use grid::{render_ascii, GridSpec};
pub use presets::{
    all_image_presets, cifar100_sim, cifar10_sim, domainnet_sim, test_sim, tiny_imagenet_sim,
    Preset,
};
pub use scenarios::{build_scenario, write_scenario, ScenarioData, SCENARIO_NAMES};
pub use shard::{read_manifest, read_task_shard, write_shard_dir, write_task_shard, ShardManifest};
pub use source::{materialize, TaskSource};
pub use stream::ShardStream;
pub use synth::{make_class_datasets, ClassModel, SynthConfig};
pub use tabular::{generate_tabular, tabular_sequence, TabularConfig, TabularSpec, TABULAR_SPECS};
pub use tasks::split_by_classes;
