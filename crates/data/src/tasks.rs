//! Class-incremental task construction (paper §IV-A2).
//!
//! A benchmark's classes are partitioned into consecutive groups of
//! `classes_per_task`; each group forms one increment with its train and
//! test rows. Fig. 7's alternate splits reuse the same function with a
//! different group size.

use rand::rngs::StdRng;

use crate::dataset::{Dataset, Task, TaskSequence};

/// Splits paired train/test datasets into a class-incremental sequence.
///
/// When `shuffle_classes` is set, class order is randomized first (the
/// common benchmark practice across seeds).
///
/// # Panics
/// Panics if `classes_per_task` is zero or does not divide the class count.
pub fn split_by_classes(
    name: &str,
    train: &Dataset,
    test: &Dataset,
    classes_per_task: usize,
    shuffle_classes: bool,
    rng: &mut StdRng,
) -> TaskSequence {
    assert!(
        classes_per_task > 0,
        "split_by_classes: classes_per_task must be positive"
    );
    let mut classes = train.classes();
    assert_eq!(
        classes,
        test.classes(),
        "split_by_classes: train/test class sets differ"
    );
    assert_eq!(
        classes.len() % classes_per_task,
        0,
        "split_by_classes: {} classes not divisible by {classes_per_task}",
        classes.len()
    );
    if shuffle_classes {
        edsr_tensor::rng::shuffle(rng, &mut classes);
    }

    let tasks = classes
        .chunks(classes_per_task)
        .map(|group| Task {
            train: train.filter_classes(group),
            test: test.filter_classes(group),
            classes: group.to_vec(),
        })
        .collect();
    TaskSequence {
        name: name.into(),
        tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::rng::seeded;
    use edsr_tensor::Matrix;

    fn datasets(num_classes: usize, per_class: usize) -> (Dataset, Dataset) {
        let n = num_classes * per_class;
        let inputs = Matrix::from_vec(n, 2, (0..n * 2).map(|i| i as f32).collect());
        let labels: Vec<usize> = (0..n).map(|i| i / per_class).collect();
        let train = Dataset::new("train", inputs.clone(), labels.clone());
        let test = Dataset::new("test", inputs, labels);
        (train, test)
    }

    #[test]
    fn splits_into_expected_task_count() {
        let (train, test) = datasets(10, 4);
        let mut rng = seeded(170);
        let seq = split_by_classes("b", &train, &test, 2, false, &mut rng);
        assert_eq!(seq.len(), 5);
        for t in &seq.tasks {
            assert_eq!(t.classes.len(), 2);
            assert_eq!(t.train.len(), 8);
        }
    }

    #[test]
    fn tasks_partition_all_samples() {
        let (train, test) = datasets(6, 3);
        let mut rng = seeded(171);
        let seq = split_by_classes("b", &train, &test, 3, true, &mut rng);
        let total: usize = seq.tasks.iter().map(|t| t.train.len()).sum();
        assert_eq!(total, train.len());
        // Classes across tasks are disjoint and cover everything.
        let mut all: Vec<usize> = seq.tasks.iter().flat_map(|t| t.classes.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn shuffle_changes_order_deterministically() {
        let (train, test) = datasets(8, 2);
        let mut r1 = seeded(172);
        let mut r2 = seeded(172);
        let a = split_by_classes("b", &train, &test, 2, true, &mut r1);
        let b = split_by_classes("b", &train, &test, 2, true, &mut r2);
        let ca: Vec<_> = a.tasks.iter().map(|t| t.classes.clone()).collect();
        let cb: Vec<_> = b.tasks.iter().map(|t| t.classes.clone()).collect();
        assert_eq!(ca, cb, "same seed must give same split");
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_split_panics() {
        let (train, test) = datasets(5, 2);
        let mut rng = seeded(173);
        let _ = split_by_classes("b", &train, &test, 2, false, &mut rng);
    }

    #[test]
    fn task_labels_match_declared_classes() {
        let (train, test) = datasets(4, 5);
        let mut rng = seeded(174);
        let seq = split_by_classes("b", &train, &test, 2, true, &mut rng);
        for t in &seq.tasks {
            for &l in &t.train.labels {
                assert!(t.classes.contains(&l));
            }
            for &l in &t.test.labels {
                assert!(t.classes.contains(&l));
            }
        }
    }
}
