//! Synthetic tabular datasets mirroring the paper's five Table-II corpora.
//!
//! Each real dataset (Bank, Shoppers, Income, BlastChar, Shrutime) is
//! replaced by a generator matched on its published *shape*: input
//! dimensionality, relative size (scaled down by a common factor), and
//! positive-class ratio. Samples are binary-labeled Gaussians whose class
//! means differ along a dataset-specific random direction, with a few
//! "categorical-like" quantized features — the structure SCARF-style
//! corruption and kNN evaluation interact with.

// Multi-array parallel indexing is clearer with explicit loops here.
#![allow(clippy::needless_range_loop)]

use edsr_tensor::rng::gaussian;
use edsr_tensor::Matrix;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::dataset::{Dataset, Task, TaskSequence};

/// Shape card for one tabular dataset (mirrors Table II).
#[derive(Debug, Clone)]
pub struct TabularSpec {
    /// Dataset name.
    pub name: &'static str,
    /// Full-size row count from the paper.
    pub paper_size: usize,
    /// Input dimensionality.
    pub input_dim: usize,
    /// Positive-class ratio from the paper.
    pub positive_ratio: f32,
}

/// The five Table-II datasets.
pub const TABULAR_SPECS: [TabularSpec; 5] = [
    TabularSpec {
        name: "bank",
        paper_size: 45_211,
        input_dim: 16,
        positive_ratio: 0.1170,
    },
    TabularSpec {
        name: "shoppers",
        paper_size: 12_330,
        input_dim: 17,
        positive_ratio: 0.1547,
    },
    TabularSpec {
        name: "income",
        paper_size: 32_561,
        input_dim: 14,
        positive_ratio: 0.2408,
    },
    TabularSpec {
        name: "blastchar",
        paper_size: 7_043,
        input_dim: 20,
        positive_ratio: 0.2654,
    },
    TabularSpec {
        name: "shrutime",
        paper_size: 10_000,
        input_dim: 10,
        positive_ratio: 0.2037,
    },
];

/// Controls generation difficulty.
#[derive(Debug, Clone, Copy)]
pub struct TabularConfig {
    /// Divide each paper size by this factor for the simulation.
    pub size_divisor: usize,
    /// Separation between class means along the class direction.
    pub class_separation: f32,
    /// Isotropic noise scale.
    pub noise_scale: f32,
    /// Fraction of features quantized to few levels (categorical-like).
    pub categorical_fraction: f32,
}

impl Default for TabularConfig {
    fn default() -> Self {
        Self {
            size_divisor: 60,
            class_separation: 2.2,
            noise_scale: 1.0,
            categorical_fraction: 0.3,
        }
    }
}

/// Generates one dataset from a spec; labels are 0 (negative) / 1
/// (positive) with the spec's imbalance.
pub fn generate_tabular(spec: &TabularSpec, cfg: &TabularConfig, rng: &mut StdRng) -> Dataset {
    let n = (spec.paper_size / cfg.size_divisor).max(40);
    let d = spec.input_dim;

    // Class direction and a per-dataset random linear mixing.
    let mut direction: Vec<f32> = (0..d).map(|_| gaussian(rng)).collect();
    let norm = direction
        .iter()
        .map(|v| v * v)
        .sum::<f32>()
        .sqrt()
        .max(1e-9);
    direction.iter_mut().for_each(|v| *v /= norm);
    let n_categorical = ((d as f32 * cfg.categorical_fraction) as usize).min(d);

    let mut inputs = Matrix::zeros(n, d);
    let mut labels = Vec::with_capacity(n);
    for r in 0..n {
        let positive = rng.random::<f32>() < spec.positive_ratio;
        let sign = if positive { 0.5 } else { -0.5 };
        for c in 0..d {
            let mut v =
                gaussian(rng) * cfg.noise_scale + sign * cfg.class_separation * direction[c];
            if c < n_categorical {
                // Quantize to 4 levels, mimicking one-hot/ordinal columns.
                v = (v * 1.5).round().clamp(-2.0, 2.0) / 1.5;
            }
            inputs.set(r, c, v);
        }
        labels.push(positive as usize);
    }
    Dataset::new(spec.name, inputs, labels)
}

/// Splits one dataset into train/test with the paper's 80/20 rule.
pub fn train_test_split(
    data: &Dataset,
    test_fraction: f32,
    rng: &mut StdRng,
) -> (Dataset, Dataset) {
    let n = data.len();
    let mut idx: Vec<usize> = (0..n).collect();
    edsr_tensor::rng::shuffle(rng, &mut idx);
    let n_test = ((n as f32 * test_fraction) as usize).clamp(1, n - 1);
    let (test_idx, train_idx) = idx.split_at(n_test);
    (data.subset(train_idx), data.subset(test_idx))
}

/// Builds the 5-increment tabular continual stream of §IV-E.
///
/// Note the increments have *heterogeneous input dimensionality*, which
/// the encoder handles with data-specific input adapters (paper: "the
/// first layer of f(·) is data-specific").
pub fn tabular_sequence(cfg: &TabularConfig, rng: &mut StdRng) -> TaskSequence {
    let tasks = TABULAR_SPECS
        .iter()
        .map(|spec| {
            let data = generate_tabular(spec, cfg, rng);
            let (train, test) = train_test_split(&data, 0.2, rng);
            Task {
                classes: vec![0, 1],
                train,
                test,
            }
        })
        .collect();
    TaskSequence {
        name: "tabular-sim".into(),
        tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::rng::seeded;

    #[test]
    fn specs_match_table_ii() {
        assert_eq!(TABULAR_SPECS.len(), 5);
        let bank = &TABULAR_SPECS[0];
        assert_eq!(bank.input_dim, 16);
        assert!((bank.positive_ratio - 0.117).abs() < 1e-4);
        let shrutime = &TABULAR_SPECS[4];
        assert_eq!(shrutime.input_dim, 10);
    }

    #[test]
    fn generated_shape_and_imbalance() {
        let mut rng = seeded(160);
        let cfg = TabularConfig {
            size_divisor: 10,
            ..Default::default()
        };
        let d = generate_tabular(&TABULAR_SPECS[0], &cfg, &mut rng);
        assert_eq!(d.dim(), 16);
        assert_eq!(d.len(), 4521);
        let pos = d.labels.iter().filter(|&&l| l == 1).count() as f32 / d.len() as f32;
        assert!((pos - 0.117).abs() < 0.03, "positive ratio {pos}");
    }

    #[test]
    fn classes_linearly_separated_in_expectation() {
        let mut rng = seeded(161);
        let cfg = TabularConfig {
            size_divisor: 20,
            ..Default::default()
        };
        let d = generate_tabular(&TABULAR_SPECS[2], &cfg, &mut rng);
        // Mean difference between classes should be sizable in norm.
        let mut pos_mean = vec![0.0f32; d.dim()];
        let mut neg_mean = vec![0.0f32; d.dim()];
        let (mut np, mut nn) = (0, 0);
        for i in 0..d.len() {
            let row = d.inputs.row(i);
            if d.labels[i] == 1 {
                np += 1;
                pos_mean.iter_mut().zip(row).for_each(|(m, &v)| *m += v);
            } else {
                nn += 1;
                neg_mean.iter_mut().zip(row).for_each(|(m, &v)| *m += v);
            }
        }
        pos_mean.iter_mut().for_each(|m| *m /= np as f32);
        neg_mean.iter_mut().for_each(|m| *m /= nn as f32);
        let gap: f32 = pos_mean
            .iter()
            .zip(&neg_mean)
            .map(|(&p, &n)| (p - n) * (p - n))
            .sum::<f32>()
            .sqrt();
        assert!(gap > 1.0, "class gap {gap}");
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let mut rng = seeded(162);
        let cfg = TabularConfig::default();
        let d = generate_tabular(&TABULAR_SPECS[4], &cfg, &mut rng);
        let (train, test) = train_test_split(&d, 0.2, &mut rng);
        assert_eq!(train.len() + test.len(), d.len());
        let expected_test = (d.len() as f32 * 0.2) as usize;
        assert!(test.len().abs_diff(expected_test) <= 1);
    }

    #[test]
    fn sequence_has_five_heterogeneous_increments() {
        let mut rng = seeded(163);
        let seq = tabular_sequence(&TabularConfig::default(), &mut rng);
        assert_eq!(seq.len(), 5);
        let dims: Vec<usize> = seq.tasks.iter().map(|t| t.train.dim()).collect();
        assert_eq!(dims, vec![16, 17, 14, 20, 10]);
        assert!(seq
            .tasks
            .iter()
            .all(|t| !t.train.is_empty() && !t.test.is_empty()));
    }

    #[test]
    fn categorical_features_are_quantized() {
        let mut rng = seeded(164);
        let cfg = TabularConfig::default();
        let d = generate_tabular(&TABULAR_SPECS[0], &cfg, &mut rng);
        // First feature is categorical-like: few distinct values.
        let mut vals: Vec<i32> = (0..d.len())
            .map(|r| (d.inputs.get(r, 0) * 1.5).round() as i32)
            .collect();
        vals.sort_unstable();
        vals.dedup();
        assert!(vals.len() <= 5, "too many levels: {}", vals.len());
    }
}
