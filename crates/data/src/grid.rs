//! Spatial grid geometry for the synthetic image-like data.
//!
//! Samples are flattened `height x width x channels` grids (channel-major:
//! all of channel 0's pixels, then channel 1's, …), small stand-ins for the
//! paper's 32×32 / 64×64 images. The geometry type lets augmentations
//! (crop, flip, blur) act spatially rather than on an opaque vector.

/// Shape of a flattened image-like sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSpec {
    /// Rows of the spatial grid.
    pub height: usize,
    /// Columns of the spatial grid.
    pub width: usize,
    /// Number of channels.
    pub channels: usize,
}

impl GridSpec {
    /// Creates a spec.
    ///
    /// # Panics
    /// Panics on any zero dimension.
    pub fn new(height: usize, width: usize, channels: usize) -> Self {
        assert!(
            height > 0 && width > 0 && channels > 0,
            "GridSpec: zero dimension"
        );
        Self {
            height,
            width,
            channels,
        }
    }

    /// Flattened dimensionality.
    pub fn dim(&self) -> usize {
        self.height * self.width * self.channels
    }

    /// Flat index of `(channel, row, col)`.
    #[inline]
    pub fn index(&self, channel: usize, row: usize, col: usize) -> usize {
        debug_assert!(channel < self.channels && row < self.height && col < self.width);
        channel * self.height * self.width + row * self.width + col
    }

    /// Bilinear sample at fractional coordinates `(y, x)` within a channel
    /// plane of `data` (clamped to borders).
    pub fn bilinear(&self, data: &[f32], channel: usize, y: f32, x: f32) -> f32 {
        let y = y.clamp(0.0, (self.height - 1) as f32);
        let x = x.clamp(0.0, (self.width - 1) as f32);
        let y0 = y.floor() as usize;
        let x0 = x.floor() as usize;
        let y1 = (y0 + 1).min(self.height - 1);
        let x1 = (x0 + 1).min(self.width - 1);
        let fy = y - y0 as f32;
        let fx = x - x0 as f32;
        let v00 = data[self.index(channel, y0, x0)];
        let v01 = data[self.index(channel, y0, x1)];
        let v10 = data[self.index(channel, y1, x0)];
        let v11 = data[self.index(channel, y1, x1)];
        v00 * (1.0 - fy) * (1.0 - fx)
            + v01 * (1.0 - fy) * fx
            + v10 * fy * (1.0 - fx)
            + v11 * fy * fx
    }
}

/// Renders one flattened sample as ASCII art (one block per channel,
/// intensity mapped to ` .:-=+*#%@`) — handy for eyeballing synthetic
/// samples and augmentation effects in examples and debugging sessions.
pub fn render_ascii(sample: &[f32], grid: GridSpec) -> String {
    assert_eq!(
        sample.len(),
        grid.dim(),
        "render_ascii: sample/grid mismatch"
    );
    const RAMP: &[u8] = b" .:-=+*#%@";
    let lo = sample.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = sample.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let span = (hi - lo).max(1e-9);
    let mut out = String::new();
    for c in 0..grid.channels {
        out.push_str(&format!("channel {c}:\n"));
        for r in 0..grid.height {
            for col in 0..grid.width {
                let v = (sample[grid.index(c, r, col)] - lo) / span;
                let idx = ((v * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_and_index() {
        let g = GridSpec::new(4, 3, 2);
        assert_eq!(g.dim(), 24);
        assert_eq!(g.index(0, 0, 0), 0);
        assert_eq!(g.index(0, 1, 0), 3);
        assert_eq!(g.index(1, 0, 0), 12);
        assert_eq!(g.index(1, 3, 2), 23);
    }

    #[test]
    fn bilinear_at_grid_points_is_exact() {
        let g = GridSpec::new(2, 2, 1);
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(g.bilinear(&data, 0, 0.0, 0.0), 1.0);
        assert_eq!(g.bilinear(&data, 0, 0.0, 1.0), 2.0);
        assert_eq!(g.bilinear(&data, 0, 1.0, 0.0), 3.0);
        assert_eq!(g.bilinear(&data, 0, 1.0, 1.0), 4.0);
    }

    #[test]
    fn bilinear_midpoint_averages() {
        let g = GridSpec::new(2, 2, 1);
        let data = [0.0, 2.0, 4.0, 6.0];
        assert_eq!(g.bilinear(&data, 0, 0.5, 0.5), 3.0);
    }

    #[test]
    fn bilinear_clamps_out_of_range() {
        let g = GridSpec::new(2, 2, 1);
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(g.bilinear(&data, 0, -5.0, -5.0), 1.0);
        assert_eq!(g.bilinear(&data, 0, 99.0, 99.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "zero dimension")]
    fn zero_dim_panics() {
        let _ = GridSpec::new(0, 4, 1);
    }

    #[test]
    fn ascii_render_shape_and_extremes() {
        let g = GridSpec::new(2, 3, 1);
        let sample = [0.0, 0.5, 1.0, 1.0, 0.5, 0.0];
        let art = render_ascii(&sample, g);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 rows
        assert_eq!(lines[1].len(), 3);
        assert!(lines[1].starts_with(' '), "min maps to lightest glyph");
        assert!(lines[1].ends_with('@'), "max maps to darkest glyph");
    }

    #[test]
    fn ascii_render_constant_sample_is_uniform() {
        let g = GridSpec::new(2, 2, 1);
        let art = render_ascii(&[3.0; 4], g);
        let body: String = art.lines().skip(1).collect();
        let first = body.chars().next().unwrap();
        assert!(body.chars().all(|ch| ch == first));
    }
}
