//! Shuffled minibatch iteration.

use edsr_tensor::rng::shuffle;
use rand::rngs::StdRng;

/// Yields shuffled index batches covering `0..n` once per epoch.
///
/// The final batch may be smaller than `batch_size` (no drop-last — at
/// simulation scale every sample counts).
#[derive(Debug)]
pub struct BatchIter {
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl BatchIter {
    /// Creates a one-epoch iterator over `n` samples.
    ///
    /// # Panics
    /// Panics if `batch_size == 0`.
    pub fn new(n: usize, batch_size: usize, rng: &mut StdRng) -> Self {
        assert!(batch_size > 0, "BatchIter: batch_size must be positive");
        let mut order: Vec<usize> = (0..n).collect();
        shuffle(rng, &mut order);
        Self {
            order,
            batch_size,
            cursor: 0,
        }
    }

    /// Number of batches this epoch will yield.
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }
}

impl Iterator for BatchIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let batch = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::rng::seeded;

    #[test]
    fn covers_all_indices_once() {
        let mut rng = seeded(180);
        let mut seen = [0usize; 23];
        for batch in BatchIter::new(23, 5, &mut rng) {
            for i in batch {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn batch_sizes() {
        let mut rng = seeded(181);
        let it = BatchIter::new(10, 4, &mut rng);
        assert_eq!(it.num_batches(), 3);
        let sizes: Vec<usize> = it.map(|b| b.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn empty_input_yields_nothing() {
        let mut rng = seeded(182);
        assert_eq!(BatchIter::new(0, 4, &mut rng).count(), 0);
    }

    #[test]
    fn different_epochs_shuffle_differently() {
        let mut rng = seeded(183);
        let a: Vec<Vec<usize>> = BatchIter::new(20, 20, &mut rng).collect();
        let b: Vec<Vec<usize>> = BatchIter::new(20, 20, &mut rng).collect();
        assert_ne!(a, b, "two epochs produced identical order");
    }
}
