//! Out-of-core task streaming: [`ShardStream`] yields increments from an
//! `EDSRDS01` shard directory while keeping **at most two shards
//! resident** — the one being consumed plus the one the background
//! prefetcher is loading ahead.
//!
//! ## Prefetch protocol
//!
//! `fetch(i)` resolves in one of three ways:
//!
//! 1. `i` is already resident → returned for free;
//! 2. `i` is the in-flight prefetch → join the loader thread (a
//!    *prefetch hit*: decode overlapped with the caller's compute);
//! 3. otherwise → a synchronous load on the caller's thread (a *miss*;
//!    only cold starts and the evaluation look-back pay this).
//!
//! Whichever way the shard arrived, the previous resident is dropped and
//! a new prefetch for `i + 1` is launched before `fetch` returns, so the
//! loader is always exactly one shard ahead of a sequential consumer.
//! The in-shard f32 decode itself is chunked over `edsr-par`.
//!
//! ## Guarantees
//!
//! - **Bit identity**: shards store raw f32 bit patterns and the decode
//!   is element-wise, so the streamed samples — and any training run
//!   over them — are bit-identical to the in-RAM sequence the shards
//!   were written from, at any thread count.
//! - **Bounded residency**: at every point at most two decoded shards
//!   exist (asserted by [`ShardStream::resident_peak`]; exported as the
//!   `stream/resident` gauge when observability is on).
//! - **Loud failure**: a truncated or corrupt shard surfaces as a
//!   structured [`DataError`] from `fetch` — never as partial samples.

use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

use crate::dataset::Task;
use crate::error::DataError;
use crate::shard::{read_manifest, read_task_shard, ShardManifest};
use crate::source::TaskSource;

/// An in-flight background shard load.
struct Prefetch {
    idx: usize,
    handle: JoinHandle<Result<Task, DataError>>,
}

/// A prefetching, double-buffered loader over a shard directory.
pub struct ShardStream {
    dir: PathBuf,
    manifest: ShardManifest,
    /// The shard the consumer is (or was last) reading.
    resident: Option<(usize, Task)>,
    /// The shard the background loader is one step ahead on.
    prefetch: Option<Prefetch>,
    resident_peak: usize,
    sync_loads: u64,
    prefetch_hits: u64,
    prefetch_wasted: u64,
}

impl ShardStream {
    /// Opens a shard directory by validating its manifest. No shard is
    /// touched until the first [`fetch`](TaskSource::fetch).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, DataError> {
        let dir = dir.as_ref().to_path_buf();
        let manifest = read_manifest(&dir)?;
        Ok(Self {
            dir,
            manifest,
            resident: None,
            prefetch: None,
            resident_peak: 0,
            sync_loads: 0,
            prefetch_hits: 0,
            prefetch_wasted: 0,
        })
    }

    /// The stream's manifest (lengths and classes per increment without
    /// loading any shard).
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// High-water mark of simultaneously resident shards. The loader's
    /// contract is that this never exceeds 2, however long the stream.
    pub fn resident_peak(&self) -> usize {
        self.resident_peak
    }

    /// Synchronous (non-overlapped) shard loads so far.
    pub fn sync_loads(&self) -> u64 {
        self.sync_loads
    }

    /// Fetches answered by the background prefetcher.
    pub fn prefetch_hits(&self) -> u64 {
        self.prefetch_hits
    }

    /// Prefetched shards discarded because the consumer went elsewhere
    /// (the evaluation look-back causes a bounded number of these).
    pub fn prefetch_wasted(&self) -> u64 {
        self.prefetch_wasted
    }

    /// Shards currently decoded in memory (resident + prefetch slot; an
    /// in-flight prefetch counts as resident because its decode may have
    /// completed on the loader thread).
    fn resident_now(&self) -> usize {
        usize::from(self.resident.is_some()) + usize::from(self.prefetch.is_some())
    }

    fn note_residency(&mut self) {
        let now = self.resident_now();
        if now > self.resident_peak {
            self.resident_peak = now;
        }
        if edsr_obs::enabled() {
            edsr_obs::gauge("stream/resident", now as f64);
        }
    }

    /// Joins the prefetch slot and returns its result; a panicked loader
    /// thread becomes a structured error, not a poisoned stream.
    fn join_prefetch(p: Prefetch) -> Result<Task, DataError> {
        p.handle
            .join()
            .unwrap_or_else(|_| Err(DataError::Prefetch("loader thread panicked".into())))
    }

    /// Starts a background load of `idx` unless one is already in
    /// flight. A stale in-flight prefetch for a different shard is
    /// joined and discarded first, keeping residency within budget.
    fn ensure_prefetch(&mut self, idx: usize) {
        if idx >= self.manifest.shards.len() {
            return;
        }
        if let Some(p) = &self.prefetch {
            if p.idx == idx {
                return;
            }
            let stale = self.prefetch.take().expect("checked above");
            // The result is dropped either way; a failing shard will
            // resurface as a structured error if it is ever fetched.
            let _ = Self::join_prefetch(stale);
            self.prefetch_wasted += 1;
        }
        let path = self.manifest.shard_path(&self.dir, idx);
        // Spawn failure (fd/thread exhaustion) is not an error: the
        // fetch path falls back to a synchronous load.
        if let Ok(handle) = std::thread::Builder::new()
            .name(format!("edsr-prefetch-{idx}"))
            .spawn(move || read_task_shard(&path))
        {
            self.prefetch = Some(Prefetch { idx, handle });
            self.note_residency();
        }
    }

    /// Obtains shard `idx`: from the prefetch slot when it matches,
    /// synchronously otherwise.
    fn acquire(&mut self, idx: usize) -> Result<Task, DataError> {
        if self.prefetch.as_ref().is_some_and(|p| p.idx == idx) {
            let p = self.prefetch.take().expect("checked above");
            let task = Self::join_prefetch(p)?;
            self.prefetch_hits += 1;
            if edsr_obs::enabled() {
                edsr_obs::counter_at("stream/prefetch_hit", idx as u64, 1);
            }
            return Ok(task);
        }
        self.sync_loads += 1;
        if edsr_obs::enabled() {
            edsr_obs::counter_at("stream/sync_load", idx as u64, 1);
        }
        read_task_shard(&self.manifest.shard_path(&self.dir, idx))
    }
}

impl TaskSource for ShardStream {
    fn name(&self) -> &str {
        &self.manifest.name
    }

    fn len(&self) -> usize {
        self.manifest.shards.len()
    }

    fn dim(&self) -> usize {
        self.manifest.dim
    }

    fn fetch(&mut self, idx: usize) -> Result<&Task, DataError> {
        let len = self.manifest.shards.len();
        if idx >= len {
            return Err(DataError::OutOfRange { index: idx, len });
        }
        if self.resident.as_ref().map(|(i, _)| *i) != Some(idx) {
            // Drop the previous resident *before* acquiring, so the
            // acquisition (which may join a decoded prefetch) never
            // holds three shards at once.
            self.resident = None;
            let task = self.acquire(idx)?;
            self.resident = Some((idx, task));
            self.note_residency();
        }
        self.ensure_prefetch(idx + 1);
        Ok(&self.resident.as_ref().expect("assigned above").1)
    }
}

impl Drop for ShardStream {
    fn drop(&mut self) {
        if let Some(p) = self.prefetch.take() {
            let _ = Self::join_prefetch(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, TaskSequence};
    use crate::shard::write_shard_dir;
    use edsr_tensor::rng::seeded;
    use edsr_tensor::Matrix;

    fn toy_seq(tasks: usize) -> TaskSequence {
        let mut rng = seeded(700);
        TaskSequence {
            name: "stream-test".into(),
            tasks: (0..tasks)
                .map(|i| {
                    let train = Dataset::new(
                        format!("tr{i}"),
                        Matrix::randn(6, 4, 1.0, &mut rng),
                        vec![i; 6],
                    );
                    let test = Dataset::new(
                        format!("te{i}"),
                        Matrix::randn(2, 4, 1.0, &mut rng),
                        vec![i; 2],
                    );
                    crate::dataset::Task {
                        train,
                        test,
                        classes: vec![i],
                    }
                })
                .collect(),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("edsr_stream_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn sequential_walk_matches_sequence_with_two_resident() {
        let dir = tmp_dir("walk");
        let seq = toy_seq(8);
        write_shard_dir(&dir, &seq).unwrap();
        let mut stream = ShardStream::open(&dir).unwrap();
        assert_eq!(TaskSource::name(&stream), "stream-test");
        assert_eq!(TaskSource::len(&stream), 8);
        assert_eq!(TaskSource::dim(&stream), 4);
        for i in 0..8 {
            let task = stream.fetch(i).unwrap();
            assert_eq!(
                task.train.inputs.max_abs_diff(&seq.tasks[i].train.inputs),
                0.0
            );
            assert_eq!(task.classes, vec![i]);
        }
        assert!(
            stream.resident_peak() <= 2,
            "peak {}",
            stream.resident_peak()
        );
        assert!(
            stream.prefetch_hits() >= 6,
            "sequential walk should ride the prefetcher: {} hits",
            stream.prefetch_hits()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trainer_access_pattern_stays_within_budget() {
        // Train-then-evaluate look-back: fetch(i), then 0..=i, repeatedly.
        let dir = tmp_dir("lookback");
        let seq = toy_seq(5);
        write_shard_dir(&dir, &seq).unwrap();
        let mut stream = ShardStream::open(&dir).unwrap();
        for i in 0..5 {
            stream.fetch(i).unwrap();
            for j in 0..=i {
                let t = stream.fetch(j).unwrap();
                assert_eq!(t.train.inputs.max_abs_diff(&seq.tasks[j].train.inputs), 0.0);
            }
        }
        assert!(
            stream.resident_peak() <= 2,
            "peak {}",
            stream.resident_peak()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn refetching_resident_shard_is_free() {
        let dir = tmp_dir("refetch");
        write_shard_dir(&dir, &toy_seq(3)).unwrap();
        let mut stream = ShardStream::open(&dir).unwrap();
        stream.fetch(0).unwrap();
        let loads = stream.sync_loads() + stream.prefetch_hits();
        stream.fetch(0).unwrap();
        stream.fetch(0).unwrap();
        assert_eq!(stream.sync_loads() + stream.prefetch_hits(), loads);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_shard_surfaces_structured_error_on_fetch() {
        let dir = tmp_dir("corrupt");
        write_shard_dir(&dir, &toy_seq(4)).unwrap();
        // Corrupt shard 2 in the middle of its payload.
        let victim = dir.join("task0002.shard");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5A;
        std::fs::write(&victim, &bytes).unwrap();
        let mut stream = ShardStream::open(&dir).unwrap();
        stream.fetch(0).unwrap();
        stream.fetch(1).unwrap();
        match stream.fetch(2) {
            Err(DataError::Envelope { path, .. }) => {
                assert!(path.ends_with("task0002.shard"), "{}", path.display());
            }
            other => panic!("expected a structured envelope error, got {other:?}"),
        }
        // The stream stays usable for intact shards.
        assert!(stream.fetch(3).is_ok());
        assert!(stream.fetch(1).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_a_structured_error() {
        let dir = tmp_dir("nomanifest");
        std::fs::create_dir_all(&dir).unwrap();
        match ShardStream::open(&dir) {
            Err(DataError::Envelope { .. }) => {}
            Err(other) => panic!("expected an envelope error, got {other:?}"),
            Ok(_) => panic!("open should fail without a manifest"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_range_fetch_is_rejected() {
        let dir = tmp_dir("range");
        write_shard_dir(&dir, &toy_seq(2)).unwrap();
        let mut stream = ShardStream::open(&dir).unwrap();
        assert!(matches!(
            stream.fetch(2),
            Err(DataError::OutOfRange { index: 2, len: 2 })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
