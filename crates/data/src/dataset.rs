//! Core dataset containers.
//!
//! Labels are carried for *evaluation only* (the kNN-classifier protocol of
//! the paper); no training code path reads them — that is the
//! "unsupervised" in UCL.

use edsr_tensor::Matrix;

use crate::error::DataError;

/// A labeled set of samples (rows of `inputs`).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Sample matrix, `n x d`.
    pub inputs: Matrix,
    /// Per-row class label — used exclusively by evaluation.
    pub labels: Vec<usize>,
    /// Human-readable name.
    pub name: String,
}

impl Dataset {
    /// Creates a dataset, validating that labels align with rows.
    ///
    /// Returns [`DataError::Shape`] if `labels.len() != inputs.rows()`.
    pub fn try_new(
        name: impl Into<String>,
        inputs: Matrix,
        labels: Vec<usize>,
    ) -> Result<Self, DataError> {
        if inputs.rows() != labels.len() {
            return Err(DataError::Shape(format!(
                "Dataset: label/row count mismatch ({} rows, {} labels)",
                inputs.rows(),
                labels.len()
            )));
        }
        Ok(Self {
            inputs,
            labels,
            name: name.into(),
        })
    }

    /// Creates a dataset, validating that labels align with rows.
    ///
    /// Prefer [`Dataset::try_new`]; this panicking variant delegates to it
    /// and will be deprecated once remaining construction sites migrate.
    ///
    /// # Panics
    /// Panics if `labels.len() != inputs.rows()`.
    pub fn new(name: impl Into<String>, inputs: Matrix, labels: Vec<usize>) -> Self {
        match Self::try_new(name, inputs, labels) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.rows()
    }

    /// True if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.inputs.cols()
    }

    /// Distinct labels, sorted.
    pub fn classes(&self) -> Vec<usize> {
        let mut c = self.labels.clone();
        c.sort_unstable();
        c.dedup();
        c
    }

    /// Sub-dataset from row indices (order preserved).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            inputs: self.inputs.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            name: format!("{}[subset:{}]", self.name, indices.len()),
        }
    }

    /// Sub-dataset containing only the given classes.
    ///
    /// Membership is a binary search over a sorted copy of `classes`, so a
    /// wide filter (e.g. all-seen-so-far on a 100-class stream) costs
    /// O(n·log c) instead of the old O(n·c) linear scan per row.
    pub fn filter_classes(&self, classes: &[usize]) -> Dataset {
        let mut sorted = classes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let indices: Vec<usize> = (0..self.len())
            .filter(|&i| sorted.binary_search(&self.labels[i]).is_ok())
            .collect();
        self.subset(&indices)
    }

    /// Concatenates datasets, validating that parts exist and agree on
    /// dimensionality. Returns [`DataError::Shape`] otherwise.
    pub fn try_concat(name: impl Into<String>, parts: &[&Dataset]) -> Result<Dataset, DataError> {
        if parts.is_empty() {
            return Err(DataError::Shape("Dataset::concat: no parts".into()));
        }
        let dim = parts[0].dim();
        if let Some(bad) = parts.iter().find(|d| d.dim() != dim) {
            return Err(DataError::Shape(format!(
                "vstack: column mismatch in Dataset::concat ({} is {}-dim, expected {dim})",
                bad.name,
                bad.dim()
            )));
        }
        let inputs = Matrix::vstack(&parts.iter().map(|d| &d.inputs).collect::<Vec<_>>());
        let labels = parts
            .iter()
            .flat_map(|d| d.labels.iter().copied())
            .collect();
        Ok(Dataset {
            inputs,
            labels,
            name: name.into(),
        })
    }

    /// Concatenates datasets (dimension must agree).
    ///
    /// Prefer [`Dataset::try_concat`]; this panicking variant delegates to
    /// it and will be deprecated once remaining call sites migrate.
    ///
    /// # Panics
    /// Panics if `parts` is empty or dimensions differ.
    pub fn concat(name: impl Into<String>, parts: &[&Dataset]) -> Dataset {
        match Self::try_concat(name, parts) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }
}

/// One continual-learning increment: a train split to learn from (without
/// labels) and a test split for the kNN evaluation.
#[derive(Debug, Clone)]
pub struct Task {
    /// Training split.
    pub train: Dataset,
    /// Held-out test split.
    pub test: Dataset,
    /// Classes present in this increment.
    pub classes: Vec<usize>,
}

/// An ordered sequence of increments `X^1 … X^n`.
#[derive(Debug, Clone)]
pub struct TaskSequence {
    /// Benchmark name, e.g. `cifar10-sim`.
    pub name: String,
    /// The increments in presentation order.
    pub tasks: Vec<Task>,
}

impl TaskSequence {
    /// Number of increments.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks exist.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Union of all train splits (the Multitask upper-bound's data).
    pub fn joint_train(&self) -> Dataset {
        let parts: Vec<&Dataset> = self.tasks.iter().map(|t| &t.train).collect();
        Dataset::concat(format!("{}-joint", self.name), &parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            Matrix::from_vec(4, 2, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]),
            vec![0, 0, 1, 1],
        )
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.classes(), vec![0, 1]);
    }

    #[test]
    fn subset_preserves_alignment() {
        let d = toy();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.labels, vec![1, 0]);
        assert_eq!(s.inputs.row(0), &[2.0, 2.0]);
    }

    #[test]
    fn filter_classes_selects_only_requested() {
        let d = toy();
        let f = d.filter_classes(&[1]);
        assert_eq!(f.len(), 2);
        assert!(f.labels.iter().all(|&l| l == 1));
    }

    #[test]
    fn concat_appends() {
        let d = toy();
        let c = Dataset::concat("both", &[&d, &d]);
        assert_eq!(c.len(), 8);
        assert_eq!(c.labels[4], 0);
    }

    #[test]
    #[should_panic(expected = "label/row count mismatch")]
    fn mismatched_labels_panic() {
        let _ = Dataset::new("bad", Matrix::zeros(3, 2), vec![0]);
    }

    #[test]
    #[should_panic(expected = "vstack: column mismatch")]
    fn concat_dimension_mismatch_panics() {
        let a = Dataset::new("a", Matrix::zeros(1, 2), vec![0]);
        let b = Dataset::new("b", Matrix::zeros(1, 3), vec![0]);
        let _ = Dataset::concat("ab", &[&a, &b]);
    }

    #[test]
    fn empty_subset_is_empty() {
        let d = toy();
        let s = d.subset(&[]);
        assert!(s.is_empty());
        assert_eq!(s.dim(), 2);
    }

    #[test]
    fn filter_unknown_class_yields_empty() {
        let d = toy();
        assert!(d.filter_classes(&[99]).is_empty());
    }

    #[test]
    fn try_new_reports_mismatch_structurally() {
        let err = Dataset::try_new("bad", Matrix::zeros(3, 2), vec![0]).unwrap_err();
        assert!(matches!(err, DataError::Shape(_)));
        assert!(err.to_string().contains("label/row count mismatch"));
        assert!(Dataset::try_new("ok", Matrix::zeros(2, 2), vec![0, 1]).is_ok());
    }

    #[test]
    fn try_concat_reports_empty_and_mismatch_structurally() {
        let err = Dataset::try_concat("none", &[]).unwrap_err();
        assert!(err.to_string().contains("no parts"));
        let a = Dataset::new("a", Matrix::zeros(1, 2), vec![0]);
        let b = Dataset::new("b", Matrix::zeros(1, 3), vec![0]);
        let err = Dataset::try_concat("ab", &[&a, &b]).unwrap_err();
        assert!(err.to_string().contains("column mismatch"), "{err}");
        let ok = Dataset::try_concat("aa", &[&a, &a]).unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn filter_classes_many_classes_regression() {
        // 600 rows over 200 classes, filtered by a 100-class unsorted set:
        // exercises the sorted-slice + binary-search path against a brute
        // force reference.
        let n = 600;
        let labels: Vec<usize> = (0..n).map(|i| (i * 7) % 200).collect();
        let d = Dataset::new("many", Matrix::zeros(n, 2), labels.clone());
        let wanted: Vec<usize> = (0..100).map(|k| (199 - k * 2) % 200).collect();
        let f = d.filter_classes(&wanted);
        let expect: Vec<usize> = labels
            .iter()
            .copied()
            .filter(|l| wanted.contains(l))
            .collect();
        assert_eq!(f.labels, expect);
        assert!(!f.is_empty());
    }

    #[test]
    fn joint_train_unions_tasks() {
        let d = toy();
        let t1 = Task {
            train: d.filter_classes(&[0]),
            test: d.filter_classes(&[0]),
            classes: vec![0],
        };
        let t2 = Task {
            train: d.filter_classes(&[1]),
            test: d.filter_classes(&[1]),
            classes: vec![1],
        };
        let seq = TaskSequence {
            name: "toy".into(),
            tasks: vec![t1, t2],
        };
        assert_eq!(seq.joint_train().len(), 4);
    }
}
