//! Core dataset containers.
//!
//! Labels are carried for *evaluation only* (the kNN-classifier protocol of
//! the paper); no training code path reads them — that is the
//! "unsupervised" in UCL.

use edsr_tensor::Matrix;

/// A labeled set of samples (rows of `inputs`).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Sample matrix, `n x d`.
    pub inputs: Matrix,
    /// Per-row class label — used exclusively by evaluation.
    pub labels: Vec<usize>,
    /// Human-readable name.
    pub name: String,
}

impl Dataset {
    /// Creates a dataset, validating that labels align with rows.
    ///
    /// # Panics
    /// Panics if `labels.len() != inputs.rows()`.
    pub fn new(name: impl Into<String>, inputs: Matrix, labels: Vec<usize>) -> Self {
        assert_eq!(
            inputs.rows(),
            labels.len(),
            "Dataset: label/row count mismatch"
        );
        Self {
            inputs,
            labels,
            name: name.into(),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.rows()
    }

    /// True if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.inputs.cols()
    }

    /// Distinct labels, sorted.
    pub fn classes(&self) -> Vec<usize> {
        let mut c = self.labels.clone();
        c.sort_unstable();
        c.dedup();
        c
    }

    /// Sub-dataset from row indices (order preserved).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            inputs: self.inputs.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            name: format!("{}[subset:{}]", self.name, indices.len()),
        }
    }

    /// Sub-dataset containing only the given classes.
    pub fn filter_classes(&self, classes: &[usize]) -> Dataset {
        let indices: Vec<usize> = (0..self.len())
            .filter(|&i| classes.contains(&self.labels[i]))
            .collect();
        self.subset(&indices)
    }

    /// Concatenates datasets (dimension must agree).
    ///
    /// # Panics
    /// Panics if `parts` is empty or dimensions differ.
    pub fn concat(name: impl Into<String>, parts: &[&Dataset]) -> Dataset {
        assert!(!parts.is_empty(), "Dataset::concat: no parts");
        let inputs = Matrix::vstack(&parts.iter().map(|d| &d.inputs).collect::<Vec<_>>());
        let labels = parts
            .iter()
            .flat_map(|d| d.labels.iter().copied())
            .collect();
        Dataset {
            inputs,
            labels,
            name: name.into(),
        }
    }
}

/// One continual-learning increment: a train split to learn from (without
/// labels) and a test split for the kNN evaluation.
#[derive(Debug, Clone)]
pub struct Task {
    /// Training split.
    pub train: Dataset,
    /// Held-out test split.
    pub test: Dataset,
    /// Classes present in this increment.
    pub classes: Vec<usize>,
}

/// An ordered sequence of increments `X^1 … X^n`.
#[derive(Debug, Clone)]
pub struct TaskSequence {
    /// Benchmark name, e.g. `cifar10-sim`.
    pub name: String,
    /// The increments in presentation order.
    pub tasks: Vec<Task>,
}

impl TaskSequence {
    /// Number of increments.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks exist.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Union of all train splits (the Multitask upper-bound's data).
    pub fn joint_train(&self) -> Dataset {
        let parts: Vec<&Dataset> = self.tasks.iter().map(|t| &t.train).collect();
        Dataset::concat(format!("{}-joint", self.name), &parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            Matrix::from_vec(4, 2, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]),
            vec![0, 0, 1, 1],
        )
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.classes(), vec![0, 1]);
    }

    #[test]
    fn subset_preserves_alignment() {
        let d = toy();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.labels, vec![1, 0]);
        assert_eq!(s.inputs.row(0), &[2.0, 2.0]);
    }

    #[test]
    fn filter_classes_selects_only_requested() {
        let d = toy();
        let f = d.filter_classes(&[1]);
        assert_eq!(f.len(), 2);
        assert!(f.labels.iter().all(|&l| l == 1));
    }

    #[test]
    fn concat_appends() {
        let d = toy();
        let c = Dataset::concat("both", &[&d, &d]);
        assert_eq!(c.len(), 8);
        assert_eq!(c.labels[4], 0);
    }

    #[test]
    #[should_panic(expected = "label/row count mismatch")]
    fn mismatched_labels_panic() {
        let _ = Dataset::new("bad", Matrix::zeros(3, 2), vec![0]);
    }

    #[test]
    #[should_panic(expected = "vstack: column mismatch")]
    fn concat_dimension_mismatch_panics() {
        let a = Dataset::new("a", Matrix::zeros(1, 2), vec![0]);
        let b = Dataset::new("b", Matrix::zeros(1, 3), vec![0]);
        let _ = Dataset::concat("ab", &[&a, &b]);
    }

    #[test]
    fn empty_subset_is_empty() {
        let d = toy();
        let s = d.subset(&[]);
        assert!(s.is_empty());
        assert_eq!(s.dim(), 2);
    }

    #[test]
    fn filter_unknown_class_yields_empty() {
        let d = toy();
        assert!(d.filter_classes(&[99]).is_empty());
    }

    #[test]
    fn joint_train_unions_tasks() {
        let d = toy();
        let t1 = Task {
            train: d.filter_classes(&[0]),
            test: d.filter_classes(&[0]),
            classes: vec![0],
        };
        let t2 = Task {
            train: d.filter_classes(&[1]),
            test: d.filter_classes(&[1]),
            classes: vec![1],
        };
        let seq = TaskSequence {
            name: "toy".into(),
            tasks: vec![t1, t2],
        };
        assert_eq!(seq.joint_train().len(), 4);
    }
}
