//! Synthetic image-like datasets.
//!
//! Stand-in for CIFAR-10/100, Tiny-ImageNet and DomainNet-real per the
//! substitution policy (DESIGN.md §2). Each class is a smooth low-rank
//! manifold over an `H x W x C` grid:
//!
//! `x = s_c · center_k + s_m · B_k z + s_n · ε`,  `z ~ N(0, I_r)`, `ε ~ N(0, I_d)`
//!
//! where `center_k` and the columns of `B_k` are *spatially smooth* random
//! patterns (coarse Gaussian grids bilinearly upsampled). Spatial
//! smoothness is what makes crop/blur augmentations label-preserving and
//! gives augmentation views the overlap property that contrastive
//! learning — and EDSR's representation-noise argument \[71\] — relies on.

use edsr_tensor::rng::gaussian;
use edsr_tensor::Matrix;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::dataset::Dataset;
use crate::grid::GridSpec;

/// Shape parameters for the class-manifold generator.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Rank of each class manifold (latent dimension).
    pub n_latent: usize,
    /// Scale of the class center pattern.
    pub center_scale: f32,
    /// Scale of the within-class manifold variation.
    pub manifold_scale: f32,
    /// Scale of isotropic pixel noise.
    pub noise_scale: f32,
    /// Upsampling factor for smooth patterns (coarse grid = full / factor).
    pub coarse_factor: usize,
    /// Per-sample *nuisance* transforms (see [`NuisanceConfig`]).
    pub nuisance: NuisanceConfig,
}

/// Per-sample nuisance variation.
///
/// The dominant component is a random draw over a *fixed global pattern
/// subspace* (see [`NuisanceWorld`]): each sample receives
/// `x += Σ_j c_j·g_j`, `c ~ N(0, pattern_scale²)`. This is what makes
/// representation learning *necessary and possible* in the simulation:
/// nuisance dominates raw input distances (raw-space kNN is poor), it is
/// continuous and high-dimensional (cannot be matched by nearest
/// neighbours), yet it is linearly removable — and the matching
/// `PatternJitter` augmentation re-randomizes the same coefficients, so a
/// CSSL encoder that minimizes view variance learns to project the
/// subspace out. Forgetting then manifests as losing that learned
/// invariance. Flips/shifts/gain add milder geometric nuisance.
#[derive(Debug, Clone, Copy)]
pub struct NuisanceConfig {
    /// Number of smooth global nuisance patterns (plus one per-channel DC
    /// pattern is always included).
    pub n_patterns: usize,
    /// Std of the per-sample pattern coefficients.
    pub pattern_scale: f32,
    /// Per-channel multiplicative gain range: `a ~ U(1−gain, 1+gain)`.
    pub gain: f32,
    /// Mirror the sample horizontally with probability ½.
    pub flip: bool,
    /// Maximum |spatial shift| in pixels (edge-replicated).
    pub shift: usize,
}

impl Default for NuisanceConfig {
    fn default() -> Self {
        Self {
            n_patterns: 6,
            pattern_scale: 1.0,
            gain: 0.2,
            flip: true,
            shift: 1,
        }
    }
}

/// The fixed nuisance pattern subspace shared by a benchmark's generator
/// and its `PatternJitter` augmentation.
#[derive(Debug, Clone)]
pub struct NuisanceWorld {
    /// Unit-RMS flattened patterns (per-channel DC patterns first, then
    /// smooth random patterns).
    pub patterns: Vec<Vec<f32>>,
}

impl NuisanceWorld {
    /// Draws the pattern set for a benchmark instance.
    pub fn generate(grid: GridSpec, cfg: &NuisanceConfig, rng: &mut StdRng) -> Self {
        let mut patterns = Vec::with_capacity(grid.channels + cfg.n_patterns);
        let plane = grid.height * grid.width;
        for c in 0..grid.channels {
            // Channel DC pattern, unit RMS over the whole grid.
            let mut p = vec![0.0f32; grid.dim()];
            let v = (grid.dim() as f32 / plane as f32).sqrt();
            for e in &mut p[c * plane..(c + 1) * plane] {
                *e = v;
            }
            patterns.push(p);
        }
        for _ in 0..cfg.n_patterns {
            let mut p = smooth_pattern(grid, 2, rng);
            // Symmetrized like the class patterns: flips then leave the
            // nuisance subspace invariant, so flip views need no extra
            // nulling directions.
            symmetrize(&mut p, grid);
            patterns.push(p);
        }
        Self { patterns }
    }

    /// Adds `Σ c_j·g_j` with fresh `c ~ N(0, scale²)` to a flat sample.
    pub fn add_random_draw(&self, x: &mut [f32], scale: f32, rng: &mut StdRng) {
        for p in &self.patterns {
            let c = gaussian(rng) * scale;
            for (xi, &pi) in x.iter_mut().zip(p) {
                *xi += c * pi;
            }
        }
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            n_latent: 4,
            center_scale: 0.8,
            manifold_scale: 0.25,
            noise_scale: 0.10,
            coarse_factor: 2,
            nuisance: NuisanceConfig::default(),
        }
    }
}

/// One generated class: a smooth center and a smooth low-rank basis.
///
/// Patterns are mirror-symmetrized (`p ← (p + flip(p))/2`, re-normalized):
/// horizontal flips are then exactly content-preserving, so the flip
/// nuisance and flip augmentation cost no class information — mirroring
/// how real-image classes are (statistically) flip-invariant.
#[derive(Debug, Clone)]
pub struct ClassModel {
    center: Vec<f32>,
    basis: Vec<Vec<f32>>,
}

/// Mirror-symmetrizes a flattened pattern horizontally and rescales it
/// back to unit RMS.
fn symmetrize(p: &mut [f32], grid: GridSpec) {
    for c in 0..grid.channels {
        for r in 0..grid.height {
            for col in 0..grid.width / 2 {
                let a = grid.index(c, r, col);
                let b = grid.index(c, r, grid.width - 1 - col);
                let mean = 0.5 * (p[a] + p[b]);
                p[a] = mean;
                p[b] = mean;
            }
        }
    }
    let norm = p.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-9);
    let scale = (p.len() as f32).sqrt() / norm;
    for v in p.iter_mut() {
        *v *= scale;
    }
}

/// Draws a spatially smooth random pattern: a coarse Gaussian grid,
/// bilinearly upsampled to the full resolution, unit-normalized.
pub fn smooth_pattern(grid: GridSpec, coarse_factor: usize, rng: &mut StdRng) -> Vec<f32> {
    let factor = coarse_factor.max(1);
    let ch = grid.height.div_ceil(factor);
    let cw = grid.width.div_ceil(factor);
    let coarse_grid = GridSpec::new(ch.max(1), cw.max(1), grid.channels);
    let coarse: Vec<f32> = (0..coarse_grid.dim()).map(|_| gaussian(rng)).collect();

    let mut out = vec![0.0f32; grid.dim()];
    for c in 0..grid.channels {
        for r in 0..grid.height {
            for col in 0..grid.width {
                let y = r as f32 / grid.height.max(2) as f32 * (coarse_grid.height - 1) as f32;
                let x = col as f32 / grid.width.max(2) as f32 * (coarse_grid.width - 1) as f32;
                out[grid.index(c, r, col)] = coarse_grid.bilinear(&coarse, c, y, x);
            }
        }
    }
    let norm = out.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-9);
    let scale = (grid.dim() as f32).sqrt() / norm; // unit RMS
    for v in &mut out {
        *v *= scale;
    }
    out
}

impl ClassModel {
    /// Draws a fresh class model.
    pub fn generate(grid: GridSpec, cfg: &SynthConfig, rng: &mut StdRng) -> Self {
        let mut center = smooth_pattern(grid, cfg.coarse_factor, rng);
        symmetrize(&mut center, grid);
        let basis = (0..cfg.n_latent)
            .map(|_| {
                let mut b = smooth_pattern(grid, cfg.coarse_factor, rng);
                symmetrize(&mut b, grid);
                b
            })
            .collect();
        Self { center, basis }
    }

    /// Samples one flattened grid from this class (clean content plus
    /// per-sample nuisance).
    pub fn sample(
        &self,
        grid: GridSpec,
        cfg: &SynthConfig,
        world: &NuisanceWorld,
        rng: &mut StdRng,
    ) -> Vec<f32> {
        let d = self.center.len();
        let mut x: Vec<f32> = self.center.iter().map(|&v| v * cfg.center_scale).collect();
        for b in &self.basis {
            let z = gaussian(rng) * cfg.manifold_scale;
            for (xi, &bi) in x.iter_mut().zip(b) {
                *xi += z * bi;
            }
        }
        for xi in x.iter_mut().take(d) {
            *xi += gaussian(rng) * cfg.noise_scale;
        }
        apply_nuisance(&mut x, grid, &cfg.nuisance, world, rng);
        x
    }
}

/// Applies the per-sample nuisance transforms in place.
fn apply_nuisance(
    x: &mut [f32],
    grid: GridSpec,
    cfg: &NuisanceConfig,
    world: &NuisanceWorld,
    rng: &mut StdRng,
) {
    use edsr_tensor::rng::uniform;
    // Spatial shift with edge replication.
    if cfg.shift > 0 {
        let s = cfg.shift as i32;
        let dy = rng.random_range(-s..=s);
        let dx = rng.random_range(-s..=s);
        if dy != 0 || dx != 0 {
            let src = x.to_vec();
            for c in 0..grid.channels {
                for r in 0..grid.height {
                    for col in 0..grid.width {
                        let sr = (r as i32 - dy).clamp(0, grid.height as i32 - 1) as usize;
                        let sc = (col as i32 - dx).clamp(0, grid.width as i32 - 1) as usize;
                        x[grid.index(c, r, col)] = src[grid.index(c, sr, sc)];
                    }
                }
            }
        }
    }
    // Horizontal mirror.
    if cfg.flip && rng.random::<f32>() < 0.5 {
        for c in 0..grid.channels {
            for r in 0..grid.height {
                for col in 0..grid.width / 2 {
                    let a = grid.index(c, r, col);
                    let b = grid.index(c, r, grid.width - 1 - col);
                    x.swap(a, b);
                }
            }
        }
    }
    // Mild per-channel gain.
    if cfg.gain > 0.0 {
        let plane = grid.height * grid.width;
        for c in 0..grid.channels {
            let a = uniform(rng, 1.0 - cfg.gain, 1.0 + cfg.gain);
            for v in &mut x[c * plane..(c + 1) * plane] {
                *v *= a;
            }
        }
    }
    // Dominant nuisance: random draw over the global pattern subspace.
    world.add_random_draw(x, cfg.pattern_scale, rng);
}

/// Shifts every sample of a dataset by a smooth additive pattern:
/// `x ← x + strength·pattern`.
///
/// Used to give each *increment* a distinct "domain style": real benchmark
/// splits put visually distinct class groups in different increments, so
/// consecutive increments genuinely interfere; the additive style shift
/// reproduces that interference (which is what makes forgetting — and
/// therefore the paper's comparisons — observable) without distorting the
/// nuisance pattern subspace.
pub fn apply_style(data: &mut crate::dataset::Dataset, pattern: &[f32], strength: f32) {
    assert_eq!(
        pattern.len(),
        data.dim(),
        "apply_style: pattern dimension mismatch"
    );
    for r in 0..data.inputs.rows() {
        for (c, v) in data.inputs.row_mut(r).iter_mut().enumerate() {
            *v += strength * pattern[c];
        }
    }
}

/// Generates paired train/test datasets over `num_classes` fresh classes,
/// along with the nuisance pattern world the matching `PatternJitter`
/// augmentation must share.
///
/// Labels are `0..num_classes` and only used for evaluation.
pub fn make_class_datasets(
    name: &str,
    num_classes: usize,
    train_per_class: usize,
    test_per_class: usize,
    grid: GridSpec,
    cfg: &SynthConfig,
    rng: &mut StdRng,
) -> (Dataset, Dataset, NuisanceWorld) {
    let d = grid.dim();
    let world = NuisanceWorld::generate(grid, &cfg.nuisance, rng);
    let models: Vec<ClassModel> = (0..num_classes)
        .map(|_| ClassModel::generate(grid, cfg, rng))
        .collect();

    let build = |per_class: usize, split: &str, rng: &mut StdRng| {
        let n = per_class * num_classes;
        let mut inputs = Matrix::zeros(n, d);
        let mut labels = Vec::with_capacity(n);
        let mut row = 0;
        for (k, model) in models.iter().enumerate() {
            for _ in 0..per_class {
                let sample = model.sample(grid, cfg, &world, rng);
                inputs.row_mut(row).copy_from_slice(&sample);
                labels.push(k);
                row += 1;
            }
        }
        Dataset::new(format!("{name}-{split}"), inputs, labels)
    };

    let train = build(train_per_class, "train", rng);
    let test = build(test_per_class, "test", rng);
    (train, test, world)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_linalg::stats::sq_euclidean;
    use edsr_tensor::rng::seeded;

    fn grid() -> GridSpec {
        GridSpec::new(8, 8, 1)
    }

    #[test]
    fn smooth_pattern_is_spatially_correlated() {
        let mut rng = seeded(140);
        let g = grid();
        // Average |difference| between horizontal neighbours must be well
        // below that of random pairs — smoothness.
        let p = smooth_pattern(g, 2, &mut rng);
        let mut neighbor_diff = 0.0;
        let mut count = 0;
        for r in 0..g.height {
            for c in 0..g.width - 1 {
                neighbor_diff += (p[g.index(0, r, c)] - p[g.index(0, r, c + 1)]).abs();
                count += 1;
            }
        }
        neighbor_diff /= count as f32;
        let mut random_diff = 0.0;
        for i in 0..p.len() / 2 {
            random_diff += (p[i] - p[p.len() - 1 - i]).abs();
        }
        random_diff /= (p.len() / 2) as f32;
        assert!(
            neighbor_diff < random_diff,
            "no spatial correlation: neighbor {neighbor_diff} vs random {random_diff}"
        );
    }

    #[test]
    fn smooth_pattern_unit_rms() {
        let mut rng = seeded(141);
        let g = grid();
        let p = smooth_pattern(g, 2, &mut rng);
        let rms = (p.iter().map(|v| v * v).sum::<f32>() / p.len() as f32).sqrt();
        assert!((rms - 1.0).abs() < 1e-4, "rms {rms}");
    }

    /// Clean config: nuisance disabled, so raw geometry exposes classes.
    fn clean_cfg() -> SynthConfig {
        SynthConfig {
            nuisance: NuisanceConfig {
                n_patterns: 0,
                pattern_scale: 0.0,
                gain: 0.0,
                flip: false,
                shift: 0,
            },
            ..SynthConfig::default()
        }
    }

    #[test]
    fn classes_are_separated_without_nuisance() {
        let mut rng = seeded(142);
        let (train, _, _) = make_class_datasets("t", 3, 30, 5, grid(), &clean_cfg(), &mut rng);
        // Within-class distances should be smaller than between-class ones
        // on average.
        let mut within = 0.0;
        let mut within_n = 0;
        let mut between = 0.0;
        let mut between_n = 0;
        for i in 0..train.len() {
            for j in (i + 1)..train.len() {
                let d = sq_euclidean(train.inputs.row(i), train.inputs.row(j));
                if train.labels[i] == train.labels[j] {
                    within += d;
                    within_n += 1;
                } else {
                    between += d;
                    between_n += 1;
                }
            }
        }
        let within = within / within_n as f32;
        let between = between / between_n as f32;
        assert!(between > within * 1.5, "within {within} between {between}");
    }

    #[test]
    fn dataset_shapes_and_labels() {
        let mut rng = seeded(143);
        let (train, test, _) =
            make_class_datasets("t", 4, 10, 3, grid(), &SynthConfig::default(), &mut rng);
        assert_eq!(train.len(), 40);
        assert_eq!(test.len(), 12);
        assert_eq!(train.dim(), 64);
        assert_eq!(train.classes(), vec![0, 1, 2, 3]);
        assert_eq!(test.classes(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn nuisance_dominates_raw_distances() {
        // The design property (DESIGN.md §2): with nuisance ON, raw
        // within-class distances are inflated to the same order as
        // between-class ones, so raw-space matching degrades. Compare the
        // between/within ratio with and without nuisance.
        let ratio = |cfg: &SynthConfig, seed: u64| {
            let mut rng = seeded(seed);
            let (train, _, _) = make_class_datasets("t", 3, 20, 2, grid(), cfg, &mut rng);
            let (mut within, mut wn, mut between, mut bn) = (0.0f32, 0, 0.0f32, 0);
            for i in 0..train.len() {
                for j in (i + 1)..train.len() {
                    let d = sq_euclidean(train.inputs.row(i), train.inputs.row(j));
                    if train.labels[i] == train.labels[j] {
                        within += d;
                        wn += 1;
                    } else {
                        between += d;
                        bn += 1;
                    }
                }
            }
            (between / bn as f32) / (within / wn as f32)
        };
        let clean = ratio(&clean_cfg(), 146);
        let noisy = ratio(&SynthConfig::default(), 146);
        assert!(
            noisy < clean * 0.7,
            "nuisance did not reduce raw separability: clean ratio {clean}, noisy {noisy}"
        );
        assert!(
            noisy < 1.6,
            "raw data still trivially separable: ratio {noisy}"
        );
    }

    #[test]
    fn train_and_test_share_class_structure() {
        // A test sample should be closer to its own class's train samples
        // than to other classes' (nearest-centroid sanity check) — on
        // clean (nuisance-free) data.
        let mut rng = seeded(144);
        let (train, test, _) = make_class_datasets("t", 3, 40, 10, grid(), &clean_cfg(), &mut rng);
        let mut correct = 0;
        for i in 0..test.len() {
            let mut best = (f32::INFINITY, 0usize);
            for k in 0..3 {
                let idx: Vec<usize> = (0..train.len()).filter(|&j| train.labels[j] == k).collect();
                let mean_d: f32 = idx
                    .iter()
                    .map(|&j| sq_euclidean(test.inputs.row(i), train.inputs.row(j)))
                    .sum::<f32>()
                    / idx.len() as f32;
                if mean_d < best.0 {
                    best = (mean_d, k);
                }
            }
            if best.1 == test.labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / test.len() as f32;
        assert!(acc > 0.8, "centroid accuracy too low: {acc}");
    }

    #[test]
    fn apply_style_shifts_all_samples_identically() {
        let mut rng = seeded(147);
        let (mut train, _, _) = make_class_datasets("t", 2, 5, 2, grid(), &clean_cfg(), &mut rng);
        let before = train.inputs.clone();
        let pattern = smooth_pattern(grid(), 2, &mut rng);
        apply_style(&mut train, &pattern, 0.5);
        for r in 0..train.len() {
            for (c, &p) in pattern.iter().enumerate() {
                let delta = train.inputs.get(r, c) - before.get(r, c);
                assert!((delta - 0.5 * p).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn nuisance_world_pattern_count_and_rms() {
        let mut rng = seeded(148);
        let cfg = NuisanceConfig {
            n_patterns: 4,
            pattern_scale: 1.0,
            gain: 0.0,
            flip: false,
            shift: 0,
        };
        let world = NuisanceWorld::generate(grid(), &cfg, &mut rng);
        // channels + n_patterns patterns, all unit-RMS.
        assert_eq!(world.patterns.len(), grid().channels + 4);
        for p in &world.patterns {
            let rms = (p.iter().map(|v| v * v).sum::<f32>() / p.len() as f32).sqrt();
            assert!((rms - 1.0).abs() < 1e-3, "rms {rms}");
        }
    }

    #[test]
    fn nuisance_patterns_are_flip_symmetric() {
        let mut rng = seeded(149);
        let g = GridSpec::new(6, 6, 2);
        let cfg = NuisanceConfig {
            n_patterns: 3,
            pattern_scale: 1.0,
            gain: 0.0,
            flip: true,
            shift: 0,
        };
        let world = NuisanceWorld::generate(g, &cfg, &mut rng);
        for p in &world.patterns {
            for c in 0..g.channels {
                for r in 0..g.height {
                    for col in 0..g.width / 2 {
                        let a = p[g.index(c, r, col)];
                        let b = p[g.index(c, r, g.width - 1 - col)];
                        assert!((a - b).abs() < 1e-5, "asymmetric nuisance pattern");
                    }
                }
            }
        }
    }

    #[test]
    fn add_random_draw_stays_in_span() {
        // With a single pattern, the draw moves the sample only along it.
        let mut rng = seeded(150);
        let world = NuisanceWorld {
            patterns: vec![vec![1.0, 0.0, 0.0, 0.0]],
        };
        let mut x = vec![1.0f32, 2.0, 3.0, 4.0];
        world.add_random_draw(&mut x, 2.0, &mut rng);
        assert_eq!(&x[1..], &[2.0, 3.0, 4.0]);
        assert!((x[0] - 1.0).abs() > 1e-4);
    }

    #[test]
    fn generator_is_seed_deterministic() {
        let g = grid();
        let cfg = SynthConfig::default();
        let mut r1 = seeded(145);
        let mut r2 = seeded(145);
        let (a, _, _) = make_class_datasets("t", 2, 5, 2, g, &cfg, &mut r1);
        let (b, _, _) = make_class_datasets("t", 2, 5, 2, g, &cfg, &mut r2);
        assert!(a.inputs.max_abs_diff(&b.inputs) == 0.0);
    }
}
