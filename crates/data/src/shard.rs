//! The `EDSRDS01` on-disk shard format: one CRC-trailed file per
//! continual-learning increment, plus an `EDSRDM01` manifest indexing a
//! whole stream.
//!
//! Both files reuse the workspace envelope convention
//! (`edsr_wire::write_envelope`): `magic + payload + (u64 length, u32
//! crc32)` with temp-file + fsync + atomic-rename durability, so a shard
//! under the final name is either complete and CRC-valid or does not
//! exist. Readers validate magic → truncation → CRC *before* parsing a
//! byte of payload ([`edsr_wire::read_envelope`]), which is what lets the
//! stream loader skip corrupt shards loudly with a structured
//! [`DataError`] and never yield partial samples.
//!
//! Payload layout (all integers little-endian):
//!
//! ```text
//! shard   := dataset(train) dataset(test) u64 n_classes u64*classes
//! dataset := u32 name_len bytes(name) u64 rows u64 cols
//!            u64*rows labels  f32*rows*cols row-major data
//! manifest:= u32 name_len bytes(stream name) u64 dim u64 n_shards
//!            shard_meta*
//! shard_meta := u32 file_len bytes(file) u64 train_len u64 test_len
//!               u64 n_classes u64*classes
//! ```
//!
//! Floats are stored as raw little-endian bit patterns, so a decoded
//! shard is *bit-identical* to the matrix it was encoded from — the
//! foundation of the streamed-vs-in-RAM checkpoint identity guarantee.

use std::path::{Path, PathBuf};

use edsr_tensor::Matrix;
use edsr_wire::{read_envelope, write_envelope};

use crate::dataset::{Dataset, Task, TaskSequence};
use crate::error::DataError;

/// Magic tag of one data shard (one increment).
pub const SHARD_MAGIC: &[u8; 8] = b"EDSRDS01";
/// Magic tag of a stream manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"EDSRDM01";
/// File name of the manifest inside a shard directory.
pub const MANIFEST_FILE: &str = "manifest.edsrdm";

/// Per-shard entry of a [`ShardManifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// Shard file name, relative to the stream directory.
    pub file: String,
    /// Training samples in the shard.
    pub train_len: usize,
    /// Test samples in the shard.
    pub test_len: usize,
    /// Classes present in the increment.
    pub classes: Vec<usize>,
}

/// Index of a sharded task stream: everything a loader needs to know
/// about the stream *without* touching a single shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Stream name (becomes the benchmark name of runs over it).
    pub name: String,
    /// Input dimensionality of the first increment.
    pub dim: usize,
    /// One entry per increment, in presentation order.
    pub shards: Vec<ShardMeta>,
}

impl ShardManifest {
    /// Absolute path of shard `idx` under `dir`.
    pub fn shard_path(&self, dir: &Path, idx: usize) -> PathBuf {
        dir.join(&self.shards[idx].file)
    }
}

// ---------------------------------------------------------------------------
// Payload encoding / decoding.
// ---------------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_dataset(out: &mut Vec<u8>, d: &Dataset) {
    put_str(out, &d.name);
    put_u64(out, d.inputs.rows() as u64);
    put_u64(out, d.inputs.cols() as u64);
    for &l in &d.labels {
        put_u64(out, l as u64);
    }
    out.reserve(d.inputs.len() * 4);
    for &v in d.inputs.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// A bounds-checked little-endian payload reader; every shortfall becomes
/// a structured parse failure (the CRC already passed, so a shortfall
/// here means a writer bug or a crafted file, not bit rot).
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.bytes.len() - self.pos < n {
            return Err(format!(
                "needed {n} bytes at offset {}, {} remain",
                self.pos,
                self.bytes.len() - self.pos
            ));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "name is not UTF-8".into())
    }

    /// Guards a declared element count against the bytes actually
    /// present, so a corrupted-but-CRC-valid count can never trigger a
    /// huge allocation.
    fn counted(&mut self, elem_bytes: usize) -> Result<usize, String> {
        let n = self.u64()? as usize;
        let remaining = self.bytes.len() - self.pos;
        if n.checked_mul(elem_bytes).is_none_or(|b| b > remaining) {
            return Err(format!(
                "declared {n} elements x {elem_bytes} B exceed the {remaining} payload bytes left"
            ));
        }
        Ok(n)
    }

    fn finish(&self) -> Result<(), String> {
        if self.pos != self.bytes.len() {
            return Err(format!(
                "{} trailing bytes after the payload",
                self.bytes.len() - self.pos
            ));
        }
        Ok(())
    }
}

fn get_dataset(r: &mut Reader) -> Result<Dataset, String> {
    let name = r.string()?;
    let rows = r.u64()? as usize;
    let cols = r.u64()? as usize;
    let remaining = r.bytes.len() - r.pos;
    let need = rows
        .checked_mul(8 + cols * 4)
        .ok_or("rows x cols overflows")?;
    if need > remaining {
        return Err(format!(
            "dataset of {rows}x{cols} needs {need} bytes, {remaining} remain"
        ));
    }
    let mut labels = Vec::with_capacity(rows);
    for _ in 0..rows {
        labels.push(r.u64()? as usize);
    }
    let raw = r.take(rows * cols * 4)?;
    let mut data = vec![0.0f32; rows * cols];
    // Bulk f32 decode is the hot loop of a shard load; chunk it over the
    // pool. Pure element-wise, so the result is thread-count independent.
    edsr_par::par_for_rows(&mut data, rows, |row_range, chunk| {
        let base = row_range.start * cols * 4;
        for (k, v) in chunk.iter_mut().enumerate() {
            let o = base + k * 4;
            *v = f32::from_le_bytes(raw[o..o + 4].try_into().unwrap());
        }
    });
    let inputs = Matrix::from_vec(rows, cols, data);
    Dataset::try_new(name, inputs, labels).map_err(|e| e.to_string())
}

/// Serializes one increment into a shard payload (no envelope).
pub fn encode_task(task: &Task) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + (task.train.inputs.len() + task.test.inputs.len()) * 4);
    put_dataset(&mut out, &task.train);
    put_dataset(&mut out, &task.test);
    put_u64(&mut out, task.classes.len() as u64);
    for &c in &task.classes {
        put_u64(&mut out, c as u64);
    }
    out
}

/// Parses a shard payload back into an increment. `path` labels errors.
pub fn decode_task(payload: &[u8], path: &Path) -> Result<Task, DataError> {
    let fail = |detail: String| DataError::Format {
        path: path.to_path_buf(),
        detail,
    };
    let mut r = Reader::new(payload);
    let train = get_dataset(&mut r).map_err(fail)?;
    let test = get_dataset(&mut r).map_err(fail)?;
    let n = r.counted(8).map_err(fail)?;
    let mut classes = Vec::with_capacity(n);
    for _ in 0..n {
        classes.push(r.u64().map_err(fail)? as usize);
    }
    r.finish().map_err(fail)?;
    if train.dim() != test.dim() {
        return Err(fail(format!(
            "train dim {} != test dim {}",
            train.dim(),
            test.dim()
        )));
    }
    Ok(Task {
        train,
        test,
        classes,
    })
}

/// Writes one increment as a durable `EDSRDS01` shard.
pub fn write_task_shard(path: &Path, task: &Task) -> Result<(), DataError> {
    write_envelope(path, SHARD_MAGIC, &encode_task(task)).map_err(|source| DataError::Envelope {
        path: path.to_path_buf(),
        source,
    })
}

/// Reads and validates one `EDSRDS01` shard. Corruption or truncation
/// surfaces as [`DataError::Envelope`] before any sample is decoded.
pub fn read_task_shard(path: &Path) -> Result<Task, DataError> {
    let payload = read_envelope(path, SHARD_MAGIC).map_err(|source| DataError::Envelope {
        path: path.to_path_buf(),
        source,
    })?;
    decode_task(&payload, path)
}

fn encode_manifest(m: &ShardManifest) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, &m.name);
    put_u64(&mut out, m.dim as u64);
    put_u64(&mut out, m.shards.len() as u64);
    for s in &m.shards {
        put_str(&mut out, &s.file);
        put_u64(&mut out, s.train_len as u64);
        put_u64(&mut out, s.test_len as u64);
        put_u64(&mut out, s.classes.len() as u64);
        for &c in &s.classes {
            put_u64(&mut out, c as u64);
        }
    }
    out
}

fn decode_manifest(payload: &[u8], path: &Path) -> Result<ShardManifest, DataError> {
    let fail = |detail: String| DataError::Format {
        path: path.to_path_buf(),
        detail,
    };
    let mut r = Reader::new(payload);
    let name = r.string().map_err(fail)?;
    let dim = r.u64().map_err(fail)? as usize;
    let n_shards = r.counted(4).map_err(fail)?;
    let mut shards = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let file = r.string().map_err(fail)?;
        let train_len = r.u64().map_err(fail)? as usize;
        let test_len = r.u64().map_err(fail)? as usize;
        let n = r.counted(8).map_err(fail)?;
        let mut classes = Vec::with_capacity(n);
        for _ in 0..n {
            classes.push(r.u64().map_err(fail)? as usize);
        }
        shards.push(ShardMeta {
            file,
            train_len,
            test_len,
            classes,
        });
    }
    r.finish().map_err(fail)?;
    Ok(ShardManifest { name, dim, shards })
}

/// Writes the stream manifest under `dir`.
pub fn write_manifest(dir: &Path, m: &ShardManifest) -> Result<(), DataError> {
    let path = dir.join(MANIFEST_FILE);
    write_envelope(&path, MANIFEST_MAGIC, &encode_manifest(m)).map_err(|source| {
        DataError::Envelope {
            path: path.clone(),
            source,
        }
    })
}

/// Reads and validates the manifest of a shard directory.
pub fn read_manifest(dir: &Path) -> Result<ShardManifest, DataError> {
    let path = dir.join(MANIFEST_FILE);
    let payload = read_envelope(&path, MANIFEST_MAGIC).map_err(|source| DataError::Envelope {
        path: path.clone(),
        source,
    })?;
    decode_manifest(&payload, &path)
}

/// Materializes a [`TaskSequence`] as a shard directory: one durable
/// shard per increment plus the manifest (written last, so a complete
/// manifest implies complete shards). Returns the manifest.
pub fn write_shard_dir(dir: &Path, seq: &TaskSequence) -> Result<ShardManifest, DataError> {
    std::fs::create_dir_all(dir).map_err(|source| DataError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut shards = Vec::with_capacity(seq.len());
    for (idx, task) in seq.tasks.iter().enumerate() {
        let file = format!("task{idx:04}.shard");
        write_task_shard(&dir.join(&file), task)?;
        shards.push(ShardMeta {
            file,
            train_len: task.train.len(),
            test_len: task.test.len(),
            classes: task.classes.clone(),
        });
    }
    let manifest = ShardManifest {
        name: seq.name.clone(),
        dim: seq.tasks.first().map_or(0, |t| t.train.dim()),
        shards,
    };
    write_manifest(dir, &manifest)?;
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::rng::seeded;
    use edsr_wire::EnvelopeError;

    fn toy_task(seed: u64) -> Task {
        let mut rng = seeded(seed);
        let train = Dataset::new(
            "tr",
            Matrix::randn(7, 5, 1.0, &mut rng),
            vec![0, 0, 0, 1, 1, 1, 1],
        );
        let test = Dataset::new("te", Matrix::randn(3, 5, 1.0, &mut rng), vec![0, 1, 1]);
        Task {
            train,
            test,
            classes: vec![0, 1],
        }
    }

    fn toy_seq() -> TaskSequence {
        TaskSequence {
            name: "toy-stream".into(),
            tasks: (0..3).map(|i| toy_task(500 + i)).collect(),
        }
    }

    #[test]
    fn task_payload_round_trips_bit_identically() {
        let task = toy_task(510);
        let payload = encode_task(&task);
        let back = decode_task(&payload, Path::new("mem")).unwrap();
        assert_eq!(back.train.inputs.max_abs_diff(&task.train.inputs), 0.0);
        assert_eq!(back.test.inputs.max_abs_diff(&task.test.inputs), 0.0);
        assert_eq!(back.train.labels, task.train.labels);
        assert_eq!(back.test.labels, task.test.labels);
        assert_eq!(back.classes, task.classes);
        assert_eq!(back.train.name, "tr");
    }

    #[test]
    fn shard_file_round_trips() {
        let dir = std::env::temp_dir().join("edsr_shard_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("one.shard");
        let task = toy_task(511);
        write_task_shard(&path, &task).unwrap();
        let back = read_task_shard(&path).unwrap();
        assert_eq!(back.train.inputs.max_abs_diff(&task.train.inputs), 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_shard_is_a_structured_error() {
        let dir = std::env::temp_dir().join("edsr_shard_trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.shard");
        write_task_shard(&path, &toy_task(512)).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        match read_task_shard(&path) {
            Err(DataError::Envelope {
                source: EnvelopeError::Truncated { .. },
                ..
            }) => {}
            other => panic!("expected a truncation error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_shard_is_a_structured_error() {
        let dir = std::env::temp_dir().join("edsr_shard_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.shard");
        write_task_shard(&path, &toy_task(513)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match read_task_shard(&path) {
            Err(DataError::Envelope {
                source: EnvelopeError::Corrupt { .. },
                ..
            }) => {}
            other => panic!("expected a corruption error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_count_cannot_allocate() {
        // A payload claiming 2^60 classes must fail the bounds guard, not
        // attempt the allocation.
        let mut payload = encode_task(&toy_task(514));
        let n = payload.len();
        payload[n - 24..n - 16].copy_from_slice(&(1u64 << 60).to_le_bytes());
        match decode_task(&payload, Path::new("mem")) {
            Err(DataError::Format { .. }) => {}
            other => panic!("expected a format error, got {other:?}"),
        }
    }

    #[test]
    fn shard_dir_and_manifest_round_trip() {
        let dir = std::env::temp_dir().join("edsr_shard_dir_rt");
        std::fs::remove_dir_all(&dir).ok();
        let seq = toy_seq();
        let manifest = write_shard_dir(&dir, &seq).unwrap();
        assert_eq!(manifest.shards.len(), 3);
        assert_eq!(manifest.dim, 5);
        let back = read_manifest(&dir).unwrap();
        assert_eq!(back, manifest);
        for (i, meta) in back.shards.iter().enumerate() {
            assert_eq!(meta.train_len, seq.tasks[i].train.len());
            let task = read_task_shard(&back.shard_path(&dir, i)).unwrap();
            assert_eq!(
                task.train.inputs.max_abs_diff(&seq.tasks[i].train.inputs),
                0.0
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let dir = std::env::temp_dir().join("edsr_shard_magic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.shard");
        // A manifest envelope read as a shard must fail on magic alone.
        edsr_wire::write_envelope(&path, MANIFEST_MAGIC, b"zz").unwrap();
        match read_task_shard(&path) {
            Err(DataError::Envelope {
                source: EnvelopeError::BadMagic,
                ..
            }) => {}
            other => panic!("expected bad magic, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
