//! CSV import/export for [`Dataset`] — the bridge for running the library
//! on real data instead of the built-in synthetic benchmarks.
//!
//! Format: one sample per line, `label,f_0,f_1,…,f_{d-1}`; an optional
//! header line is detected (first field not parseable as an integer) and
//! skipped. Labels are non-negative integers; features are `f32`.

use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use edsr_tensor::Matrix;

use crate::dataset::Dataset;

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying file error.
    Io(std::io::Error),
    /// A line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The file contained no samples.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::Parse { line, message } => {
                write!(f, "csv parse error, line {line}: {message}")
            }
            CsvError::Empty => write!(f, "csv file contains no samples"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes `data` as `label,features…` lines (no header).
pub fn write_csv(data: &Dataset, path: impl AsRef<Path>) -> Result<(), CsvError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    for r in 0..data.len() {
        write!(w, "{}", data.labels[r])?;
        for &v in data.inputs.row(r) {
            write!(w, ",{v}")?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a dataset written by [`write_csv`] (or any `label,features…`
/// CSV). A header line is skipped if its first field is not an integer.
pub fn read_csv(name: &str, path: impl AsRef<Path>) -> Result<Dataset, CsvError> {
    let reader = BufReader::new(std::fs::File::open(path)?);
    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    let mut width: Option<usize> = None;

    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut fields = trimmed.split(',');
        let first = fields.next().unwrap_or("").trim();
        let label: usize = match first.parse() {
            Ok(l) => l,
            Err(_) if idx == 0 => continue, // header
            Err(_) => {
                return Err(CsvError::Parse {
                    line: line_no,
                    message: format!("label {first:?} is not a non-negative integer"),
                })
            }
        };
        let features: Result<Vec<f32>, _> = fields.map(|f| f.trim().parse::<f32>()).collect();
        let features = features.map_err(|e| CsvError::Parse {
            line: line_no,
            message: format!("feature parse failed: {e}"),
        })?;
        match width {
            None => width = Some(features.len()),
            Some(w) if w != features.len() => {
                return Err(CsvError::Parse {
                    line: line_no,
                    message: format!("expected {w} features, found {}", features.len()),
                })
            }
            _ => {}
        }
        labels.push(label);
        rows.push(features);
    }

    let Some(width) = width else {
        return Err(CsvError::Empty);
    };
    if width == 0 {
        return Err(CsvError::Parse {
            line: 1,
            message: "no feature columns".into(),
        });
    }
    let mut inputs = Matrix::zeros(rows.len(), width);
    for (r, row) in rows.iter().enumerate() {
        inputs.row_mut(r).copy_from_slice(row);
    }
    Ok(Dataset::new(name, inputs, labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("edsr-csv-{name}-{}.csv", std::process::id()));
        p
    }

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            Matrix::from_vec(3, 2, vec![1.0, 2.5, -3.0, 4.0, 0.0, 0.125]),
            vec![0, 1, 1],
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let d = toy();
        let path = tmp("roundtrip");
        write_csv(&d, &path).expect("write");
        let back = read_csv("toy", &path).expect("read");
        assert_eq!(back.len(), 3);
        assert_eq!(back.dim(), 2);
        assert_eq!(back.labels, d.labels);
        assert_eq!(back.inputs.max_abs_diff(&d.inputs), 0.0);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn header_line_is_skipped() {
        let path = tmp("header");
        std::fs::write(&path, "label,f0,f1\n0,1.0,2.0\n1,3.0,4.0\n").unwrap();
        let d = read_csv("h", &path).expect("read");
        assert_eq!(d.len(), 2);
        assert_eq!(d.labels, vec![0, 1]);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn ragged_rows_error_with_line_number() {
        let path = tmp("ragged");
        std::fs::write(&path, "0,1.0,2.0\n1,3.0\n").unwrap();
        let err = read_csv("r", &path).unwrap_err();
        match err {
            CsvError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other}"),
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bad_label_mid_file_errors() {
        let path = tmp("badlabel");
        std::fs::write(&path, "0,1.0\nx,2.0\n").unwrap();
        assert!(matches!(
            read_csv("b", &path),
            Err(CsvError::Parse { line: 2, .. })
        ));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_file_errors() {
        let path = tmp("empty");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(read_csv("e", &path), Err(CsvError::Empty)));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn blank_lines_are_ignored() {
        let path = tmp("blank");
        std::fs::write(&path, "0,1.0\n\n1,2.0\n\n").unwrap();
        let d = read_csv("b", &path).expect("read");
        assert_eq!(d.len(), 2);
        let _ = std::fs::remove_file(path);
    }
}
