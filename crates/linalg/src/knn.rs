//! Exact k-nearest-neighbour search.
//!
//! Two users in the reproduction:
//! - the **kNN classifier** over representations (the paper's evaluation
//!   protocol, after Wu et al. \[78\]) — see `edsr-cl::eval`;
//! - the **noise magnitude** `r(x^m)` (paper §III-B), the std of the
//!   representations of `x^m`'s k nearest neighbours in its source set.
//!
//! All searches go through the [`KnnQuery`] builder; the historical
//! free-function variants remain as deprecated one-line shims.
//!
//! Distance accumulation is SIMD-dispatched (`edsr_tensor::simd` via
//! [`crate::stats`]): every ISA computes the same canonical 8-lane-tree
//! reduction, so neighbor lists are bit-identical across `EDSR_ISA`
//! levels and thread counts (DESIGN.md §15).

use edsr_tensor::Matrix;

use crate::stats::{cosine_similarity, sq_euclidean};

/// Distance/similarity metric for neighbour search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Squared Euclidean distance (smaller = closer).
    Euclidean,
    /// Cosine similarity (larger = closer).
    Cosine,
}

/// One retrieved neighbour.
#[derive(Debug, Clone, Copy)]
pub struct Neighbor {
    /// Row index into the reference matrix.
    pub index: usize,
    /// Cosine similarity or squared Euclidean distance, per the metric.
    pub score: f32,
}

/// Minimum score count (`queries x reference rows`) before the batch is
/// dispatched to the `edsr-par` pool. Performance knob only: each query is
/// scored independently, so chunking cannot affect results.
const MIN_PAR_SCORES: usize = 16 * 1024;

/// A configured kNN search over a reference matrix: one builder replacing
/// the historical `knn_search{,_with_scratch,_into,_batch,_batch_into}`
/// quintet. Defaults: [`Metric::Euclidean`], no excluded row.
///
/// `k` is clamped to the number of eligible reference rows; results are
/// ordered from closest to farthest.
///
/// ```
/// use edsr_linalg::{KnnQuery, Metric};
/// use edsr_tensor::Matrix;
/// let reference = Matrix::from_rows(&[&[0.0], &[1.0], &[5.0]]);
/// let got = KnnQuery::new(&reference, 2).search(&[0.9]);
/// assert_eq!(got[0].index, 1);
/// assert_eq!(got[1].index, 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct KnnQuery<'a> {
    reference: &'a Matrix,
    k: usize,
    metric: Metric,
    exclude: Option<usize>,
}

impl<'a> KnnQuery<'a> {
    /// Starts a query for the `k` nearest rows of `reference`.
    pub fn new(reference: &'a Matrix, k: usize) -> Self {
        Self {
            reference,
            k,
            metric: Metric::Euclidean,
            exclude: None,
        }
    }

    /// Sets the metric (default [`Metric::Euclidean`]).
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Skips one reference row — used when the query itself is a member
    /// of the reference set.
    pub fn exclude(mut self, row: usize) -> Self {
        self.exclude = Some(row);
        self
    }

    /// Searches for the neighbours of a single query row.
    pub fn search(&self, query: &[f32]) -> Vec<Neighbor> {
        let mut scratch = Vec::new();
        self.search_with_scratch(query, &mut scratch)
    }

    /// [`search`](Self::search) scoring into a caller-provided scratch
    /// buffer, so repeated callers pay for the `O(reference rows)`
    /// candidate vector once instead of once per query. The scratch
    /// contents on entry are ignored.
    pub fn search_with_scratch(&self, query: &[f32], scratch: &mut Vec<Neighbor>) -> Vec<Neighbor> {
        let mut out = Vec::new();
        self.search_into(query, scratch, &mut out);
        out
    }

    /// [`search_with_scratch`](Self::search_with_scratch) writing the
    /// result into `out` (cleared first) so steady-state repeated
    /// searches make no heap allocations.
    pub fn search_into(&self, query: &[f32], scratch: &mut Vec<Neighbor>, out: &mut Vec<Neighbor>) {
        assert_eq!(
            self.reference.cols(),
            query.len(),
            "knn search: dimension mismatch"
        );
        scratch.clear();
        scratch.extend(
            (0..self.reference.rows())
                .filter(|&i| Some(i) != self.exclude)
                .map(|i| {
                    let score = match self.metric {
                        Metric::Euclidean => sq_euclidean(self.reference.row(i), query),
                        Metric::Cosine => cosine_similarity(self.reference.row(i), query),
                    };
                    Neighbor { index: i, score }
                }),
        );
        match self.metric {
            Metric::Euclidean => scratch.sort_by(|a, b| {
                a.score
                    .partial_cmp(&b.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }),
            Metric::Cosine => scratch.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }),
        }
        out.clear();
        out.extend_from_slice(&scratch[..self.k.min(scratch.len())]);
    }

    /// Batched search over every row of `queries`.
    ///
    /// Queries are data-parallel over the `edsr-par` pool; each worker
    /// chunk reuses one scratch buffer across its queries. Results are
    /// identical to the serial loop at every thread count.
    pub fn search_batch(&self, queries: &Matrix) -> Vec<Vec<Neighbor>> {
        let mut out = Vec::new();
        self.search_batch_into(queries, &mut out);
        out
    }

    /// [`search_batch`](Self::search_batch) writing into a caller-owned
    /// result buffer: the outer vector and every per-query inner vector
    /// keep their capacity from the previous call, so repeated batches
    /// (the evaluation loop) allocate nothing once warm.
    pub fn search_batch_into(&self, queries: &Matrix, out: &mut Vec<Vec<Neighbor>>) {
        let n = queries.rows();
        out.resize_with(n, Vec::new);
        let kernel = |range: std::ops::Range<usize>, chunk: &mut [Vec<Neighbor>]| {
            let mut scratch = Vec::with_capacity(self.reference.rows());
            for (local, q) in range.enumerate() {
                self.search_into(queries.row(q), &mut scratch, &mut chunk[local]);
            }
        };
        if n * self.reference.rows() >= MIN_PAR_SCORES && n > 1 {
            edsr_par::par_for_rows(out, n, kernel);
        } else {
            kernel(0..n, out);
        }
    }
}

/// Finds the `k` nearest rows of `reference` to `query`.
#[deprecated(
    since = "0.1.0",
    note = "use KnnQuery::new(reference, k).search(query)"
)]
pub fn knn_search(
    reference: &Matrix,
    query: &[f32],
    k: usize,
    metric: Metric,
    exclude: Option<usize>,
) -> Vec<Neighbor> {
    query_for(reference, k, metric, exclude).search(query)
}

/// [`KnnQuery::search_with_scratch`] as a free function.
#[deprecated(since = "0.1.0", note = "use KnnQuery::...::search_with_scratch")]
pub fn knn_search_with_scratch(
    reference: &Matrix,
    query: &[f32],
    k: usize,
    metric: Metric,
    exclude: Option<usize>,
    scratch: &mut Vec<Neighbor>,
) -> Vec<Neighbor> {
    query_for(reference, k, metric, exclude).search_with_scratch(query, scratch)
}

/// [`KnnQuery::search_into`] as a free function.
#[deprecated(since = "0.1.0", note = "use KnnQuery::...::search_into")]
#[allow(clippy::too_many_arguments)] // legacy signature, kept verbatim
pub fn knn_search_into(
    reference: &Matrix,
    query: &[f32],
    k: usize,
    metric: Metric,
    exclude: Option<usize>,
    scratch: &mut Vec<Neighbor>,
    out: &mut Vec<Neighbor>,
) {
    query_for(reference, k, metric, exclude).search_into(query, scratch, out)
}

/// [`KnnQuery::search_batch`] as a free function.
#[deprecated(since = "0.1.0", note = "use KnnQuery::...::search_batch")]
pub fn knn_search_batch(
    reference: &Matrix,
    queries: &Matrix,
    k: usize,
    metric: Metric,
) -> Vec<Vec<Neighbor>> {
    query_for(reference, k, metric, None).search_batch(queries)
}

/// [`KnnQuery::search_batch_into`] as a free function.
#[deprecated(since = "0.1.0", note = "use KnnQuery::...::search_batch_into")]
pub fn knn_search_batch_into(
    reference: &Matrix,
    queries: &Matrix,
    k: usize,
    metric: Metric,
    out: &mut Vec<Vec<Neighbor>>,
) {
    query_for(reference, k, metric, None).search_batch_into(queries, out)
}

/// Shared shim body: the legacy positional arguments as a builder.
fn query_for(reference: &Matrix, k: usize, metric: Metric, exclude: Option<usize>) -> KnnQuery<'_> {
    let q = KnnQuery::new(reference, k).metric(metric);
    match exclude {
        Some(row) => q.exclude(row),
        None => q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::rng::seeded;

    fn line_points() -> Matrix {
        // Points at x = 0, 1, 2, ..., 9 on a line.
        Matrix::from_vec(10, 2, (0..10).flat_map(|i| [i as f32, 0.0]).collect())
    }

    #[test]
    fn euclidean_orders_by_distance() {
        let reference = line_points();
        let got = KnnQuery::new(&reference, 3).search(&[3.2, 0.0]);
        assert_eq!(
            got.iter().map(|n| n.index).collect::<Vec<_>>(),
            vec![3, 4, 2]
        );
        assert!(got[0].score < got[1].score);
    }

    #[test]
    fn exclude_skips_self() {
        let reference = line_points();
        let got = KnnQuery::new(&reference, 2)
            .exclude(5)
            .search(reference.row(5));
        assert!(got.iter().all(|n| n.index != 5));
        assert_eq!(got[0].index.min(got[1].index), 4);
        assert_eq!(got[0].index.max(got[1].index), 6);
    }

    #[test]
    fn cosine_prefers_aligned() {
        let reference = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[-1.0, 0.0], &[0.7, 0.7]]);
        let got = KnnQuery::new(&reference, 2)
            .metric(Metric::Cosine)
            .search(&[1.0, 0.1]);
        assert_eq!(got[0].index, 0);
        assert!(got[0].score > 0.99);
    }

    #[test]
    fn k_clamped_to_population() {
        let reference = line_points();
        let got = KnnQuery::new(&reference, 100).search(&[0.0, 0.0]);
        assert_eq!(got.len(), 10);
    }

    #[test]
    fn batch_matches_single() {
        let mut rng = seeded(90);
        let reference = Matrix::randn(20, 4, 1.0, &mut rng);
        let queries = Matrix::randn(5, 4, 1.0, &mut rng);
        let query = KnnQuery::new(&reference, 3).metric(Metric::Cosine);
        let batch = query.search_batch(&queries);
        for (q, row) in batch.iter().enumerate() {
            let single = query.search(queries.row(q));
            assert_eq!(
                row.iter().map(|n| n.index).collect::<Vec<_>>(),
                single.iter().map(|n| n.index).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn batch_into_reuses_buffers_and_matches_batch() {
        let mut rng = seeded(91);
        let reference = Matrix::randn(20, 4, 1.0, &mut rng);
        let queries = Matrix::randn(5, 4, 1.0, &mut rng);
        let query = KnnQuery::new(&reference, 3);
        let fresh = query.search_batch(&queries);
        let mut out = Vec::new();
        query.search_batch_into(&queries, &mut out);
        let caps: Vec<usize> = out.iter().map(Vec::capacity).collect();
        query.search_batch_into(&queries, &mut out);
        for (row, cap) in out.iter().zip(&caps) {
            assert!(row.capacity() <= *cap, "inner buffer reallocated");
        }
        for (a, b) in out.iter().zip(&fresh) {
            assert_eq!(
                a.iter().map(|n| n.index).collect::<Vec<_>>(),
                b.iter().map(|n| n.index).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn zero_k_returns_empty() {
        let reference = line_points();
        assert!(KnnQuery::new(&reference, 0).search(&[0.0, 0.0]).is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_builder() {
        let mut rng = seeded(92);
        let reference = Matrix::randn(15, 3, 1.0, &mut rng);
        let queries = Matrix::randn(4, 3, 1.0, &mut rng);
        for metric in [Metric::Euclidean, Metric::Cosine] {
            let builder = KnnQuery::new(&reference, 4).metric(metric).exclude(2);
            let via_builder = builder.search(queries.row(0));
            let via_shim = knn_search(&reference, queries.row(0), 4, metric, Some(2));
            assert_eq!(
                via_builder.iter().map(|n| n.index).collect::<Vec<_>>(),
                via_shim.iter().map(|n| n.index).collect::<Vec<_>>()
            );
            let batch_builder = KnnQuery::new(&reference, 4).metric(metric);
            let a = batch_builder.search_batch(&queries);
            let b = knn_search_batch(&reference, &queries, 4, metric);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(
                    x.iter().map(|n| n.index).collect::<Vec<_>>(),
                    y.iter().map(|n| n.index).collect::<Vec<_>>()
                );
            }
        }
    }
}
