//! Exact k-nearest-neighbour search.
//!
//! Two users in the reproduction:
//! - the **kNN classifier** over representations (the paper's evaluation
//!   protocol, after Wu et al. \[78\]) — see `edsr-cl::eval`;
//! - the **noise magnitude** `r(x^m)` (paper §III-B), the std of the
//!   representations of `x^m`'s k nearest neighbours in its source set.

use edsr_tensor::Matrix;

use crate::stats::{cosine_similarity, sq_euclidean};

/// Distance/similarity metric for neighbour search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Squared Euclidean distance (smaller = closer).
    Euclidean,
    /// Cosine similarity (larger = closer).
    Cosine,
}

/// One retrieved neighbour.
#[derive(Debug, Clone, Copy)]
pub struct Neighbor {
    /// Row index into the reference matrix.
    pub index: usize,
    /// Cosine similarity or squared Euclidean distance, per the metric.
    pub score: f32,
}

/// Finds the `k` nearest rows of `reference` to `query` (a single row
/// slice), ordered from closest to farthest. `exclude` optionally skips one
/// reference row (used when the query itself is a member of the set).
///
/// `k` is clamped to the number of eligible reference rows.
///
/// ```
/// use edsr_linalg::{knn_search, Metric};
/// use edsr_tensor::Matrix;
/// let reference = Matrix::from_rows(&[&[0.0], &[1.0], &[5.0]]);
/// let got = knn_search(&reference, &[0.9], 2, Metric::Euclidean, None);
/// assert_eq!(got[0].index, 1);
/// assert_eq!(got[1].index, 0);
/// ```
pub fn knn_search(
    reference: &Matrix,
    query: &[f32],
    k: usize,
    metric: Metric,
    exclude: Option<usize>,
) -> Vec<Neighbor> {
    let mut scratch = Vec::new();
    knn_search_with_scratch(reference, query, k, metric, exclude, &mut scratch)
}

/// [`knn_search`] scoring into a caller-provided scratch buffer, so batched
/// callers pay for the `O(reference rows)` candidate vector once per worker
/// instead of once per query. The scratch contents on entry are ignored.
pub fn knn_search_with_scratch(
    reference: &Matrix,
    query: &[f32],
    k: usize,
    metric: Metric,
    exclude: Option<usize>,
    scratch: &mut Vec<Neighbor>,
) -> Vec<Neighbor> {
    let mut out = Vec::new();
    knn_search_into(reference, query, k, metric, exclude, scratch, &mut out);
    out
}

/// [`knn_search_with_scratch`] writing the result into `out` (cleared
/// first) so batched callers reuse the result vector's capacity too —
/// steady-state repeated searches make no heap allocations.
#[allow(clippy::too_many_arguments)] // scratch + out sink variant of knn_search
pub fn knn_search_into(
    reference: &Matrix,
    query: &[f32],
    k: usize,
    metric: Metric,
    exclude: Option<usize>,
    scratch: &mut Vec<Neighbor>,
    out: &mut Vec<Neighbor>,
) {
    assert_eq!(
        reference.cols(),
        query.len(),
        "knn_search: dimension mismatch"
    );
    scratch.clear();
    scratch.extend(
        (0..reference.rows())
            .filter(|&i| Some(i) != exclude)
            .map(|i| {
                let score = match metric {
                    Metric::Euclidean => sq_euclidean(reference.row(i), query),
                    Metric::Cosine => cosine_similarity(reference.row(i), query),
                };
                Neighbor { index: i, score }
            }),
    );
    match metric {
        Metric::Euclidean => scratch.sort_by(|a, b| {
            a.score
                .partial_cmp(&b.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        }),
        Metric::Cosine => scratch.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        }),
    }
    out.clear();
    out.extend_from_slice(&scratch[..k.min(scratch.len())]);
}

/// Minimum score count (`queries x reference rows`) before the batch is
/// dispatched to the `edsr-par` pool. Performance knob only: each query is
/// scored independently, so chunking cannot affect results.
const MIN_PAR_SCORES: usize = 16 * 1024;

/// Batched [`knn_search`] over every row of `queries`.
///
/// Queries are data-parallel over the `edsr-par` pool; each worker chunk
/// reuses one scratch buffer across its queries. Results are identical to
/// the serial loop at every thread count.
pub fn knn_search_batch(
    reference: &Matrix,
    queries: &Matrix,
    k: usize,
    metric: Metric,
) -> Vec<Vec<Neighbor>> {
    let mut out = Vec::new();
    knn_search_batch_into(reference, queries, k, metric, &mut out);
    out
}

/// [`knn_search_batch`] writing into a caller-owned result buffer: the
/// outer vector and every per-query inner vector keep their capacity from
/// the previous call, so repeated batches (the evaluation loop) allocate
/// nothing once warm.
pub fn knn_search_batch_into(
    reference: &Matrix,
    queries: &Matrix,
    k: usize,
    metric: Metric,
    out: &mut Vec<Vec<Neighbor>>,
) {
    let n = queries.rows();
    out.resize_with(n, Vec::new);
    let kernel = |range: std::ops::Range<usize>, chunk: &mut [Vec<Neighbor>]| {
        let mut scratch = Vec::with_capacity(reference.rows());
        for (local, q) in range.enumerate() {
            knn_search_into(
                reference,
                queries.row(q),
                k,
                metric,
                None,
                &mut scratch,
                &mut chunk[local],
            );
        }
    };
    if n * reference.rows() >= MIN_PAR_SCORES && n > 1 {
        edsr_par::par_for_rows(out, n, kernel);
    } else {
        kernel(0..n, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::rng::seeded;

    fn line_points() -> Matrix {
        // Points at x = 0, 1, 2, ..., 9 on a line.
        Matrix::from_vec(10, 2, (0..10).flat_map(|i| [i as f32, 0.0]).collect())
    }

    #[test]
    fn euclidean_orders_by_distance() {
        let reference = line_points();
        let got = knn_search(&reference, &[3.2, 0.0], 3, Metric::Euclidean, None);
        assert_eq!(
            got.iter().map(|n| n.index).collect::<Vec<_>>(),
            vec![3, 4, 2]
        );
        assert!(got[0].score < got[1].score);
    }

    #[test]
    fn exclude_skips_self() {
        let reference = line_points();
        let got = knn_search(&reference, reference.row(5), 2, Metric::Euclidean, Some(5));
        assert!(got.iter().all(|n| n.index != 5));
        assert_eq!(got[0].index.min(got[1].index), 4);
        assert_eq!(got[0].index.max(got[1].index), 6);
    }

    #[test]
    fn cosine_prefers_aligned() {
        let reference = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[-1.0, 0.0], &[0.7, 0.7]]);
        let got = knn_search(&reference, &[1.0, 0.1], 2, Metric::Cosine, None);
        assert_eq!(got[0].index, 0);
        assert!(got[0].score > 0.99);
    }

    #[test]
    fn k_clamped_to_population() {
        let reference = line_points();
        let got = knn_search(&reference, &[0.0, 0.0], 100, Metric::Euclidean, None);
        assert_eq!(got.len(), 10);
    }

    #[test]
    fn batch_matches_single() {
        let mut rng = seeded(90);
        let reference = Matrix::randn(20, 4, 1.0, &mut rng);
        let queries = Matrix::randn(5, 4, 1.0, &mut rng);
        let batch = knn_search_batch(&reference, &queries, 3, Metric::Cosine);
        for (q, row) in batch.iter().enumerate() {
            let single = knn_search(&reference, queries.row(q), 3, Metric::Cosine, None);
            assert_eq!(
                row.iter().map(|n| n.index).collect::<Vec<_>>(),
                single.iter().map(|n| n.index).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn batch_into_reuses_buffers_and_matches_batch() {
        let mut rng = seeded(91);
        let reference = Matrix::randn(20, 4, 1.0, &mut rng);
        let queries = Matrix::randn(5, 4, 1.0, &mut rng);
        let fresh = knn_search_batch(&reference, &queries, 3, Metric::Euclidean);
        let mut out = Vec::new();
        knn_search_batch_into(&reference, &queries, 3, Metric::Euclidean, &mut out);
        let caps: Vec<usize> = out.iter().map(Vec::capacity).collect();
        knn_search_batch_into(&reference, &queries, 3, Metric::Euclidean, &mut out);
        for (row, cap) in out.iter().zip(&caps) {
            assert!(row.capacity() <= *cap, "inner buffer reallocated");
        }
        for (a, b) in out.iter().zip(&fresh) {
            assert_eq!(
                a.iter().map(|n| n.index).collect::<Vec<_>>(),
                b.iter().map(|n| n.index).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn zero_k_returns_empty() {
        let reference = line_points();
        assert!(knn_search(&reference, &[0.0, 0.0], 0, Metric::Euclidean, None).is_empty());
    }
}
