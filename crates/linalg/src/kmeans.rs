//! Lloyd's k-means with k-means++ seeding.
//!
//! Used by two of the paper's baseline selectors (Table V): **Distant**
//! selects actual samples via the k-means++ seeding rule (maximally spread
//! points), and **K-means** stores the samples nearest to converged cluster
//! centers. Min-Var (Lin et al. \[61\]) also builds on these clusters.

// Multi-array parallel indexing is clearer with explicit loops here.
#![allow(clippy::needless_range_loop)]

use edsr_tensor::rng::{index, weighted_index};
use edsr_tensor::Matrix;
use rand::rngs::StdRng;

use crate::stats::sq_euclidean;

/// Minimum distance-evaluation count (`n x k x d`) before the assignment
/// step is dispatched to the `edsr-par` pool. Performance knob only: each
/// row's nearest center is computed independently, so chunking cannot
/// affect results.
const MIN_PAR_ASSIGN_WORK: usize = 16 * 1024;

/// Result of running k-means.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centers (`k x d`).
    pub centers: Matrix,
    /// Cluster assignment per input row.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f32,
    /// Iterations executed before convergence (or the cap).
    pub iterations: usize,
}

/// k-means++ seeding: returns `k` *row indices* of `x` chosen to be far
/// apart (D² sampling). This doubles as the paper's "Distant" selector.
///
/// # Panics
/// Panics if `k == 0` or `k > x.rows()`.
pub fn kmeanspp_indices(x: &Matrix, k: usize, rng: &mut StdRng) -> Vec<usize> {
    let n = x.rows();
    assert!(k > 0 && k <= n, "kmeanspp: k={k} out of range for n={n}");
    let mut chosen = Vec::with_capacity(k);
    chosen.push(index(rng, n));
    let mut d2: Vec<f32> = (0..n)
        .map(|i| sq_euclidean(x.row(i), x.row(chosen[0])))
        .collect();
    while chosen.len() < k {
        let next = weighted_index(rng, &d2);
        chosen.push(next);
        for i in 0..n {
            let d = sq_euclidean(x.row(i), x.row(next));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    chosen
}

/// Runs Lloyd's algorithm with k-means++ seeding.
///
/// Empty clusters are re-seeded to the point farthest from its center.
///
/// # Panics
/// Panics if `k == 0` or `k > x.rows()`.
pub fn kmeans(x: &Matrix, k: usize, max_iters: usize, rng: &mut StdRng) -> KMeansResult {
    let n = x.rows();
    let d = x.cols();
    assert!(k > 0 && k <= n, "kmeans: k={k} out of range for n={n}");

    let seeds = kmeanspp_indices(x, k, rng);
    let mut centers = x.select_rows(&seeds);
    let mut assignments = vec![0usize; n];
    let mut new_assignments = vec![0usize; n];
    let mut iterations = 0;

    for iter in 0..max_iters {
        iterations = iter + 1;
        // Assign: each row's nearest center, data-parallel over rows.
        {
            let centers = &centers;
            let kernel = |range: std::ops::Range<usize>, chunk: &mut [usize]| {
                for (local, i) in range.enumerate() {
                    let mut best = 0;
                    let mut best_d = f32::INFINITY;
                    for c in 0..k {
                        let dist = sq_euclidean(x.row(i), centers.row(c));
                        if dist < best_d {
                            best_d = dist;
                            best = c;
                        }
                    }
                    chunk[local] = best;
                }
            };
            if n * k * d >= MIN_PAR_ASSIGN_WORK && n > 1 {
                edsr_par::par_for_rows(&mut new_assignments, n, kernel);
            } else {
                kernel(0..n, &mut new_assignments);
            }
        }
        let mut changed = false;
        for i in 0..n {
            if assignments[i] != new_assignments[i] {
                assignments[i] = new_assignments[i];
                changed = true;
            }
        }
        if iter > 0 && !changed {
            break;
        }
        // Update.
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignments[i];
            counts[c] += 1;
            for (s, &v) in sums.row_mut(c).iter_mut().zip(x.row(i)) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed to the globally farthest point from its center.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = sq_euclidean(x.row(a), centers.row(assignments[a]));
                        let db = sq_euclidean(x.row(b), centers.row(assignments[b]));
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("n > 0");
                centers.copy_row_from(c, x, far);
            } else {
                let inv = 1.0 / counts[c] as f32;
                for (dst, &s) in centers.row_mut(c).iter_mut().zip(sums.row(c)) {
                    *dst = s * inv;
                }
            }
        }
    }

    let inertia = (0..n)
        .map(|i| sq_euclidean(x.row(i), centers.row(assignments[i])))
        .sum::<f32>();
    KMeansResult {
        centers,
        assignments,
        inertia,
        iterations,
    }
}

/// For each cluster center, the index of the nearest input row
/// (deduplicated, preserving center order). This realizes the paper's
/// "K-means" selector: *store the cluster centers* — as real samples, since
/// the memory must contain replayable inputs.
pub fn nearest_to_centers(x: &Matrix, centers: &Matrix) -> Vec<usize> {
    let mut out = Vec::with_capacity(centers.rows());
    for c in 0..centers.rows() {
        let mut best = None;
        let mut best_d = f32::INFINITY;
        for i in 0..x.rows() {
            if out.contains(&i) {
                continue;
            }
            let d = sq_euclidean(x.row(i), centers.row(c));
            if d < best_d {
                best_d = d;
                best = Some(i);
            }
        }
        if let Some(i) = best {
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::rng::seeded;

    /// Three well-separated blobs of 20 points each.
    fn blobs(seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        let mut x = Matrix::zeros(60, 2);
        for (b, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..20 {
                let r = b * 20 + i;
                x.set(r, 0, cx + edsr_tensor::rng::gaussian(&mut rng) * 0.3);
                x.set(r, 1, cy + edsr_tensor::rng::gaussian(&mut rng) * 0.3);
            }
        }
        x
    }

    #[test]
    fn recovers_blob_structure() {
        let x = blobs(70);
        let mut rng = seeded(71);
        let res = kmeans(&x, 3, 50, &mut rng);
        // Each blob should map to a single cluster.
        for b in 0..3 {
            let first = res.assignments[b * 20];
            assert!(
                res.assignments[b * 20..(b + 1) * 20]
                    .iter()
                    .all(|&a| a == first),
                "blob {b} split across clusters"
            );
        }
        assert!(res.inertia < 60.0 * 0.5, "inertia {}", res.inertia);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let x = blobs(72);
        let mut rng = seeded(73);
        let r1 = kmeans(&x, 1, 50, &mut rng);
        let r3 = kmeans(&x, 3, 50, &mut rng);
        assert!(r3.inertia < r1.inertia * 0.1);
    }

    #[test]
    fn kmeanspp_indices_distinct_and_spread() {
        let x = blobs(74);
        let mut rng = seeded(75);
        let idx = kmeanspp_indices(&x, 3, &mut rng);
        let mut sorted = idx.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
        // Should land one seed per blob with overwhelming probability.
        let mut blobs_hit = [false; 3];
        for &i in &idx {
            blobs_hit[i / 20] = true;
        }
        assert!(blobs_hit.iter().all(|&b| b), "seeds {idx:?} not spread");
    }

    #[test]
    fn nearest_to_centers_dedupes() {
        let x = blobs(76);
        let mut rng = seeded(77);
        let res = kmeans(&x, 3, 50, &mut rng);
        let idx = nearest_to_centers(&x, &res.centers);
        assert_eq!(idx.len(), 3);
        let mut s = idx.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn k_equals_n_zero_inertia() {
        let x = blobs(78);
        let mut rng = seeded(79);
        let res = kmeans(&x, 60, 30, &mut rng);
        assert!(res.inertia < 1e-3, "inertia {}", res.inertia);
    }

    #[test]
    fn assignments_in_range() {
        let x = blobs(80);
        let mut rng = seeded(81);
        let res = kmeans(&x, 5, 20, &mut rng);
        assert!(res.assignments.iter().all(|&a| a < 5));
        assert_eq!(res.assignments.len(), 60);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_k_panics() {
        let x = blobs(82);
        let mut rng = seeded(83);
        let _ = kmeans(&x, 0, 10, &mut rng);
    }
}
