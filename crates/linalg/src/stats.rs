//! Descriptive statistics and distance computations over row-sample
//! matrices (rows = samples, columns = features).

use edsr_tensor::Matrix;

/// Per-column mean as a `1 x d` row vector.
pub fn col_mean(x: &Matrix) -> Matrix {
    x.col_means()
}

/// Per-column standard deviation (population) as a `1 x d` row vector.
pub fn col_std(x: &Matrix) -> Matrix {
    let mean = x.col_means();
    let mut acc = Matrix::zeros(1, x.cols());
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            let d = x.get(r, c) - mean.get(0, c);
            acc.add_at(0, c, d * d);
        }
    }
    if x.rows() > 0 {
        acc.scale_inplace(1.0 / x.rows() as f32);
    }
    acc.map(f32::sqrt)
}

/// Mean of the per-column standard deviations: the scalar `Std(·)` used for
/// the paper's noise magnitude `r(x^m)` (a single scale for a set of
/// representations).
pub fn scalar_std(x: &Matrix) -> f32 {
    if x.rows() <= 1 {
        return 0.0;
    }
    col_std(x).mean()
}

/// Centers columns to zero mean; returns `(centered, mean)`.
pub fn center_columns(x: &Matrix) -> (Matrix, Matrix) {
    let mean = x.col_means();
    let mut out = x.clone();
    for r in 0..out.rows() {
        for c in 0..out.cols() {
            let v = out.get(r, c) - mean.get(0, c);
            out.set(r, c, v);
        }
    }
    (out, mean)
}

/// Standardizes columns to zero mean, unit variance (std floor `1e-6`).
pub fn standardize_columns(x: &Matrix) -> Matrix {
    let (centered, _) = center_columns(x);
    let std = col_std(x);
    let mut out = centered;
    for r in 0..out.rows() {
        for c in 0..out.cols() {
            let s = std.get(0, c).max(1e-6);
            let v = out.get(r, c) / s;
            out.set(r, c, v);
        }
    }
    out
}

/// Gram covariance `Cov(A) = AᵀA` as used by the paper's entropy estimate
/// (Eq. 14 context; note: *not* mean-centered).
pub fn gram_covariance(x: &Matrix) -> Matrix {
    x.transpose_matmul(x)
}

/// Mean-centered covariance `(X-μ)ᵀ(X-μ) / n`.
pub fn centered_covariance(x: &Matrix) -> Matrix {
    let (centered, _) = center_columns(x);
    let mut cov = centered.transpose_matmul(&centered);
    if x.rows() > 0 {
        cov.scale_inplace(1.0 / x.rows() as f32);
    }
    cov
}

/// Squared Euclidean distance between two equal-length slices.
///
/// SIMD-dispatched through [`edsr_tensor::simd`]: the accumulation order is
/// the canonical 8-lane interleaved tree, bit-identical at every ISA level
/// (DESIGN.md §15) — kNN neighbor lists therefore never depend on the host.
pub fn sq_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    edsr_tensor::simd::sq_euclidean(a, b)
}

/// Cosine similarity between two equal-length slices (0 when either is ~0).
///
/// Built from three canonical 8-lane-tree dot products (see
/// [`sq_euclidean`]), so it is likewise bit-identical across ISAs.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let dot = edsr_tensor::simd::dot(a, b);
    let na = edsr_tensor::simd::dot(a, a).sqrt();
    let nb = edsr_tensor::simd::dot(b, b).sqrt();
    let denom = na * nb;
    if denom < 1e-12 {
        0.0
    } else {
        dot / denom
    }
}

/// All pairwise squared Euclidean distances between rows of `a` and `b`
/// (`a.rows() x b.rows()`).
pub fn pairwise_sq_euclidean(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "pairwise distances need equal widths");
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            out.set(i, j, sq_euclidean(a.row(i), b.row(j)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::rng::seeded;

    #[test]
    fn col_mean_and_std_known() {
        let x = Matrix::from_vec(2, 2, vec![1.0, 10.0, 3.0, 20.0]);
        assert_eq!(col_mean(&x).data(), &[2.0, 15.0]);
        let s = col_std(&x);
        assert!((s.get(0, 0) - 1.0).abs() < 1e-6);
        assert!((s.get(0, 1) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn scalar_std_single_row_is_zero() {
        let x = Matrix::from_vec(1, 3, vec![5.0, -1.0, 2.0]);
        assert_eq!(scalar_std(&x), 0.0);
    }

    #[test]
    fn center_columns_zero_mean() {
        let mut rng = seeded(40);
        let x = Matrix::randn(20, 4, 2.0, &mut rng).map(|v| v + 7.0);
        let (c, mean) = center_columns(&x);
        assert!(c.col_means().data().iter().all(|m| m.abs() < 1e-4));
        assert!(mean.data().iter().all(|&m| (m - 7.0).abs() < 2.0));
    }

    #[test]
    fn standardize_unit_variance() {
        let mut rng = seeded(41);
        let x = Matrix::randn(200, 3, 5.0, &mut rng);
        let s = standardize_columns(&x);
        let std = col_std(&s);
        assert!(std.data().iter().all(|v| (v - 1.0).abs() < 1e-3), "{std:?}");
    }

    #[test]
    fn gram_covariance_is_symmetric_psd_diagonal() {
        let mut rng = seeded(42);
        let x = Matrix::randn(10, 5, 1.0, &mut rng);
        let g = gram_covariance(&x);
        assert_eq!(g.shape(), (5, 5));
        for i in 0..5 {
            assert!(g.get(i, i) >= 0.0);
            for j in 0..5 {
                assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gram_trace_monotone_under_subset() {
        // Tr(Cov(M')) <= Tr(Cov(M'')) for M' ⊂ M'' — the paper's entropy
        // monotonicity argument under Cov(A)=AᵀA.
        let mut rng = seeded(43);
        let x = Matrix::randn(12, 4, 1.0, &mut rng);
        let sub = x.select_rows(&[0, 2, 5]);
        assert!(gram_covariance(&sub).trace() <= gram_covariance(&x).trace() + 1e-5);
    }

    #[test]
    fn cosine_similarity_bounds_and_degenerate() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn pairwise_distances_diagonal_zero() {
        let mut rng = seeded(44);
        let x = Matrix::randn(6, 3, 1.0, &mut rng);
        let d = pairwise_sq_euclidean(&x, &x);
        for i in 0..6 {
            assert!(d.get(i, i).abs() < 1e-6);
        }
        assert!((d.get(0, 1) - d.get(1, 0)).abs() < 1e-5);
    }

    #[test]
    fn centered_covariance_of_constant_is_zero() {
        let x = Matrix::filled(10, 3, 4.2);
        let c = centered_covariance(&x);
        assert!(c.frobenius_norm() < 1e-6);
    }
}
