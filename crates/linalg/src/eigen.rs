//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA (and therefore the paper's entropy-based selection) needs the
//! spectrum of small covariance matrices (`d x d`, with `d` ≤ a few
//! hundred). Jacobi rotation is simple, numerically robust for symmetric
//! input, and fast enough at these sizes.

use edsr_tensor::Matrix;

/// Result of a symmetric eigendecomposition: `a = V diag(λ) Vᵀ`.
///
/// Eigenvalues are sorted in descending order; `vectors` stores the
/// corresponding eigenvectors as **columns**.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f32>,
    /// Eigenvectors as columns, aligned with `values`.
    pub vectors: Matrix,
}

/// Decomposes a symmetric matrix with cyclic Jacobi sweeps.
///
/// `a` is symmetrized defensively (`(A + Aᵀ)/2`) before iterating, so tiny
/// asymmetries from accumulated float error are tolerated.
///
/// # Panics
/// Panics if `a` is not square.
pub fn sym_eigen(a: &Matrix) -> SymEigen {
    assert_eq!(a.rows(), a.cols(), "sym_eigen: matrix must be square");
    let n = a.rows();
    if n == 0 {
        return SymEigen {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        };
    }

    // Work on a symmetrized copy.
    let mut m = a.zip_map(&a.transpose(), |x, y| 0.5 * (x + y));
    let mut v = Matrix::identity(n);

    let max_sweeps = 100;
    let tol = 1e-10_f32 * m.frobenius_norm().max(1.0);
    for _ in 0..max_sweeps {
        let mut off = 0.0_f32;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m.get(p, q).powi(2);
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-20 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = 0.5 * (aqq - app) / apq;
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply rotation J(p, q, θ) on both sides of m: m = Jᵀ m J.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate eigenvectors: v = v J.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    // Extract and sort descending.
    let mut pairs: Vec<(f32, usize)> = (0..n).map(|i| (m.get(i, i), i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let values: Vec<f32> = pairs.iter().map(|&(val, _)| val).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, new_col, v.get(r, old_col));
        }
    }
    SymEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::rng::seeded;

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        let a = Matrix::randn(n, n, 1.0, &mut rng);
        a.zip_map(&a.transpose(), |x, y| 0.5 * (x + y))
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let mut a = Matrix::zeros(3, 3);
        a.set(0, 0, 2.0);
        a.set(1, 1, 5.0);
        a.set(2, 2, -1.0);
        let e = sym_eigen(&a);
        assert!((e.values[0] - 5.0).abs() < 1e-5);
        assert!((e.values[1] - 2.0).abs() < 1e-5);
        assert!((e.values[2] + 1.0).abs() < 1e-5);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = sym_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-5);
        assert!((e.values[1] - 1.0).abs() < 1e-5);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = (e.vectors.get(0, 0), e.vectors.get(1, 0));
        assert!((v0.0.abs() - std::f32::consts::FRAC_1_SQRT_2).abs() < 1e-4);
        assert!((v0.0 - v0.1).abs() < 1e-4);
    }

    #[test]
    fn reconstruction() {
        let a = random_symmetric(6, 50);
        let e = sym_eigen(&a);
        // Rebuild V diag(λ) Vᵀ.
        let mut lam = Matrix::zeros(6, 6);
        for i in 0..6 {
            lam.set(i, i, e.values[i]);
        }
        let recon = e.vectors.matmul(&lam).matmul_transpose(&e.vectors);
        assert!(
            recon.max_abs_diff(&a) < 1e-4,
            "max diff {}",
            recon.max_abs_diff(&a)
        );
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = random_symmetric(8, 51);
        let e = sym_eigen(&a);
        let vtv = e.vectors.transpose_matmul(&e.vectors);
        assert!(vtv.max_abs_diff(&Matrix::identity(8)) < 1e-4);
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = random_symmetric(10, 52);
        let e = sym_eigen(&a);
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-6);
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = random_symmetric(7, 53);
        let e = sym_eigen(&a);
        let sum: f32 = e.values.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-3);
    }

    #[test]
    fn psd_gram_has_nonnegative_spectrum() {
        let mut rng = seeded(54);
        let x = Matrix::randn(20, 5, 1.0, &mut rng);
        let g = x.transpose_matmul(&x);
        let e = sym_eigen(&g);
        assert!(e.values.iter().all(|&v| v > -1e-3), "{:?}", e.values);
    }

    #[test]
    fn empty_matrix() {
        let e = sym_eigen(&Matrix::zeros(0, 0));
        assert!(e.values.is_empty());
    }
}
