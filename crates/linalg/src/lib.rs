//! # edsr-linalg
//!
//! Classical linear algebra and clustering substrate for the EDSR
//! reproduction: symmetric eigendecomposition (Jacobi), PCA and the
//! lossy-coding-length entropy estimate driving the paper's data selection
//! (§III-A), k-means / k-means++ (baseline selectors of Table V), exact
//! kNN search (evaluation protocol and the replay-noise magnitude of
//! §III-B), and sample statistics.

pub mod eigen;
pub mod kmeans;
pub mod knn;
pub mod pca;
pub mod stats;

pub use eigen::{sym_eigen, SymEigen};
pub use kmeans::{kmeans, kmeanspp_indices, nearest_to_centers, KMeansResult};
#[allow(deprecated)] // legacy free functions stay reachable during migration
pub use knn::{
    knn_search, knn_search_batch, knn_search_batch_into, knn_search_into, knn_search_with_scratch,
};
pub use knn::{KnnQuery, Metric, Neighbor};
pub use pca::{coding_length_entropy, coding_length_entropy_reference, trace_surrogate, Pca};

#[cfg(test)]
mod proptests {
    use super::*;
    use edsr_tensor::Matrix;
    use proptest::prelude::*;

    fn sample_matrix() -> impl Strategy<Value = Matrix> {
        (2usize..12, 2usize..6).prop_flat_map(|(n, d)| {
            proptest::collection::vec(-5.0f32..5.0, n * d)
                .prop_map(move |data| Matrix::from_vec(n, d, data))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn pca_spectrum_descending(x in sample_matrix()) {
            let pca = Pca::fit(&x, x.cols());
            for w in pca.explained_variance.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-4);
            }
            prop_assert!(pca.explained_variance.iter().all(|&v| v >= 0.0));
        }

        #[test]
        fn pca_components_orthonormal(x in sample_matrix()) {
            let pca = Pca::fit(&x, x.cols());
            let k = pca.n_components();
            let gram = pca.components.transpose_matmul(&pca.components);
            prop_assert!(gram.max_abs_diff(&Matrix::identity(k)) < 1e-2);
        }

        #[test]
        fn entropy_monotone_under_row_removal(x in sample_matrix()) {
            prop_assume!(x.rows() >= 3);
            let sub = x.select_rows(&(0..x.rows() - 1).collect::<Vec<_>>());
            let h_full = coding_length_entropy(&x, 0.5);
            let h_sub = coding_length_entropy(&sub, 0.5);
            prop_assert!(h_full >= h_sub - 1e-2, "H shrank: {} vs {}", h_full, h_sub);
        }

        #[test]
        fn trace_surrogate_additive(x in sample_matrix()) {
            let total = trace_surrogate(&x);
            let split: f32 = (0..x.rows())
                .map(|r| trace_surrogate(&x.select_rows(&[r])))
                .sum();
            let denom = 1.0f32.max(total.abs());
            prop_assert!(((total - split).abs() / denom) < 1e-3);
        }

        #[test]
        fn kmeans_centers_within_data_bounds(x in sample_matrix()) {
            let mut rng = edsr_tensor::rng::seeded(7);
            let k = 2.min(x.rows());
            let res = kmeans(&x, k, 20, &mut rng);
            // Means of subsets cannot escape the per-coordinate data range.
            for c in 0..res.centers.rows() {
                for j in 0..x.cols() {
                    let lo = (0..x.rows()).map(|r| x.get(r, j)).fold(f32::INFINITY, f32::min);
                    let hi = (0..x.rows()).map(|r| x.get(r, j)).fold(f32::NEG_INFINITY, f32::max);
                    let v = res.centers.get(c, j);
                    prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4);
                }
            }
        }

        #[test]
        fn knn_first_neighbor_is_self_when_included(x in sample_matrix()) {
            let row0: Vec<f32> = x.row(0).to_vec();
            let got = KnnQuery::new(&x, 1).search(&row0);
            prop_assert!(got[0].score <= 1e-6);
        }

        /// Determinism contract (DESIGN.md §9): batched kNN returns
        /// identical neighbours (indices and score bits) at every thread
        /// count.
        #[test]
        fn knn_batch_bit_identical_across_thread_counts(x in sample_matrix()) {
            let query = KnnQuery::new(&x, 3);
            let serial = edsr_par::with_threads(1, || query.search_batch(&x));
            for threads in [2usize, 7] {
                let par = edsr_par::with_threads(threads, || query.search_batch(&x));
                prop_assert_eq!(serial.len(), par.len());
                for (s_row, p_row) in serial.iter().zip(&par) {
                    prop_assert_eq!(s_row.len(), p_row.len());
                    for (s, p) in s_row.iter().zip(p_row) {
                        prop_assert_eq!(s.index, p.index);
                        prop_assert_eq!(s.score.to_bits(), p.score.to_bits());
                    }
                }
            }
        }

        /// Determinism contract (DESIGN.md §9): the chunked covariance
        /// reduction in `Pca::fit` is bit-identical at every thread count.
        #[test]
        fn pca_fit_bit_identical_across_thread_counts(x in sample_matrix()) {
            let serial = edsr_par::with_threads(1, || Pca::fit(&x, x.cols()));
            for threads in [2usize, 7] {
                let par = edsr_par::with_threads(threads, || Pca::fit(&x, x.cols()));
                let same = serial
                    .components
                    .data()
                    .iter()
                    .zip(par.components.data())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                prop_assert!(same, "components differ at {} threads", threads);
                for (a, b) in serial.explained_variance.iter().zip(&par.explained_variance) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }
}
