//! Principal Component Analysis and the lossy-coding-length entropy
//! estimate (paper §III-A).
//!
//! PCA here serves two roles in the reproduction:
//! 1. the *practical* reading of Eq. 15 — "maximize the sum of singular
//!    values of M̂ via PCA" — used by the high-entropy selector, and
//! 2. the entropy estimate `H(M)` itself (lossy coding length, after
//!    Ma et al. and Liu et al. \[66\], \[67\]).

use edsr_tensor::{Matrix, Scratch};

use crate::eigen::sym_eigen;

/// Fixed sample-chunk height of the parallel covariance reduction in
/// [`Pca::fit`]. Chunk boundaries depend only on the sample count and this
/// constant — never on the thread count — and the per-chunk partial
/// covariances are folded in ascending chunk order, so the float summation
/// tree (and therefore every bit of the result) is the same at any
/// `EDSR_THREADS` (DESIGN.md §9).
const COV_CHUNK_ROWS: usize = 64;

/// A fitted PCA model.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Column means of the training data (`1 x d`).
    pub mean: Matrix,
    /// Principal directions as **columns** (`d x k`), descending variance.
    pub components: Matrix,
    /// Variance captured by each component, descending.
    pub explained_variance: Vec<f32>,
}

impl Pca {
    /// Fits PCA on `x` (rows = samples), keeping at most `k` components.
    ///
    /// `k` is clamped to `min(d, requested)`. Components with numerically
    /// negative variance (Jacobi noise) are clamped to zero variance.
    pub fn fit(x: &Matrix, k: usize) -> Pca {
        Self::fit_with_scratch(x, k, &mut Scratch::new())
    }

    /// [`fit`](Self::fit) with the centered-data and covariance working
    /// buffers drawn from a caller-provided [`Scratch`] pool, so repeated
    /// fits (e.g. a greedy selection loop) reuse them instead of
    /// reallocating. Bit-identical to [`fit`](Self::fit).
    pub fn fit_with_scratch(x: &Matrix, k: usize, scratch: &mut Scratch) -> Pca {
        let d = x.cols();
        let k = k.min(d);
        let n = x.rows();
        let mean = x.col_means();
        let mut centered = scratch.take_copy(x);
        for r in 0..n {
            for (v, &m) in centered.row_mut(r).iter_mut().zip(mean.row(0)) {
                *v -= m;
            }
        }
        // Scatter matrix Σ xᵢᵀxᵢ as a chunked parallel reduction: partial
        // sums over fixed `COV_CHUNK_ROWS`-sample chunks, folded serially
        // in chunk order (see `COV_CHUNK_ROWS` for the determinism
        // argument). All chunk accumulators live in one pooled matrix
        // (row `ci` = chunk `ci`'s `d x d` partial) hoisted out of the
        // chunk loop, so repeated fits reuse a single buffer instead of
        // allocating per chunk; the inner row update is the dispatched
        // SIMD axpy (elementwise — order-preserving).
        let mut cov = scratch.take_matrix(d, d);
        if n > 0 && d > 0 {
            let n_chunks = n.div_ceil(COV_CHUNK_ROWS);
            let mut partials = scratch.take_matrix(n_chunks, d * d);
            let centered_ref = &centered;
            edsr_par::par_for_rows(partials.data_mut(), n_chunks, |chunks, out| {
                for (local, ci) in chunks.enumerate() {
                    let acc = &mut out[local * d * d..(local + 1) * d * d];
                    let lo = ci * COV_CHUNK_ROWS;
                    let hi = n.min(lo + COV_CHUNK_ROWS);
                    for i in lo..hi {
                        let xi = centered_ref.row(i);
                        for (p, &a) in xi.iter().enumerate() {
                            edsr_tensor::simd::axpy(&mut acc[p * d..(p + 1) * d], xi, a);
                        }
                    }
                }
            });
            for ci in 0..n_chunks {
                edsr_tensor::simd::add_assign(cov.data_mut(), partials.row(ci));
            }
            scratch.give_matrix(partials);
        }
        if n > 1 {
            cov.scale_inplace(1.0 / (n as f32 - 1.0));
        }
        let eig = sym_eigen(&cov);
        scratch.give_matrix(centered);
        scratch.give_matrix(cov);
        let mut components = Matrix::zeros(d, k);
        let mut explained = Vec::with_capacity(k);
        for j in 0..k {
            for r in 0..d {
                components.set(r, j, eig.vectors.get(r, j));
            }
            explained.push(eig.values[j].max(0.0));
        }
        Pca {
            mean,
            components,
            explained_variance: explained,
        }
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.cols()
    }

    /// Projects samples into the component space (`n x k` scores).
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.mean.cols(), "transform: dimension mismatch");
        let mut centered = x.clone();
        for r in 0..centered.rows() {
            for c in 0..centered.cols() {
                let v = centered.get(r, c) - self.mean.get(0, c);
                centered.set(r, c, v);
            }
        }
        centered.matmul(&self.components)
    }

    /// Fraction of total variance captured by the retained components.
    pub fn explained_variance_ratio(&self, total_variance: f32) -> f32 {
        if total_variance <= 0.0 {
            return 0.0;
        }
        self.explained_variance.iter().sum::<f32>() / total_variance
    }
}

/// Lossy-coding-length entropy of a representation set `M̂` (paper Eq.
/// before (14)):
///
/// `H(M) = (|M| + d)/2 · log det(I_d + d/(|M| ε²) · M̂ᵀM̂)`
///
/// The determinant over the `|M| x |M|` Gram matrix in the paper equals the
/// determinant over the `d x d` Gram by Sylvester's identity; we use the
/// `d x d` form, which is cheaper whenever `|M| > d`.
pub fn coding_length_entropy(reps: &Matrix, eps: f32) -> f32 {
    let n = reps.rows();
    let d = reps.cols();
    if n == 0 || d == 0 {
        return 0.0;
    }
    let scale = d as f32 / (n as f32 * eps * eps);
    let mut gram = reps.transpose_matmul(reps);
    gram.scale_inplace(scale);
    for i in 0..d {
        gram.add_at(i, i, 1.0);
    }
    let eig = sym_eigen(&gram);
    let log_det: f32 = eig.values.iter().map(|&v| v.max(1e-12).ln()).sum();
    0.5 * (n + d) as f32 * log_det
}

/// The trace surrogate of Eq. 15: `Tr(Cov(M̂)) = Tr(M̂ᵀM̂) = Σ ‖row‖²`.
pub fn trace_surrogate(reps: &Matrix) -> f32 {
    reps.data().iter().map(|v| v * v).sum()
}

/// Reference implementation of [`coding_length_entropy`] using the
/// paper's literal `|M| x |M|` Gram form
/// (`H = (|M|+d)/2 · log det(I_{|M|} + d/(|M|ε²)·M̂M̂ᵀ)`).
///
/// `O(n³)` — used to validate the `d x d` fast path (equal by Sylvester's
/// determinant identity); prefer [`coding_length_entropy`].
pub fn coding_length_entropy_reference(reps: &Matrix, eps: f32) -> f32 {
    let n = reps.rows();
    let d = reps.cols();
    if n == 0 || d == 0 {
        return 0.0;
    }
    let scale = d as f32 / (n as f32 * eps * eps);
    let mut gram = reps.matmul_transpose(reps);
    gram.scale_inplace(scale);
    for i in 0..n {
        gram.add_at(i, i, 1.0);
    }
    let eig = sym_eigen(&gram);
    let log_det: f32 = eig.values.iter().map(|&v| v.max(1e-12).ln()).sum();
    0.5 * (n + d) as f32 * log_det
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::rng::seeded;

    /// Builds data stretched along a known direction.
    fn anisotropic_data(n: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        let mut x = Matrix::zeros(n, 3);
        for r in 0..n {
            let t = edsr_tensor::rng::gaussian(&mut rng) * 5.0; // dominant axis
            let u = edsr_tensor::rng::gaussian(&mut rng) * 0.5;
            let w = edsr_tensor::rng::gaussian(&mut rng) * 0.1;
            // dominant direction = (1, 1, 0)/√2
            x.set(r, 0, t / 2f32.sqrt() + w);
            x.set(r, 1, t / 2f32.sqrt() - w);
            x.set(r, 2, u);
        }
        x
    }

    #[test]
    fn first_component_finds_dominant_direction() {
        let x = anisotropic_data(500, 60);
        let pca = Pca::fit(&x, 2);
        let c0 = (
            pca.components.get(0, 0),
            pca.components.get(1, 0),
            pca.components.get(2, 0),
        );
        let expected = std::f32::consts::FRAC_1_SQRT_2;
        assert!((c0.0.abs() - expected).abs() < 0.05, "{c0:?}");
        assert!((c0.1.abs() - expected).abs() < 0.05, "{c0:?}");
        assert!(c0.2.abs() < 0.1, "{c0:?}");
    }

    #[test]
    fn explained_variance_descending_and_positive() {
        let x = anisotropic_data(300, 61);
        let pca = Pca::fit(&x, 3);
        for w in pca.explained_variance.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(pca.explained_variance[0] > pca.explained_variance[2] * 10.0);
    }

    #[test]
    fn transform_shape_and_variance() {
        let x = anisotropic_data(200, 62);
        let pca = Pca::fit(&x, 2);
        let scores = pca.transform(&x);
        assert_eq!(scores.shape(), (200, 2));
        // Score columns should be zero-mean.
        assert!(scores.col_means().data().iter().all(|m| m.abs() < 0.2));
    }

    #[test]
    fn k_clamped_to_dimension() {
        let x = anisotropic_data(50, 63);
        let pca = Pca::fit(&x, 99);
        assert_eq!(pca.n_components(), 3);
    }

    #[test]
    fn components_orthonormal() {
        let x = anisotropic_data(100, 64);
        let pca = Pca::fit(&x, 3);
        let gram = pca.components.transpose_matmul(&pca.components);
        assert!(gram.max_abs_diff(&Matrix::identity(3)) < 1e-3);
    }

    #[test]
    fn fit_with_scratch_matches_fit_and_reuses_buffers() {
        let x = anisotropic_data(128, 69);
        let plain = Pca::fit(&x, 3);
        let mut scratch = Scratch::new();
        let pooled = Pca::fit_with_scratch(&x, 3, &mut scratch);
        assert_eq!(plain.mean.max_abs_diff(&pooled.mean), 0.0);
        assert_eq!(plain.components.max_abs_diff(&pooled.components), 0.0);
        assert_eq!(plain.explained_variance, pooled.explained_variance);
        // Warm pool: further fits take every working buffer from it.
        let misses = scratch.misses();
        let _ = Pca::fit_with_scratch(&x, 3, &mut scratch);
        let _ = Pca::fit_with_scratch(&x, 3, &mut scratch);
        assert_eq!(scratch.misses(), misses, "warm fit hit the allocator");
    }

    #[test]
    fn entropy_monotone_in_subset() {
        let mut rng = seeded(65);
        let x = Matrix::randn(30, 6, 1.0, &mut rng);
        let sub = x.select_rows(&(0..10).collect::<Vec<_>>());
        let h_all = coding_length_entropy(&x, 0.5);
        let h_sub = coding_length_entropy(&sub, 0.5);
        assert!(h_all > h_sub, "H(all)={h_all} H(sub)={h_sub}");
    }

    #[test]
    fn entropy_prefers_diverse_sets() {
        let mut rng = seeded(66);
        // Diverse: isotropic Gaussian; Clumped: same norm, single direction.
        let diverse = Matrix::randn(20, 5, 1.0, &mut rng);
        let mut clumped = Matrix::zeros(20, 5);
        for r in 0..20 {
            clumped.set(
                r,
                0,
                diverse.row(r).iter().map(|v| v * v).sum::<f32>().sqrt(),
            );
        }
        let h_div = coding_length_entropy(&diverse, 0.5);
        let h_clu = coding_length_entropy(&clumped, 0.5);
        assert!(h_div > h_clu, "H(diverse)={h_div} H(clumped)={h_clu}");
    }

    #[test]
    fn entropy_of_empty_is_zero() {
        assert_eq!(coding_length_entropy(&Matrix::zeros(0, 4), 0.5), 0.0);
    }

    #[test]
    fn fast_entropy_matches_gram_reference() {
        // Sylvester's identity: det(I_d + AᵀA·s) == det(I_n + AAᵀ·s).
        let mut rng = seeded(68);
        for (n, d) in [(12usize, 5usize), (4, 9), (7, 7)] {
            let x = Matrix::randn(n, d, 1.0, &mut rng);
            let fast = coding_length_entropy(&x, 0.5);
            let reference = coding_length_entropy_reference(&x, 0.5);
            let denom = 1.0f32.max(reference.abs());
            assert!(
                ((fast - reference).abs() / denom) < 1e-2,
                "{n}x{d}: fast {fast} vs reference {reference}"
            );
        }
    }

    #[test]
    fn trace_surrogate_equals_sum_row_norms_sq() {
        let mut rng = seeded(67);
        let x = Matrix::randn(10, 4, 1.0, &mut rng);
        let expected: f32 = (0..10)
            .map(|r| x.row(r).iter().map(|v| v * v).sum::<f32>())
            .sum();
        assert!((trace_surrogate(&x) - expected).abs() < 1e-4);
    }
}
