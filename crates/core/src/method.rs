//! EDSR — the paper's method (§III-C, Fig. 2).
//!
//! Training stage: `L_css` on the new increment, `½(L_dis(x_1)+L_dis(x_2))`
//! distillation on the new increment (the CaSSLe-style anchor), and
//! `½ L_rpl` noise-enhanced distillation replay on the stored memory.
//! Selecting stage: extract un-augmented representations with the
//! optimized model, run entropy-based selection, compute each stored
//! sample's kNN-std noise magnitude, and append to the memory.
//!
//! The configuration also exposes every ablation the paper evaluates:
//! replay-loss choice (Table IV), selection strategy (Table V), noise
//! neighbourhood size (Fig. 6), and the §IV-F similarity-weighted replay
//! extension.

use edsr_cl::memory::{MemoryBuffer, MemoryItem};
use edsr_cl::model::{ContinualModel, FrozenModel};
use edsr_cl::trainer::{apply_step, Method};
use edsr_data::{Augmenter, Dataset};
use edsr_linalg::stats::{cosine_similarity, scalar_std};
use edsr_nn::{Optimizer, Workspace};
use edsr_tensor::Matrix;
use rand::rngs::StdRng;

use crate::noise::noise_magnitudes;
use crate::select::{SelectionContext, SelectionStrategy};

/// How the stored data are replayed (Table IV's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayLoss {
    /// No replay at all (the memory is still selected; equivalent to
    /// CaSSLe when `distill_new = true`).
    None,
    /// Replay directly through `L_css` on two augmented memory views (the
    /// over-fitting ablation).
    Css,
    /// Distillation replay without noise (`L_dis`).
    Dis,
    /// EDSR's noise-enhanced distillation replay (`L_rpl`, Eq. 16).
    Rpl,
}

impl ReplayLoss {
    /// Display name used by the Table-IV harness.
    pub fn name(&self) -> &'static str {
        match self {
            ReplayLoss::None => "No Replay",
            ReplayLoss::Css => "L_css",
            ReplayLoss::Dis => "L_dis",
            ReplayLoss::Rpl => "L_rpl",
        }
    }
}

/// How memory samples are drawn each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplaySampling {
    /// Uniform without replacement (the paper's default).
    Uniform,
    /// §IV-F extension: sample proportionally to the stored
    /// representation's similarity to the current batch.
    SimilarityWeighted,
}

/// Full EDSR configuration.
#[derive(Debug, Clone)]
pub struct EdsrConfig {
    /// Memory budget `s` per increment.
    pub per_task_budget: usize,
    /// Memory samples replayed per step.
    pub replay_batch: usize,
    /// Neighbour count for `r(x)` (0 ⇒ `L_rpl` degenerates to `L_dis`).
    pub noise_neighbors: usize,
    /// Selection strategy (Table V).
    pub selection: SelectionStrategy,
    /// Replay loss (Table IV).
    pub replay_loss: ReplayLoss,
    /// Replay sampling rule.
    pub replay_sampling: ReplaySampling,
    /// Keep the CaSSLe-style distillation on *new* data (the paper's full
    /// objective includes it; disable to isolate replay).
    pub distill_new: bool,
    /// Views of the train split drawn per sample when estimating Min-Var's
    /// augmentation variance.
    pub min_var_views: usize,
}

impl EdsrConfig {
    /// The paper's default EDSR: high-entropy selection, noise-enhanced
    /// replay, uniform sampling, distillation on new data.
    pub fn paper_default(
        per_task_budget: usize,
        replay_batch: usize,
        noise_neighbors: usize,
    ) -> Self {
        Self {
            per_task_budget,
            replay_batch,
            noise_neighbors,
            selection: SelectionStrategy::HighEntropy,
            replay_loss: ReplayLoss::Rpl,
            replay_sampling: ReplaySampling::Uniform,
            distill_new: true,
            min_var_views: 4,
        }
    }
}

/// The EDSR method.
pub struct Edsr {
    cfg: EdsrConfig,
    memory: MemoryBuffer,
    frozen: Option<FrozenModel>,
}

impl Edsr {
    /// Creates EDSR from a configuration.
    pub fn new(cfg: EdsrConfig) -> Self {
        Self {
            cfg,
            memory: MemoryBuffer::new(),
            frozen: None,
        }
    }

    /// Convenience: the paper's default configuration.
    pub fn paper_default(
        per_task_budget: usize,
        replay_batch: usize,
        noise_neighbors: usize,
    ) -> Self {
        Self::new(EdsrConfig::paper_default(
            per_task_budget,
            replay_batch,
            noise_neighbors,
        ))
    }

    /// Stored sample count.
    pub fn memory_len(&self) -> usize {
        self.memory.len()
    }

    /// Read-only view of the memory (diagnostics / tests).
    pub fn memory(&self) -> &MemoryBuffer {
        &self.memory
    }

    /// The active configuration.
    pub fn config(&self) -> &EdsrConfig {
        &self.cfg
    }

    /// Draws memory groups per the configured sampling rule. For
    /// similarity weighting, each item's weight is the cosine similarity
    /// (shifted ≥ 0) between its stored representation and the mean
    /// current-batch representation.
    fn draw_memory(
        &self,
        model: &ContinualModel,
        batch: &Matrix,
        task_idx: usize,
        rng: &mut StdRng,
    ) -> Vec<edsr_cl::memory::MemoryBatch> {
        match self.cfg.replay_sampling {
            // With a shared adapter, draw one merged batch: batch-statistic
            // losses (BarlowTwins) degenerate on tiny per-task groups.
            ReplaySampling::Uniform if model.encoder.num_adapters() == 1 => self
                .memory
                .sample_merged(self.cfg.replay_batch, rng)
                .into_iter()
                .collect(),
            ReplaySampling::Uniform => self.memory.sample_grouped(self.cfg.replay_batch, rng),
            ReplaySampling::SimilarityWeighted => {
                let batch_reps = model.represent(batch, task_idx);
                let mean_rep = batch_reps.col_means();
                let weights: Vec<f32> = self
                    .memory
                    .items()
                    .iter()
                    .map(|item| match &item.stored_features {
                        Some(rep) => 1.0 + cosine_similarity(rep, mean_rep.row(0)),
                        None => 1.0,
                    })
                    .collect();
                if model.encoder.num_adapters() == 1 {
                    // Shared adapter: one merged batch (batch-statistic
                    // losses degenerate on tiny per-task groups).
                    self.memory
                        .sample_weighted_merged(self.cfg.replay_batch, &weights, rng)
                        .into_iter()
                        .collect()
                } else {
                    self.memory
                        .sample_weighted_grouped(self.cfg.replay_batch, &weights, rng)
                }
            }
        }
    }
}

impl Method for Edsr {
    fn name(&self) -> String {
        match (self.cfg.selection, self.cfg.replay_loss) {
            (SelectionStrategy::HighEntropy, ReplayLoss::Rpl) => "EDSR".into(),
            (sel, rpl) => format!("EDSR[{},{}]", sel.name(), rpl.name()),
        }
    }

    fn begin_task(
        &mut self,
        model: &mut ContinualModel,
        task_idx: usize,
        _train: &Dataset,
        _rng: &mut StdRng,
    ) {
        if task_idx > 0 {
            self.frozen = Some(model.freeze());
        }
    }

    fn train_step(
        &mut self,
        model: &mut ContinualModel,
        opt: &mut dyn Optimizer,
        augs: &[Augmenter],
        batch: &Matrix,
        task_idx: usize,
        ws: &mut Workspace,
        rng: &mut StdRng,
    ) -> f32 {
        let aug = &augs[task_idx.min(augs.len() - 1)];
        let (x1, x2) = aug.two_views(batch, rng);
        ws.reset();
        let (z1, z2, mut loss) =
            model.css_on_views(&mut ws.tape, &mut ws.binder, &x1, &x2, task_idx);
        // The tape is eager, so each term's scalar is readable the moment
        // its node exists; behind the `enabled()` gate this costs nothing
        // when observability is off (zero_alloc.rs covers this step).
        let obs_on = edsr_obs::enabled();
        if obs_on {
            edsr_obs::gauge_at(
                "loss/css",
                task_idx as u64,
                f64::from(ws.tape.value(loss).get(0, 0)),
            );
        }

        if let Some(frozen) = &self.frozen {
            // ½(L_dis(x_1) + L_dis(x_2)) on the new increment. Frozen
            // forwards are recorded on the auxiliary tape so their targets
            // stay pool-backed; the main tape borrows them by value ref.
            if self.cfg.distill_new {
                let t1 = frozen.represent_on(&mut ws.aux_tape, &mut ws.aux_binder, &x1, task_idx);
                let t2 = frozen.represent_on(&mut ws.aux_tape, &mut ws.aux_binder, &x2, task_idx);
                let d1 = model.distill.distill_loss(
                    &mut ws.tape,
                    &mut ws.binder,
                    &model.params,
                    &model.ssl,
                    z1,
                    ws.aux_tape.value(t1),
                );
                let d2 = model.distill.distill_loss(
                    &mut ws.tape,
                    &mut ws.binder,
                    &model.params,
                    &model.ssl,
                    z2,
                    ws.aux_tape.value(t2),
                );
                let d = ws.tape.add(d1, d2);
                let d = ws.tape.scale(d, 0.5);
                if obs_on {
                    edsr_obs::gauge_at(
                        "loss/dis",
                        task_idx as u64,
                        f64::from(ws.tape.value(d).get(0, 0)),
                    );
                }
                loss = ws.tape.add(loss, d);
            }

            // ½ L_rpl on the stored data.
            if self.cfg.replay_loss != ReplayLoss::None && !self.memory.is_empty() {
                let mut rpl_sum = 0.0f64;
                for group in self.draw_memory(model, batch, task_idx, rng) {
                    // Old data is augmented by its source increment's own
                    // view generator.
                    let mem_aug = &augs[group.task.min(augs.len() - 1)];
                    let term = match self.cfg.replay_loss {
                        ReplayLoss::None => unreachable!("filtered above"),
                        ReplayLoss::Css => {
                            let (m1, m2) = mem_aug.two_views(&group.inputs, rng);
                            let (_, _, l) = model.css_on_views(
                                &mut ws.tape,
                                &mut ws.binder,
                                &m1,
                                &m2,
                                group.task,
                            );
                            l
                        }
                        ReplayLoss::Dis | ReplayLoss::Rpl => {
                            let m1 = mem_aug.view_batch(&group.inputs, rng);
                            let zm = model.repr_var(&mut ws.tape, &mut ws.binder, &m1, group.task);
                            let target = frozen.represent_on(
                                &mut ws.aux_tape,
                                &mut ws.aux_binder,
                                &m1,
                                group.task,
                            );
                            let zeros;
                            let scales: &[f32] = if self.cfg.replay_loss == ReplayLoss::Rpl {
                                &group.noise_scales
                            } else {
                                zeros = vec![0.0; group.noise_scales.len()];
                                &zeros
                            };
                            model.distill.replay_loss(
                                &mut ws.tape,
                                &mut ws.binder,
                                &model.params,
                                &model.ssl,
                                zm,
                                ws.aux_tape.value(target),
                                scales,
                                rng,
                            )
                        }
                    };
                    let term = ws.tape.scale(term, 0.5);
                    if obs_on {
                        rpl_sum += f64::from(ws.tape.value(term).get(0, 0));
                    }
                    loss = ws.tape.add(loss, term);
                }
                if obs_on {
                    edsr_obs::gauge_at("loss/rpl", task_idx as u64, rpl_sum);
                }
            }
        }
        apply_step(model, opt, &mut ws.tape, &ws.binder, loss)
    }

    fn end_task(
        &mut self,
        model: &mut ContinualModel,
        task_idx: usize,
        train: &Dataset,
        aug: &Augmenter,
        rng: &mut StdRng,
    ) {
        let budget = self.cfg.per_task_budget.min(train.len());
        if budget == 0 {
            return;
        }
        // Selecting stage: un-augmented representations from f̂.
        let reps = model.represent(&train.inputs, task_idx);

        // Min-Var needs the augmented-view representation spread.
        let aug_std: Option<Vec<f32>> = if self.cfg.selection == SelectionStrategy::MinVar {
            let views = self.cfg.min_var_views.max(2);
            Some(
                (0..train.len())
                    .map(|i| {
                        let row = train.inputs.select_rows(&[i]);
                        let mut view_reps = Matrix::zeros(views, model.repr_dim());
                        for v in 0..views {
                            let view = aug.view_batch(&row, rng);
                            let rep = model.represent(&view, task_idx);
                            view_reps.row_mut(v).copy_from_slice(rep.row(0));
                        }
                        scalar_std(&view_reps)
                    })
                    .collect(),
            )
        } else {
            None
        };

        let ctx = SelectionContext {
            reps: &reps,
            aug_view_std: aug_std.as_deref(),
            cluster_hint: train.classes().len().max(1),
        };
        let selected = self.cfg.selection.select(&ctx, budget, rng);
        let scales = noise_magnitudes(&reps, &selected, self.cfg.noise_neighbors);
        if edsr_obs::enabled() {
            edsr_obs::gauge_at("memory/stored", task_idx as u64, selected.len() as f64);
            edsr_obs::gauge_at(
                "select/entropy",
                task_idx as u64,
                crate::select::trace_cov(&reps, &selected),
            );
        }

        self.memory
            .extend(selected.iter().zip(&scales).map(|(&i, &scale)| MemoryItem {
                input: train.inputs.row(i).to_vec(),
                task: task_idx,
                noise_scale: scale,
                // Cache the selection-time representation for similarity-
                // weighted replay.
                stored_features: Some(reps.row(i).to_vec()),
            }));
    }

    // The episodic memory (inputs, noise magnitudes, cached selection-time
    // representations) is the only persistent state: the frozen model is
    // refreshed from the live weights in `begin_task`, which resume
    // re-runs at the increment boundary.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.memory.to_bytes())
    }

    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        self.memory = MemoryBuffer::from_bytes(state).map_err(|e| e.to_string())?;
        Ok(())
    }

    // Serve snapshots bundle the cached selection-time representations so
    // the server can answer kNN queries against replay memory without
    // re-encoding the stored inputs. The representation width is inferred
    // from the memory itself: every item stores its feature vector at
    // selection time, all in the model's `repr_dim`.
    fn replay_representations(&self) -> Option<(Matrix, Vec<u64>)> {
        let dim = self
            .memory
            .items()
            .iter()
            .find_map(|item| item.stored_features.as_ref().map(Vec::len))?;
        Some(edsr_cl::memory_representations(&self.memory, dim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_cl::model::ModelConfig;
    use edsr_data::GridSpec;
    use edsr_tensor::rng::seeded;

    fn setup(seed: u64) -> (ContinualModel, edsr_nn::Sgd, Augmenter, Dataset) {
        let mut rng = seeded(seed);
        let model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
        let opt = edsr_nn::Sgd::new(0.05, 0.9, 0.0);
        let aug = Augmenter::standard_image(GridSpec::new(4, 4, 1));
        let train = Dataset::new(
            "d",
            Matrix::randn(24, 16, 1.0, &mut rng),
            (0..24).map(|i| i % 2).collect(),
        );
        (model, opt, aug, train)
    }

    #[test]
    fn selection_stores_budget_with_noise_scales() {
        let (mut model, _opt, aug, train) = setup(430);
        let mut rng = seeded(431);
        let mut edsr = Edsr::paper_default(6, 4, 5);
        edsr.end_task(&mut model, 0, &train, &aug, &mut rng);
        assert_eq!(edsr.memory_len(), 6);
        assert!(
            edsr.memory().items().iter().any(|i| i.noise_scale > 0.0),
            "no noise scales computed"
        );
        assert!(edsr
            .memory()
            .items()
            .iter()
            .all(|i| i.stored_features.is_some()));
    }

    #[test]
    fn zero_neighbors_stores_zero_scales() {
        let (mut model, _opt, aug, train) = setup(432);
        let mut rng = seeded(433);
        let mut edsr = Edsr::paper_default(6, 4, 0);
        edsr.end_task(&mut model, 0, &train, &aug, &mut rng);
        assert!(edsr.memory().items().iter().all(|i| i.noise_scale == 0.0));
    }

    #[test]
    fn full_two_task_cycle_runs_all_loss_paths() {
        for replay in [
            ReplayLoss::None,
            ReplayLoss::Css,
            ReplayLoss::Dis,
            ReplayLoss::Rpl,
        ] {
            let (mut model, mut opt, aug, train) = setup(434);
            let mut rng = seeded(435);
            let mut ws = Workspace::new();
            let mut cfg = EdsrConfig::paper_default(6, 4, 3);
            cfg.replay_loss = replay;
            let mut edsr = Edsr::new(cfg);

            edsr.begin_task(&mut model, 0, &train, &mut rng);
            let batch = train.inputs.select_rows(&(0..8).collect::<Vec<_>>());
            let l0 = edsr.train_step(
                &mut model,
                &mut opt,
                std::slice::from_ref(&aug),
                &batch,
                0,
                &mut ws,
                &mut rng,
            );
            assert!(l0.is_finite(), "{:?} task0 loss", replay);
            edsr.end_task(&mut model, 0, &train, &aug, &mut rng);

            edsr.begin_task(&mut model, 1, &train, &mut rng);
            let l1 = edsr.train_step(
                &mut model,
                &mut opt,
                std::slice::from_ref(&aug),
                &batch,
                1,
                &mut ws,
                &mut rng,
            );
            assert!(l1.is_finite(), "{:?} task1 loss", replay);
        }
    }

    #[test]
    fn name_reflects_configuration() {
        assert_eq!(Edsr::paper_default(4, 4, 5).name(), "EDSR");
        let mut cfg = EdsrConfig::paper_default(4, 4, 5);
        cfg.selection = SelectionStrategy::Random;
        cfg.replay_loss = ReplayLoss::Dis;
        assert_eq!(Edsr::new(cfg).name(), "EDSR[Random,L_dis]");
    }

    #[test]
    fn min_var_selection_path_runs() {
        let (mut model, _opt, aug, train) = setup(436);
        let mut rng = seeded(437);
        let mut cfg = EdsrConfig::paper_default(4, 4, 3);
        cfg.selection = SelectionStrategy::MinVar;
        cfg.min_var_views = 2;
        let mut edsr = Edsr::new(cfg);
        edsr.end_task(&mut model, 0, &train, &aug, &mut rng);
        assert_eq!(edsr.memory_len(), 4);
    }

    #[test]
    fn similarity_weighted_replay_runs() {
        let (mut model, mut opt, aug, train) = setup(438);
        let mut rng = seeded(439);
        let mut ws = Workspace::new();
        let mut cfg = EdsrConfig::paper_default(6, 4, 3);
        cfg.replay_sampling = ReplaySampling::SimilarityWeighted;
        let mut edsr = Edsr::new(cfg);
        edsr.begin_task(&mut model, 0, &train, &mut rng);
        edsr.end_task(&mut model, 0, &train, &aug, &mut rng);
        edsr.begin_task(&mut model, 1, &train, &mut rng);
        let batch = train.inputs.select_rows(&(0..8).collect::<Vec<_>>());
        let l = edsr.train_step(
            &mut model,
            &mut opt,
            std::slice::from_ref(&aug),
            &batch,
            1,
            &mut ws,
            &mut rng,
        );
        assert!(l.is_finite());
    }

    #[test]
    fn no_replay_before_first_selection() {
        // On the first increment there is no frozen model and no memory:
        // the step must be pure L_css (loss ≥ −1 for SimSiam).
        let (mut model, mut opt, aug, train) = setup(440);
        let mut rng = seeded(441);
        let mut ws = Workspace::new();
        let mut edsr = Edsr::paper_default(6, 4, 3);
        edsr.begin_task(&mut model, 0, &train, &mut rng);
        let batch = train.inputs.select_rows(&(0..8).collect::<Vec<_>>());
        let l = edsr.train_step(
            &mut model,
            &mut opt,
            std::slice::from_ref(&aug),
            &batch,
            0,
            &mut ws,
            &mut rng,
        );
        assert!(l >= -1.0 - 1e-4, "first-task loss had extra terms: {l}");
    }
}
