//! # edsr-core
//!
//! The paper's contribution: **E**ffective **D**ata **S**election and
//! **R**eplay for unsupervised continual learning (ICDE 2024).
//!
//! - [`select`]: entropy-based data selection (Eq. 12–15) and the Table-V
//!   baseline selectors.
//! - [`noise`]: the kNN-std replay-noise magnitude `r(x^m)` (§III-B).
//! - [`method`]: the [`Edsr`] continual-learning method (Fig. 2) with all
//!   ablation switches (replay loss, selection strategy, neighbour count,
//!   similarity-weighted replay).
//! - [`config`]: one [`EnvConfig`] reader for every env-var/CLI knob
//!   (`EDSR_THREADS`, `EDSR_OBS`, `--checkpoint`, …; CLI > env > default).
//!
//! This crate also re-exports the substrate crates as a facade, so
//! `edsr_core::prelude::*` is enough to run experiments.

pub mod baselines;
pub mod config;
pub mod error;
pub mod method;
pub mod noise;
pub mod select;

pub use baselines::{CompEmb, R2r};
pub use config::EnvConfig;
pub use error::Error;
pub use method::{Edsr, EdsrConfig, ReplayLoss, ReplaySampling};
pub use noise::noise_magnitudes;
pub use select::{table5_strategies, trace_cov, SelectionContext, SelectionStrategy};

/// One-stop imports for examples and experiment binaries.
pub mod prelude {
    pub use crate::{
        CompEmb, Edsr, EdsrConfig, EnvConfig, Error, R2r, ReplayLoss, ReplaySampling,
        SelectionStrategy,
    };
    pub use edsr_cl::{
        image_augmenters, run_multitask, tabular_augmenters, Cassle, CheckpointConfig,
        ContinualModel, Der, Finetune, Lump, Method, ModelConfig, NoopObserver, Observer,
        RunBuilder, RunOptions, RunResult, Si, StepRecord, TrainConfig, TrainError,
    };
    #[allow(deprecated)] // legacy entry points stay reachable during migration
    pub use edsr_cl::{run_sequence, run_sequence_with};
    pub use edsr_data::{
        build_scenario, cifar100_sim, cifar10_sim, domainnet_sim, test_sim, tiny_imagenet_sim,
        write_scenario, ShardStream, TaskSource, SCENARIO_NAMES,
    };
    pub use edsr_ssl::SslVariant;
    pub use edsr_tensor::rng::seeded;
}

#[cfg(test)]
mod proptests;
