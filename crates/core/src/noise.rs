//! The replay-noise magnitude `r(x^m)` (paper §III-B).
//!
//! For each stored sample, `r(x^m)` is the standard deviation of the
//! representations of its `k` nearest neighbours inside the increment it
//! was selected from — a data-dependent scale that relates the sample to
//! its augmentation-overlapping neighbourhood \[71\].

use edsr_linalg::stats::scalar_std;
use edsr_linalg::KnnQuery;
use edsr_tensor::Matrix;

/// Computes `r(x^m)` for each selected row.
///
/// `all_reps` are the representations `X̂ⁿ` of the full increment;
/// `selected` indexes the stored subset. `k = 0` returns all-zero
/// magnitudes (the `L_dis` ablation: Fig. 6's "0 neighbours" point).
///
/// When the observability layer is on, each magnitude lands in the
/// `noise/r` histogram and the batch mean/max in `noise/r_mean` /
/// `noise/r_max` — the distribution of the paper's noise scale before the
/// per-draw `N(0, σ)` factor is applied.
pub fn noise_magnitudes(all_reps: &Matrix, selected: &[usize], k: usize) -> Vec<f32> {
    if k == 0 {
        return vec![0.0; selected.len()];
    }
    let mut scratch = Vec::with_capacity(all_reps.rows());
    let mut neighbors = Vec::with_capacity(k);
    let mags: Vec<f32> = selected
        .iter()
        .map(|&idx| {
            KnnQuery::new(all_reps, k).exclude(idx).search_into(
                all_reps.row(idx),
                &mut scratch,
                &mut neighbors,
            );
            if neighbors.is_empty() {
                return 0.0;
            }
            let rows: Vec<usize> = neighbors.iter().map(|n| n.index).collect();
            scalar_std(&all_reps.select_rows(&rows))
        })
        .collect();
    if edsr_obs::enabled() && !mags.is_empty() {
        let mut sum = 0.0f64;
        let mut max = f64::NEG_INFINITY;
        for (i, &r) in mags.iter().enumerate() {
            let r = f64::from(r);
            edsr_obs::histogram_at("noise/r", i as u64, r);
            sum += r;
            max = max.max(r);
        }
        edsr_obs::gauge("noise/r_mean", sum / mags.len() as f64);
        edsr_obs::gauge("noise/r_max", max);
    }
    mags
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::rng::seeded;

    #[test]
    fn zero_k_disables_noise() {
        let mut rng = seeded(420);
        let reps = Matrix::randn(10, 4, 1.0, &mut rng);
        assert_eq!(noise_magnitudes(&reps, &[0, 3, 7], 0), vec![0.0; 3]);
    }

    #[test]
    fn magnitude_scales_with_neighborhood_spread() {
        // Sample 0 sits in a tight cluster; sample 10 in a loose one.
        let mut rng = seeded(421);
        let mut reps = Matrix::zeros(20, 3);
        for r in 0..10 {
            for c in 0..3 {
                reps.set(r, c, edsr_tensor::rng::gaussian(&mut rng) * 0.01);
            }
        }
        for r in 10..20 {
            for c in 0..3 {
                reps.set(r, c, 50.0 + edsr_tensor::rng::gaussian(&mut rng) * 2.0);
            }
        }
        let mags = noise_magnitudes(&reps, &[0, 10], 5);
        assert!(
            mags[1] > mags[0] * 10.0,
            "loose {} vs tight {}",
            mags[1],
            mags[0]
        );
    }

    #[test]
    fn excludes_self_from_neighborhood() {
        // One far outlier: its kNN std reflects the cluster it is far
        // from, not zero (which self-inclusion with k=1 could produce).
        let mut reps = Matrix::zeros(5, 2);
        reps.set(4, 0, 100.0);
        for r in 0..4 {
            reps.set(r, 0, r as f32);
        }
        let mags = noise_magnitudes(&reps, &[4], 3);
        assert!(mags[0] > 0.0, "self-exclusion failed: {mags:?}");
    }

    #[test]
    fn single_neighbor_gives_zero_std() {
        let mut rng = seeded(422);
        let reps = Matrix::randn(3, 2, 1.0, &mut rng);
        let mags = noise_magnitudes(&reps, &[0], 1);
        assert_eq!(mags[0], 0.0);
    }

    #[test]
    fn k_clamps_to_population() {
        let mut rng = seeded(423);
        let reps = Matrix::randn(4, 2, 1.0, &mut rng);
        let mags = noise_magnitudes(&reps, &[1], 100);
        assert!(mags[0].is_finite());
    }
}
