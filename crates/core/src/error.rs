//! The workspace-level error type.
//!
//! Experiment binaries and examples funnel every substrate failure —
//! training, checkpoint I/O, data loading, plain I/O — into one
//! [`Error`] so `main` can return `Result<(), edsr_core::Error>` and the
//! `?` operator works across crate boundaries.

use std::fmt;

use edsr_cl::TrainError;
use edsr_nn::CheckpointError;

/// Any failure an EDSR experiment can surface.
#[derive(Debug)]
pub enum Error {
    /// The training runtime failed (divergence, bad config, …).
    Train(TrainError),
    /// Checkpoint I/O failed outside a run (direct save/load calls).
    Checkpoint(CheckpointError),
    /// Data loading / parsing failed.
    Data(String),
    /// Invalid process configuration (env var or CLI flag; see
    /// [`crate::EnvConfig`]).
    Config(String),
    /// Plain I/O (result files, directories).
    Io(std::io::Error),
    /// A parallel worker panicked (payload text from
    /// `edsr_par::catch_panic`).
    Worker(String),
    /// The distributed-training layer failed (stringified
    /// `edsr_dist::DistError`; kept as text so `edsr-core` stays below
    /// `edsr-dist` in the dependency graph).
    Dist(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Train(e) => write!(f, "training: {e}"),
            Error::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            Error::Data(msg) => write!(f, "data: {msg}"),
            Error::Config(msg) => write!(f, "config: {msg}"),
            Error::Io(e) => write!(f, "io: {e}"),
            Error::Worker(msg) => write!(f, "parallel worker panicked: {msg}"),
            Error::Dist(msg) => write!(f, "dist: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Train(e) => Some(e),
            Error::Checkpoint(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Data(_) | Error::Config(_) | Error::Worker(_) | Error::Dist(_) => None,
        }
    }
}

impl From<TrainError> for Error {
    fn from(e: TrainError) -> Self {
        Error::Train(e)
    }
}

impl From<CheckpointError> for Error {
    fn from(e: CheckpointError) -> Self {
        Error::Checkpoint(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<edsr_data::CsvError> for Error {
    fn from(e: edsr_data::CsvError) -> Self {
        Error::Data(e.to_string())
    }
}

impl From<edsr_data::DataError> for Error {
    fn from(e: edsr_data::DataError) -> Self {
        Error::Data(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: Error = TrainError::InvalidConfig("x".into()).into();
        assert!(e.to_string().contains("training"));
        let e: Error = CheckpointError::BadMagic.into();
        assert!(e.to_string().contains("checkpoint"));
        let e: Error = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("io"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
