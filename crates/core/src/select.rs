//! Data selection (paper §III-A and Table V).
//!
//! The paper's contribution is **high-entropy selection**: Eq. 12–15
//! reduce memory selection to maximizing `Tr(Cov(M̂))`, realized "via PCA"
//! over the representations of the just-learned increment. Both readings
//! of Eq. 15 are implemented ([`SelectionStrategy::HighEntropy`] — the PCA
//! practice — and [`SelectionStrategy::TraceGreedy`] — the literal trace
//! maximizer), alongside the Table-V baselines (Random, Distant, K-means,
//! Min-Var).

// Multi-array parallel indexing is clearer with explicit loops here.
#![allow(clippy::needless_range_loop)]

use edsr_linalg::{kmeans, kmeanspp_indices, nearest_to_centers, Pca};
use edsr_tensor::rng::sample_indices;
use edsr_tensor::Matrix;
use rand::rngs::StdRng;

/// Inputs to a selection pass, produced at the paper's "selecting stage":
/// representations of the increment's train split, extracted by the
/// freshly optimized model `f̂` *without augmentation*.
#[derive(Debug)]
pub struct SelectionContext<'a> {
    /// Representations `X̂ⁿ` (`n x d`).
    pub reps: &'a Matrix,
    /// Per-sample std across augmented-view representations (Min-Var's
    /// criterion \[61\]); `None` falls back to distance-to-center.
    pub aug_view_std: Option<&'a [f32]>,
    /// Cluster-count hint for Min-Var ("the same amount of clusters as
    /// the number of classes" — the benchmark's classes-per-task).
    pub cluster_hint: usize,
}

/// The selection strategies of Table V plus the literal Eq. 15 reading.
///
/// ```
/// use edsr_core::{SelectionContext, SelectionStrategy};
/// use edsr_tensor::{rng::seeded, Matrix};
/// let reps = Matrix::randn(20, 4, 1.0, &mut seeded(1));
/// let ctx = SelectionContext { reps: &reps, aug_view_std: None, cluster_hint: 2 };
/// let picked = SelectionStrategy::HighEntropy.select(&ctx, 5, &mut seeded(2));
/// assert_eq!(picked.len(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Uniform random (LUMP/DER's storage rule).
    Random,
    /// Maximally spread samples via k-means++ seeding \[79\].
    Distant,
    /// Samples nearest to k-means cluster centers \[80\].
    KMeans,
    /// Lin et al. \[61\]: class-count clusters, minimal augmented-view
    /// representation variance within each.
    MinVar,
    /// EDSR's entropy-based selection — PCA reading of Eq. 15.
    HighEntropy,
    /// Literal Eq. 15: top squared-representation-norm samples.
    TraceGreedy,
}

impl SelectionStrategy {
    /// Display name used in the Table-V harness.
    pub fn name(&self) -> &'static str {
        match self {
            SelectionStrategy::Random => "Random",
            SelectionStrategy::Distant => "Distant",
            SelectionStrategy::KMeans => "K-means",
            SelectionStrategy::MinVar => "Min-Var",
            SelectionStrategy::HighEntropy => "High Entropy",
            SelectionStrategy::TraceGreedy => "Trace Greedy",
        }
    }

    /// Selects up to `budget` distinct row indices of `ctx.reps`.
    ///
    /// Returns fewer than `budget` only when the population is smaller.
    pub fn select(
        &self,
        ctx: &SelectionContext<'_>,
        budget: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        let n = ctx.reps.rows();
        let budget = budget.min(n);
        if budget == 0 {
            return Vec::new();
        }
        match self {
            SelectionStrategy::Random => sample_indices(rng, n, budget),
            SelectionStrategy::Distant => kmeanspp_indices(ctx.reps, budget, rng),
            SelectionStrategy::KMeans => {
                let result = kmeans(ctx.reps, budget, 50, rng);
                let mut chosen = nearest_to_centers(ctx.reps, &result.centers);
                fill_random(&mut chosen, n, budget, rng);
                chosen
            }
            SelectionStrategy::MinVar => select_min_var(ctx, budget, rng),
            SelectionStrategy::HighEntropy => select_high_entropy(ctx.reps, budget, rng),
            SelectionStrategy::TraceGreedy => select_trace_greedy(ctx.reps, budget),
        }
    }
}

/// `Tr(Cov)` of the selected rows of `reps` — the entropy surrogate the
/// paper maximizes (Eq. 15 discussion): `(1/n)Σ‖x_i‖² − ‖μ‖²`.
pub fn trace_cov(reps: &Matrix, rows: &[usize]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let n = rows.len() as f64;
    let mut mean = vec![0.0f64; reps.cols()];
    let mut sq = 0.0f64;
    for &r in rows {
        for (m, &v) in mean.iter_mut().zip(reps.row(r)) {
            *m += f64::from(v);
        }
        sq += reps
            .row(r)
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum::<f64>();
    }
    let mean_sq: f64 = mean.iter().map(|m| (m / n) * (m / n)).sum();
    sq / n - mean_sq
}

/// Tops `chosen` up to `budget` with unused random indices (selection
/// methods based on clustering can return fewer after deduplication).
fn fill_random(chosen: &mut Vec<usize>, n: usize, budget: usize, rng: &mut StdRng) {
    if chosen.len() >= budget {
        chosen.truncate(budget);
        return;
    }
    let mut pool: Vec<usize> = (0..n).filter(|i| !chosen.contains(i)).collect();
    edsr_tensor::rng::shuffle(rng, &mut pool);
    chosen.extend(pool.into_iter().take(budget - chosen.len()));
}

/// Min-Var \[61\]: cluster into `cluster_hint` groups; inside each, prefer
/// the samples whose augmented views vary least (most augmentation-stable
/// representations), round-robin across clusters until the budget fills.
fn select_min_var(ctx: &SelectionContext<'_>, budget: usize, rng: &mut StdRng) -> Vec<usize> {
    let n = ctx.reps.rows();
    let k = ctx.cluster_hint.clamp(1, n);
    let clustering = kmeans(ctx.reps, k, 50, rng);

    // Order each cluster's members by ascending instability.
    let score = |i: usize| -> f32 {
        match ctx.aug_view_std {
            Some(stds) => stds[i],
            None => {
                // Fallback: distance to own center (central = stable).
                edsr_linalg::stats::sq_euclidean(
                    ctx.reps.row(i),
                    clustering.centers.row(clustering.assignments[i]),
                )
            }
        }
    };
    let mut per_cluster: Vec<Vec<usize>> = vec![Vec::new(); k];
    for i in 0..n {
        per_cluster[clustering.assignments[i]].push(i);
    }
    for members in &mut per_cluster {
        members.sort_by(|&a, &b| {
            score(a)
                .partial_cmp(&score(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }

    let mut chosen = Vec::with_capacity(budget);
    let mut round = 0;
    while chosen.len() < budget {
        let mut advanced = false;
        for members in &per_cluster {
            if chosen.len() == budget {
                break;
            }
            if let Some(&idx) = members.get(round) {
                chosen.push(idx);
                advanced = true;
            }
        }
        if !advanced {
            break;
        }
        round += 1;
    }
    fill_random(&mut chosen, n, budget, rng);
    chosen
}

/// EDSR's high-entropy selection: fit PCA on the representations, then
/// walk the principal components in descending-variance order, each time
/// taking the not-yet-chosen sample with the largest squared projection on
/// that component — the subset that best preserves the top of the
/// spectrum ("maintains the highest singular values", Eq. 15 discussion).
fn select_high_entropy(reps: &Matrix, budget: usize, rng: &mut StdRng) -> Vec<usize> {
    let n = reps.rows();
    let d = reps.cols();
    let k = budget.min(d).max(1);
    let pca = Pca::fit(reps, k);
    let scores = pca.transform(reps); // n x k projections

    let mut chosen: Vec<usize> = Vec::with_capacity(budget);
    let mut used = vec![false; n];
    // Entropy trajectory (DESIGN.md §11): track Tr(Cov) of the growing
    // subset incrementally — O(d) per addition via running Σx and Σ‖x‖².
    let obs_on = edsr_obs::enabled();
    let mut sum = vec![0.0f64; if obs_on { d } else { 0 }];
    let mut sq_sum = 0.0f64;
    // Alternate ±: for each component take the largest positive and most
    // negative projections in turn, covering both ends of the axis.
    let mut comp = 0usize;
    let mut take_negative = false;
    while chosen.len() < budget {
        let c = comp % pca.n_components();
        let mut best: Option<(usize, f32)> = None;
        for i in 0..n {
            if used[i] {
                continue;
            }
            let v = scores.get(i, c);
            let key = if take_negative { -v } else { v };
            if best.is_none_or(|(_, b)| key > b) {
                best = Some((i, key));
            }
        }
        match best {
            Some((i, _)) => {
                used[i] = true;
                chosen.push(i);
                if obs_on {
                    for (s, &v) in sum.iter_mut().zip(reps.row(i)) {
                        *s += f64::from(v);
                    }
                    sq_sum += reps
                        .row(i)
                        .iter()
                        .map(|&v| f64::from(v) * f64::from(v))
                        .sum::<f64>();
                    let m = chosen.len() as f64;
                    let mean_sq: f64 = sum.iter().map(|s| (s / m) * (s / m)).sum();
                    edsr_obs::histogram_at(
                        "select/entropy_trace",
                        chosen.len() as u64,
                        sq_sum / m - mean_sq,
                    );
                }
            }
            None => break,
        }
        if take_negative {
            comp += 1;
        }
        take_negative = !take_negative;
    }
    fill_random(&mut chosen, n, budget, rng);
    chosen
}

/// Literal Eq. 15: `Tr(Cov(M̂)) = Σ‖rows‖²` is maximized by the largest
/// representation norms.
fn select_trace_greedy(reps: &Matrix, budget: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..reps.rows()).collect();
    let norms: Vec<f32> = (0..reps.rows())
        .map(|r| reps.row(r).iter().map(|v| v * v).sum::<f32>())
        .collect();
    order.sort_by(|&a, &b| {
        norms[b]
            .partial_cmp(&norms[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order.truncate(budget);
    order
}

/// All strategies in the order Table V reports them.
pub fn table5_strategies() -> Vec<SelectionStrategy> {
    vec![
        SelectionStrategy::Random,
        SelectionStrategy::KMeans,
        SelectionStrategy::MinVar,
        SelectionStrategy::Distant,
        SelectionStrategy::HighEntropy,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_linalg::coding_length_entropy;
    use edsr_tensor::rng::seeded;

    /// Anisotropic data: most variance on axis 0, clumped elsewhere.
    fn aniso(n: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        let mut m = Matrix::zeros(n, 4);
        for r in 0..n {
            m.set(r, 0, edsr_tensor::rng::gaussian(&mut rng) * 4.0);
            m.set(r, 1, edsr_tensor::rng::gaussian(&mut rng) * 1.0);
            m.set(r, 2, edsr_tensor::rng::gaussian(&mut rng) * 0.2);
            m.set(r, 3, edsr_tensor::rng::gaussian(&mut rng) * 0.05);
        }
        m
    }

    fn ctx(reps: &Matrix) -> SelectionContext<'_> {
        SelectionContext {
            reps,
            aug_view_std: None,
            cluster_hint: 2,
        }
    }

    #[test]
    fn all_strategies_respect_budget_and_dedup() {
        let reps = aniso(40, 400);
        let mut rng = seeded(401);
        for strat in [
            SelectionStrategy::Random,
            SelectionStrategy::Distant,
            SelectionStrategy::KMeans,
            SelectionStrategy::MinVar,
            SelectionStrategy::HighEntropy,
            SelectionStrategy::TraceGreedy,
        ] {
            let sel = strat.select(&ctx(&reps), 10, &mut rng);
            assert_eq!(sel.len(), 10, "{} wrong count", strat.name());
            let mut s = sel.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 10, "{} produced duplicates", strat.name());
            assert!(s.iter().all(|&i| i < 40), "{} out of range", strat.name());
        }
    }

    #[test]
    fn budget_clamped_to_population() {
        let reps = aniso(5, 402);
        let mut rng = seeded(403);
        let sel = SelectionStrategy::HighEntropy.select(&ctx(&reps), 99, &mut rng);
        assert_eq!(sel.len(), 5);
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let reps = aniso(5, 404);
        let mut rng = seeded(405);
        assert!(SelectionStrategy::Random
            .select(&ctx(&reps), 0, &mut rng)
            .is_empty());
    }

    #[test]
    fn high_entropy_beats_random_on_coding_length() {
        // The headline property: the entropy selector's subset should have
        // higher lossy-coding-length entropy than a random subset.
        let reps = aniso(120, 406);
        let mut rng = seeded(407);
        let he = SelectionStrategy::HighEntropy.select(&ctx(&reps), 12, &mut rng);
        let mut h_rand = 0.0;
        for trial in 0..10 {
            let mut r2 = seeded(500 + trial);
            let rand = SelectionStrategy::Random.select(&ctx(&reps), 12, &mut r2);
            h_rand += coding_length_entropy(&reps.select_rows(&rand), 0.5);
        }
        h_rand /= 10.0;
        let h_he = coding_length_entropy(&reps.select_rows(&he), 0.5);
        assert!(
            h_he > h_rand,
            "entropy selection H={h_he} vs random mean H={h_rand}"
        );
    }

    #[test]
    fn high_entropy_spans_both_ends_of_top_axis() {
        let reps = aniso(100, 408);
        let mut rng = seeded(409);
        let sel = SelectionStrategy::HighEntropy.select(&ctx(&reps), 6, &mut rng);
        let picked: Vec<f32> = sel.iter().map(|&i| reps.get(i, 0)).collect();
        assert!(
            picked.iter().any(|&v| v > 2.0),
            "no high-end sample: {picked:?}"
        );
        assert!(
            picked.iter().any(|&v| v < -2.0),
            "no low-end sample: {picked:?}"
        );
    }

    #[test]
    fn trace_greedy_picks_largest_norms() {
        let mut reps = Matrix::zeros(4, 2);
        reps.set(0, 0, 1.0);
        reps.set(1, 0, 5.0);
        reps.set(2, 1, 3.0);
        reps.set(3, 1, 0.1);
        let sel = select_trace_greedy(&reps, 2);
        assert_eq!(sel, vec![1, 2]);
    }

    #[test]
    fn min_var_prefers_stable_samples() {
        let reps = aniso(20, 410);
        // Mark half the samples as augmentation-unstable.
        let stds: Vec<f32> = (0..20).map(|i| if i < 10 { 0.01 } else { 10.0 }).collect();
        let c = SelectionContext {
            reps: &reps,
            aug_view_std: Some(&stds),
            cluster_hint: 1,
        };
        let mut rng = seeded(411);
        let sel = SelectionStrategy::MinVar.select(&c, 8, &mut rng);
        let stable = sel.iter().filter(|&&i| i < 10).count();
        assert!(stable >= 7, "Min-Var chose unstable samples: {sel:?}");
    }

    #[test]
    fn distant_spreads_selection() {
        // Two far blobs: a budget-2 Distant selection must hit both.
        let mut reps = Matrix::zeros(20, 2);
        for i in 0..10 {
            reps.set(i, 0, 0.0 + i as f32 * 0.01);
        }
        for i in 10..20 {
            reps.set(i, 0, 100.0 + i as f32 * 0.01);
        }
        let mut rng = seeded(412);
        let sel = SelectionStrategy::Distant.select(&ctx(&reps), 2, &mut rng);
        let sides: Vec<bool> = sel.iter().map(|&i| i < 10).collect();
        assert_ne!(sides[0], sides[1], "Distant picked one blob twice: {sel:?}");
    }

    #[test]
    fn degenerate_identical_representations_still_fill_budget() {
        // Constant representations: PCA has zero variance everywhere; every
        // strategy must still return `budget` distinct indices.
        let reps = Matrix::filled(12, 4, 1.0);
        let c = SelectionContext {
            reps: &reps,
            aug_view_std: None,
            cluster_hint: 2,
        };
        for strat in [
            SelectionStrategy::Random,
            SelectionStrategy::Distant,
            SelectionStrategy::KMeans,
            SelectionStrategy::MinVar,
            SelectionStrategy::HighEntropy,
            SelectionStrategy::TraceGreedy,
        ] {
            let mut rng = seeded(413);
            let sel = strat.select(&c, 5, &mut rng);
            let mut s = sel.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 5, "{} failed on degenerate reps", strat.name());
        }
    }

    #[test]
    fn single_sample_population() {
        let reps = Matrix::filled(1, 3, 2.0);
        let c = SelectionContext {
            reps: &reps,
            aug_view_std: None,
            cluster_hint: 1,
        };
        let mut rng = seeded(414);
        assert_eq!(
            SelectionStrategy::HighEntropy.select(&c, 3, &mut rng),
            vec![0]
        );
    }

    #[test]
    fn trace_cov_matches_hand_computation() {
        // Rows (0,0) and (2,0): mean (1,0), Tr(Cov) = (0+4)/2 − 1 = 1.
        let reps = Matrix::from_rows(&[&[0.0, 0.0], &[2.0, 0.0], &[9.0, 9.0]]);
        assert!((trace_cov(&reps, &[0, 1]) - 1.0).abs() < 1e-12);
        assert_eq!(trace_cov(&reps, &[]), 0.0);
        assert_eq!(trace_cov(&reps, &[2]), 0.0, "singleton has zero spread");
    }

    #[test]
    fn table5_order_matches_paper() {
        let names: Vec<&str> = table5_strategies().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["Random", "K-means", "Min-Var", "Distant", "High Entropy"]
        );
    }
}
