//! Replay-selection baselines from the related-work set (PAPERS.md).
//!
//! Two published selection rules, reimplemented on this repo's episodic
//! memory + CSS replay substrate so they can be swept head-to-head with
//! EDSR in the scenario zoo:
//!
//! - [`CompEmb`] — Yanowsky & Weinshall's *complementary embeddings*
//!   rule: greedily pick the stored set that is maximally spread in the
//!   frozen model's representation space (farthest-point traversal), so
//!   a small buffer covers the increment's embedding support instead of
//!   its modes.
//! - [`R2r`] — *Replay to Remember*-style uncertainty-driven replay:
//!   store the samples whose representations move the most under the
//!   increment's own augmentation (highest view variance), i.e. the ones
//!   the encoder is least certain about and most likely to forget.
//!
//! Both replay through `L_css` on the stored data (the same two-view
//! objective used for new data), which keeps them comparable to LUMP and
//! the `ReplayLoss::Css` ablation of EDSR: the *only* moving part between
//! them is the selection rule.

use edsr_cl::memory::{MemoryBatch, MemoryBuffer, MemoryItem};
use edsr_cl::model::ContinualModel;
use edsr_cl::trainer::{apply_step, Method};
use edsr_data::{Augmenter, Dataset};
use edsr_linalg::stats::scalar_std;
use edsr_nn::{Optimizer, Workspace};
use edsr_tensor::Matrix;
use rand::rngs::StdRng;

/// Squared Euclidean distance between two representation rows.
fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Greedy farthest-point traversal: seed with the sample farthest from
/// the representation mean, then repeatedly add the sample maximizing
/// its distance to the closest already-selected one. Deterministic given
/// the representations (ties break on the lower index).
fn farthest_point_selection(reps: &Matrix, budget: usize) -> Vec<usize> {
    let n = reps.rows();
    let budget = budget.min(n);
    if budget == 0 {
        return Vec::new();
    }
    let mean = reps.col_means();
    let seed = (0..n)
        .max_by(|&a, &b| {
            sq_dist(reps.row(a), mean.row(0))
                .total_cmp(&sq_dist(reps.row(b), mean.row(0)))
                .then(b.cmp(&a))
        })
        .expect("non-empty population");
    let mut selected = vec![seed];
    // min_dist[i] = distance from i to its nearest selected sample.
    let mut min_dist: Vec<f32> = (0..n)
        .map(|i| sq_dist(reps.row(i), reps.row(seed)))
        .collect();
    while selected.len() < budget {
        let next = (0..n)
            .filter(|i| !selected.contains(i))
            .max_by(|&a, &b| min_dist[a].total_cmp(&min_dist[b]).then(b.cmp(&a)))
            .expect("budget <= n");
        for (i, md) in min_dist.iter_mut().enumerate() {
            let d = sq_dist(reps.row(i), reps.row(next));
            if d < *md {
                *md = d;
            }
        }
        selected.push(next);
    }
    selected.sort_unstable();
    selected
}

/// Draws replay groups the same way EDSR's uniform rule does: one merged
/// batch under a shared adapter (batch-statistic losses degenerate on
/// tiny per-task groups), per-task groups otherwise.
fn draw_replay(
    memory: &MemoryBuffer,
    model: &ContinualModel,
    replay_batch: usize,
    rng: &mut StdRng,
) -> Vec<MemoryBatch> {
    if model.encoder.num_adapters() == 1 {
        memory
            .sample_merged(replay_batch, rng)
            .into_iter()
            .collect()
    } else {
        memory.sample_grouped(replay_batch, rng)
    }
}

/// Shared train step for both baselines: `L_css` on the new increment
/// plus `½ L_css` on each drawn memory group, each group augmented by
/// its source increment's own view generator.
#[allow(clippy::too_many_arguments)]
fn css_with_replay(
    memory: &MemoryBuffer,
    replay_batch: usize,
    model: &mut ContinualModel,
    opt: &mut dyn Optimizer,
    augs: &[Augmenter],
    batch: &Matrix,
    task_idx: usize,
    ws: &mut Workspace,
    rng: &mut StdRng,
) -> f32 {
    let aug = &augs[task_idx.min(augs.len() - 1)];
    ws.reset();
    let (_, _, mut loss) =
        model.css_on_batch(&mut ws.tape, &mut ws.binder, aug, batch, task_idx, rng);
    if !memory.is_empty() {
        for group in draw_replay(memory, model, replay_batch, rng) {
            let mem_aug = &augs[group.task.min(augs.len() - 1)];
            let (m1, m2) = mem_aug.two_views(&group.inputs, rng);
            let (_, _, l) = model.css_on_views(&mut ws.tape, &mut ws.binder, &m1, &m2, group.task);
            let l = ws.tape.scale(l, 0.5);
            loss = ws.tape.add(loss, l);
        }
    }
    apply_step(model, opt, &mut ws.tape, &ws.binder, loss)
}

/// Complementary-embedding replay selection (Yanowsky & Weinshall).
pub struct CompEmb {
    per_task_budget: usize,
    replay_batch: usize,
    memory: MemoryBuffer,
}

impl CompEmb {
    /// Creates the method with a per-increment storage budget and a
    /// per-step replay batch size.
    pub fn new(per_task_budget: usize, replay_batch: usize) -> Self {
        Self {
            per_task_budget,
            replay_batch,
            memory: MemoryBuffer::new(),
        }
    }

    /// Stored sample count.
    pub fn memory_len(&self) -> usize {
        self.memory.len()
    }

    /// Read-only view of the memory (diagnostics / tests).
    pub fn memory(&self) -> &MemoryBuffer {
        &self.memory
    }
}

impl Method for CompEmb {
    fn name(&self) -> String {
        "CompEmb".into()
    }

    fn train_step(
        &mut self,
        model: &mut ContinualModel,
        opt: &mut dyn Optimizer,
        augs: &[Augmenter],
        batch: &Matrix,
        task_idx: usize,
        ws: &mut Workspace,
        rng: &mut StdRng,
    ) -> f32 {
        css_with_replay(
            &self.memory,
            self.replay_batch,
            model,
            opt,
            augs,
            batch,
            task_idx,
            ws,
            rng,
        )
    }

    fn end_task(
        &mut self,
        model: &mut ContinualModel,
        task_idx: usize,
        train: &Dataset,
        _aug: &Augmenter,
        _rng: &mut StdRng,
    ) {
        let budget = self.per_task_budget.min(train.len());
        if budget == 0 {
            return;
        }
        let reps = model.represent(&train.inputs, task_idx);
        let selected = farthest_point_selection(&reps, budget);
        if edsr_obs::enabled() {
            edsr_obs::gauge_at("memory/stored", task_idx as u64, selected.len() as f64);
        }
        self.memory.extend(selected.iter().map(|&i| MemoryItem {
            input: train.inputs.row(i).to_vec(),
            task: task_idx,
            noise_scale: 0.0,
            stored_features: Some(reps.row(i).to_vec()),
        }));
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.memory.to_bytes())
    }

    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        self.memory = MemoryBuffer::from_bytes(state).map_err(|e| e.to_string())?;
        Ok(())
    }

    fn replay_representations(&self) -> Option<(Matrix, Vec<u64>)> {
        let dim = self
            .memory
            .items()
            .iter()
            .find_map(|item| item.stored_features.as_ref().map(Vec::len))?;
        Some(edsr_cl::memory_representations(&self.memory, dim))
    }
}

/// Uncertainty-driven R2R-style replay (Mandalika et al.).
pub struct R2r {
    per_task_budget: usize,
    replay_batch: usize,
    views: usize,
    memory: MemoryBuffer,
}

impl R2r {
    /// Creates the method. `views` is the number of augmented views drawn
    /// per sample when estimating representation uncertainty (clamped to
    /// at least 2).
    pub fn new(per_task_budget: usize, replay_batch: usize, views: usize) -> Self {
        Self {
            per_task_budget,
            replay_batch,
            views: views.max(2),
            memory: MemoryBuffer::new(),
        }
    }

    /// Stored sample count.
    pub fn memory_len(&self) -> usize {
        self.memory.len()
    }

    /// Read-only view of the memory (diagnostics / tests).
    pub fn memory(&self) -> &MemoryBuffer {
        &self.memory
    }
}

impl Method for R2r {
    fn name(&self) -> String {
        "R2R".into()
    }

    fn train_step(
        &mut self,
        model: &mut ContinualModel,
        opt: &mut dyn Optimizer,
        augs: &[Augmenter],
        batch: &Matrix,
        task_idx: usize,
        ws: &mut Workspace,
        rng: &mut StdRng,
    ) -> f32 {
        css_with_replay(
            &self.memory,
            self.replay_batch,
            model,
            opt,
            augs,
            batch,
            task_idx,
            ws,
            rng,
        )
    }

    fn end_task(
        &mut self,
        model: &mut ContinualModel,
        task_idx: usize,
        train: &Dataset,
        aug: &Augmenter,
        rng: &mut StdRng,
    ) {
        let budget = self.per_task_budget.min(train.len());
        if budget == 0 {
            return;
        }
        let reps = model.represent(&train.inputs, task_idx);
        // Uncertainty = spread of the representation across augmented
        // views; the most view-sensitive samples are replayed.
        let uncertainty: Vec<f32> = (0..train.len())
            .map(|i| {
                let row = train.inputs.select_rows(&[i]);
                let mut view_reps = Matrix::zeros(self.views, model.repr_dim());
                for v in 0..self.views {
                    let view = aug.view_batch(&row, rng);
                    let rep = model.represent(&view, task_idx);
                    view_reps.row_mut(v).copy_from_slice(rep.row(0));
                }
                scalar_std(&view_reps)
            })
            .collect();
        let mut order: Vec<usize> = (0..train.len()).collect();
        order.sort_by(|&a, &b| uncertainty[b].total_cmp(&uncertainty[a]).then(a.cmp(&b)));
        let mut selected: Vec<usize> = order.into_iter().take(budget).collect();
        selected.sort_unstable();
        if edsr_obs::enabled() {
            edsr_obs::gauge_at("memory/stored", task_idx as u64, selected.len() as f64);
        }
        self.memory.extend(selected.iter().map(|&i| MemoryItem {
            input: train.inputs.row(i).to_vec(),
            task: task_idx,
            noise_scale: 0.0,
            stored_features: Some(reps.row(i).to_vec()),
        }));
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.memory.to_bytes())
    }

    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        self.memory = MemoryBuffer::from_bytes(state).map_err(|e| e.to_string())?;
        Ok(())
    }

    fn replay_representations(&self) -> Option<(Matrix, Vec<u64>)> {
        let dim = self
            .memory
            .items()
            .iter()
            .find_map(|item| item.stored_features.as_ref().map(Vec::len))?;
        Some(edsr_cl::memory_representations(&self.memory, dim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_cl::model::ModelConfig;
    use edsr_data::GridSpec;
    use edsr_tensor::rng::seeded;

    fn setup(seed: u64) -> (ContinualModel, edsr_nn::Sgd, Augmenter, Dataset) {
        let mut rng = seeded(seed);
        let model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
        let opt = edsr_nn::Sgd::new(0.05, 0.9, 0.0);
        let aug = Augmenter::standard_image(GridSpec::new(4, 4, 1));
        let train = Dataset::new(
            "d",
            Matrix::randn(24, 16, 1.0, &mut rng),
            (0..24).map(|i| i % 2).collect(),
        );
        (model, opt, aug, train)
    }

    #[test]
    fn farthest_point_is_spread_and_deterministic() {
        let mut rng = seeded(900);
        let reps = Matrix::randn(20, 8, 1.0, &mut rng);
        let a = farthest_point_selection(&reps, 6);
        let b = farthest_point_selection(&reps, 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 6, "selected indices repeat: {a:?}");
        // The greedy traversal must beat a contiguous prefix on minimum
        // pairwise spread — that is the whole point of the rule.
        let min_pair = |sel: &[usize]| {
            let mut m = f32::INFINITY;
            for (k, &i) in sel.iter().enumerate() {
                for &j in &sel[k + 1..] {
                    m = m.min(sq_dist(reps.row(i), reps.row(j)));
                }
            }
            m
        };
        let prefix: Vec<usize> = (0..6).collect();
        assert!(
            min_pair(&a) >= min_pair(&prefix),
            "farthest-point spread {} < prefix spread {}",
            min_pair(&a),
            min_pair(&prefix)
        );
    }

    #[test]
    fn farthest_point_handles_degenerate_budgets() {
        let mut rng = seeded(901);
        let reps = Matrix::randn(4, 3, 1.0, &mut rng);
        assert!(farthest_point_selection(&reps, 0).is_empty());
        assert_eq!(farthest_point_selection(&reps, 10).len(), 4);
    }

    #[test]
    fn compemb_stores_budget_and_replays() {
        let (mut model, mut opt, aug, train) = setup(910);
        let mut rng = seeded(911);
        let mut ws = Workspace::new();
        let mut m = CompEmb::new(6, 4);
        let batch = train.inputs.select_rows(&(0..8).collect::<Vec<_>>());
        let l0 = m.train_step(
            &mut model,
            &mut opt,
            std::slice::from_ref(&aug),
            &batch,
            0,
            &mut ws,
            &mut rng,
        );
        assert!(l0.is_finite());
        m.end_task(&mut model, 0, &train, &aug, &mut rng);
        assert_eq!(m.memory_len(), 6);
        assert!(m
            .memory()
            .items()
            .iter()
            .all(|i| i.stored_features.is_some()));
        let l1 = m.train_step(
            &mut model,
            &mut opt,
            std::slice::from_ref(&aug),
            &batch,
            1,
            &mut ws,
            &mut rng,
        );
        assert!(l1.is_finite());
    }

    #[test]
    fn r2r_stores_most_uncertain_samples() {
        let (mut model, mut opt, aug, train) = setup(920);
        let mut rng = seeded(921);
        let mut m = R2r::new(6, 4, 3);
        m.end_task(&mut model, 0, &train, &aug, &mut rng);
        assert_eq!(m.memory_len(), 6);
        let mut ws = Workspace::new();
        let batch = train.inputs.select_rows(&(0..8).collect::<Vec<_>>());
        let l = m.train_step(
            &mut model,
            &mut opt,
            std::slice::from_ref(&aug),
            &batch,
            1,
            &mut ws,
            &mut rng,
        );
        assert!(l.is_finite());
    }

    #[test]
    fn state_round_trips_through_bytes() {
        let (mut model, _opt, aug, train) = setup(930);
        let mut rng = seeded(931);
        for method in [
            Box::new(CompEmb::new(4, 4)) as Box<dyn Method>,
            Box::new(R2r::new(4, 4, 2)),
        ] {
            let mut method = method;
            method.end_task(&mut model, 0, &train, &aug, &mut rng);
            let bytes = method.save_state().expect("state bytes");
            let mut fresh: Box<dyn Method> = if method.name() == "CompEmb" {
                Box::new(CompEmb::new(4, 4))
            } else {
                Box::new(R2r::new(4, 4, 2))
            };
            fresh.load_state(&bytes).expect("restore");
            assert_eq!(fresh.save_state().expect("bytes"), bytes);
        }
    }

    #[test]
    fn replay_representations_expose_memory() {
        let (mut model, _opt, aug, train) = setup(940);
        let mut rng = seeded(941);
        let mut m = CompEmb::new(5, 4);
        assert!(m.replay_representations().is_none());
        m.end_task(&mut model, 0, &train, &aug, &mut rng);
        let (reps, tasks) = m.replay_representations().expect("cached reps");
        assert_eq!(reps.rows(), 5);
        assert_eq!(tasks.len(), 5);
    }
}
