//! One reader for every process-level knob.
//!
//! Before this module, configuration was scattered: `EDSR_THREADS` read in
//! `edsr-par`, `EDSR_BENCH_QUICK` read ad-hoc in each bench binary, and the
//! CLI parsed `--threads`/`--checkpoint`/`--resume` by hand. [`EnvConfig`]
//! resolves all of them in one place with documented precedence:
//!
//! **CLI flag > environment variable > default.**
//!
//! | knob | CLI | env | default |
//! |------|-----|-----|---------|
//! | threads | `--threads N` | `EDSR_THREADS` | auto (pool picks) |
//! | SIMD ISA | `--isa LEVEL` | `EDSR_ISA` | `auto` (detect) |
//! | bench quick mode | `--quick` | `EDSR_BENCH_QUICK` | off |
//! | checkpoint dir | `--checkpoint DIR` | `EDSR_CHECKPOINT` | none |
//! | resume | `--resume` | `EDSR_RESUME` | off |
//! | observability mode | `--obs MODE` | `EDSR_OBS` | `off` |
//! | metrics path | `--obs-path PATH` | `EDSR_OBS_PATH` | `metrics.jsonl` |
//! | serve batch cap | `--serve-batch N` | `EDSR_SERVE_BATCH` | server default |
//! | serve window (µs) | `--serve-window-us N` | `EDSR_SERVE_WINDOW_US` | server default |
//! | serve rotation poll (ms) | `--serve-rotate-ms N` | `EDSR_SERVE_ROTATE_MS` | server default |
//! | serve deadline (ms, 0 = off) | `--serve-deadline-ms N` | `EDSR_SERVE_DEADLINE_MS` | off |
//! | serve queue cap | `--serve-queue N` | `EDSR_SERVE_QUEUE` | server default |
//! | serve read timeout (ms) | `--serve-read-timeout-ms N` | `EDSR_SERVE_READ_TIMEOUT_MS` | server default |
//! | serve stall cap (ms) | `--serve-stall-ms N` | `EDSR_SERVE_STALL_MS` | server default |
//! | serve int8 quantized | `--quantized` | `EDSR_SERVE_QUANT` | off |
//! | dist bind/connect address | `--dist-addr ADDR` | `EDSR_DIST_ADDR` | dist default |
//! | dist worker count | `--dist-workers N` | `EDSR_DIST_WORKERS` | dist default |
//! | dist push timeout (ms) | `--dist-push-timeout-ms N` | `EDSR_DIST_PUSH_TIMEOUT_MS` | dist default |
//! | dist sparse threshold | `--dist-sparse-threshold F` | `EDSR_DIST_SPARSE_THRESHOLD` | dist default |
//!
//! Boolean env vars are truthy unless empty, `0`, `false`, or `off`
//! (case-insensitive). [`EnvConfig::resolve`] is pure — the environment is
//! passed in as a lookup function — so each knob has an isolated unit test
//! that cannot race other tests through the process environment.
//! [`EnvConfig::from_process`] binds the real `std::env`, and
//! [`EnvConfig::apply`] pushes the resolved values into the runtime
//! (`edsr_par::set_threads`, `edsr_tensor::simd::set_isa`,
//! `edsr_obs::install_mode`).

use std::path::PathBuf;

use edsr_obs::ObsMode;
use edsr_tensor::simd::IsaRequest;

/// Resolved process configuration; see the module docs for the knob table.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvConfig {
    /// Compute thread count (`None` = let the pool auto-detect).
    pub threads: Option<usize>,
    /// SIMD kernel ISA (`auto | scalar | avx2 | avx512`; `None` = let the
    /// dispatch layer resolve `EDSR_ISA` / auto-detect on first use).
    pub isa: Option<IsaRequest>,
    /// Shrink benchmark workloads to a smoke run.
    pub bench_quick: bool,
    /// Directory for run-state snapshots.
    pub checkpoint: Option<PathBuf>,
    /// Resume from the latest valid snapshot in `checkpoint`.
    pub resume: bool,
    /// Observability sink mode.
    pub obs: ObsMode,
    /// Metrics file path for [`ObsMode::Jsonl`].
    pub obs_path: PathBuf,
    /// Micro-batcher flush size for `edsr serve` (`None` = server default).
    pub serve_batch: Option<usize>,
    /// Micro-batcher coalescing window in microseconds for `edsr serve`
    /// (`None` = server default).
    pub serve_window_us: Option<u64>,
    /// Snapshot-rotation poll interval in milliseconds for `edsr serve`
    /// (`None` = server default; rotation itself is enabled by serving a
    /// snapshot *directory* rather than a single file).
    pub serve_rotate_ms: Option<u64>,
    /// Per-request deadline in milliseconds for `edsr serve`
    /// (`None` = unset, `Some(0)` = explicitly disabled).
    pub serve_deadline_ms: Option<u64>,
    /// Bounded submit-queue capacity for `edsr serve` (`None` = server
    /// default). Requests beyond it are shed with `ERR_OVERLOADED`.
    pub serve_queue: Option<usize>,
    /// Per-connection socket read timeout in milliseconds for
    /// `edsr serve` (`None` = server default).
    pub serve_read_timeout_ms: Option<u64>,
    /// Slow-peer stall cap in milliseconds for `edsr serve`: a
    /// connection idle mid-frame longer than this is dropped
    /// (`None` = server default).
    pub serve_stall_ms: Option<u64>,
    /// Serve on the int8 quantized backend: `edsr serve` quantizes v1
    /// snapshots in-process (v2 snapshots always serve quantized) and
    /// `edsr query` asserts the server is quantized before sending.
    pub serve_quant: bool,
    /// Bind address for `edsr ps` / connect address for `edsr worker`
    /// (`None` = dist default).
    pub dist_addr: Option<String>,
    /// Worker count a parameter server waits for before starting the run
    /// (`None` = dist default).
    pub dist_workers: Option<usize>,
    /// How long the parameter server waits for an assigned gradient push
    /// before reissuing the work item to another worker (`None` = dist
    /// default).
    pub dist_push_timeout_ms: Option<u64>,
    /// Density cutoff for the sparse gradient codec, in `0.0..=1.0`:
    /// tensors with a nonzero fraction above it ship dense (`None` =
    /// dist default).
    pub dist_sparse_threshold: Option<f32>,
    /// Arguments `resolve` did not consume (positionals and unknown
    /// flags), in their original order, for the caller's own parser.
    pub rest: Vec<String>,
}

impl Default for EnvConfig {
    fn default() -> Self {
        Self {
            threads: None,
            isa: None,
            bench_quick: false,
            checkpoint: None,
            resume: false,
            obs: ObsMode::Off,
            obs_path: PathBuf::from("metrics.jsonl"),
            serve_batch: None,
            serve_window_us: None,
            serve_rotate_ms: None,
            serve_deadline_ms: None,
            serve_queue: None,
            serve_read_timeout_ms: None,
            serve_stall_ms: None,
            serve_quant: false,
            dist_addr: None,
            dist_workers: None,
            dist_push_timeout_ms: None,
            dist_sparse_threshold: None,
            rest: Vec::new(),
        }
    }
}

/// Is an env-var value truthy? Empty, `0`, `false`, and `off` are not.
fn truthy(value: &str) -> bool {
    !matches!(
        value.trim().to_ascii_lowercase().as_str(),
        "" | "0" | "false" | "off"
    )
}

impl EnvConfig {
    /// Resolves configuration from an environment lookup and CLI args,
    /// with precedence CLI > env > default. `args` excludes the program
    /// name. Unrecognised arguments are preserved in [`rest`](Self::rest).
    ///
    /// Errors are human-readable strings naming the offending knob
    /// (unparseable `--threads`, unknown `--obs` mode, missing flag value).
    pub fn resolve(env: impl Fn(&str) -> Option<String>, args: &[String]) -> Result<Self, String> {
        let mut cfg = Self::default();

        // Environment layer.
        if let Some(v) = env("EDSR_THREADS") {
            cfg.threads = Some(parse_threads("EDSR_THREADS", &v)?);
        }
        if let Some(v) = env("EDSR_ISA") {
            cfg.isa = Some(parse_isa("EDSR_ISA", &v)?);
        }
        if let Some(v) = env("EDSR_BENCH_QUICK") {
            cfg.bench_quick = truthy(&v);
        }
        if let Some(v) = env("EDSR_CHECKPOINT") {
            if !v.is_empty() {
                cfg.checkpoint = Some(PathBuf::from(v));
            }
        }
        if let Some(v) = env("EDSR_RESUME") {
            cfg.resume = truthy(&v);
        }
        if let Some(v) = env("EDSR_OBS") {
            cfg.obs = ObsMode::parse(&v).ok_or_else(|| bad_obs("EDSR_OBS", &v))?;
        }
        if let Some(v) = env("EDSR_OBS_PATH") {
            if !v.is_empty() {
                cfg.obs_path = PathBuf::from(v);
            }
        }
        if let Some(v) = env("EDSR_SERVE_BATCH") {
            cfg.serve_batch = Some(parse_count("EDSR_SERVE_BATCH", &v)?);
        }
        if let Some(v) = env("EDSR_SERVE_WINDOW_US") {
            cfg.serve_window_us = Some(parse_window("EDSR_SERVE_WINDOW_US", &v)?);
        }
        if let Some(v) = env("EDSR_SERVE_ROTATE_MS") {
            cfg.serve_rotate_ms = Some(parse_ms_nonzero("EDSR_SERVE_ROTATE_MS", &v)?);
        }
        if let Some(v) = env("EDSR_SERVE_DEADLINE_MS") {
            cfg.serve_deadline_ms = Some(parse_ms("EDSR_SERVE_DEADLINE_MS", &v)?);
        }
        if let Some(v) = env("EDSR_SERVE_QUEUE") {
            cfg.serve_queue = Some(parse_count("EDSR_SERVE_QUEUE", &v)?);
        }
        if let Some(v) = env("EDSR_SERVE_READ_TIMEOUT_MS") {
            cfg.serve_read_timeout_ms = Some(parse_ms_nonzero("EDSR_SERVE_READ_TIMEOUT_MS", &v)?);
        }
        if let Some(v) = env("EDSR_SERVE_STALL_MS") {
            cfg.serve_stall_ms = Some(parse_ms_nonzero("EDSR_SERVE_STALL_MS", &v)?);
        }
        if let Some(v) = env("EDSR_SERVE_QUANT") {
            cfg.serve_quant = truthy(&v);
        }
        if let Some(v) = env("EDSR_DIST_ADDR") {
            if !v.is_empty() {
                cfg.dist_addr = Some(v);
            }
        }
        if let Some(v) = env("EDSR_DIST_WORKERS") {
            cfg.dist_workers = Some(parse_count("EDSR_DIST_WORKERS", &v)?);
        }
        if let Some(v) = env("EDSR_DIST_PUSH_TIMEOUT_MS") {
            cfg.dist_push_timeout_ms = Some(parse_ms_nonzero("EDSR_DIST_PUSH_TIMEOUT_MS", &v)?);
        }
        if let Some(v) = env("EDSR_DIST_SPARSE_THRESHOLD") {
            cfg.dist_sparse_threshold = Some(parse_fraction("EDSR_DIST_SPARSE_THRESHOLD", &v)?);
        }

        // CLI layer (wins). Both `--flag value` and `--flag=value` work.
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) if f.starts_with("--") => (f, Some(v.to_string())),
                _ => (arg.as_str(), None),
            };
            let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>| {
                inline
                    .clone()
                    .or_else(|| it.next().cloned())
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match flag {
                "--threads" => {
                    let v = value(&mut it)?;
                    cfg.threads = Some(parse_threads("--threads", &v)?);
                }
                "--isa" => {
                    let v = value(&mut it)?;
                    cfg.isa = Some(parse_isa("--isa", &v)?);
                }
                "--quick" => cfg.bench_quick = true,
                "--checkpoint" => cfg.checkpoint = Some(PathBuf::from(value(&mut it)?)),
                "--resume" => cfg.resume = true,
                "--obs" => {
                    let v = value(&mut it)?;
                    cfg.obs = ObsMode::parse(&v).ok_or_else(|| bad_obs("--obs", &v))?;
                }
                "--obs-path" => cfg.obs_path = PathBuf::from(value(&mut it)?),
                "--serve-batch" => {
                    let v = value(&mut it)?;
                    cfg.serve_batch = Some(parse_count("--serve-batch", &v)?);
                }
                "--serve-window-us" => {
                    let v = value(&mut it)?;
                    cfg.serve_window_us = Some(parse_window("--serve-window-us", &v)?);
                }
                "--serve-rotate-ms" => {
                    let v = value(&mut it)?;
                    cfg.serve_rotate_ms = Some(parse_ms_nonzero("--serve-rotate-ms", &v)?);
                }
                "--serve-deadline-ms" => {
                    let v = value(&mut it)?;
                    cfg.serve_deadline_ms = Some(parse_ms("--serve-deadline-ms", &v)?);
                }
                "--serve-queue" => {
                    let v = value(&mut it)?;
                    cfg.serve_queue = Some(parse_count("--serve-queue", &v)?);
                }
                "--serve-read-timeout-ms" => {
                    let v = value(&mut it)?;
                    cfg.serve_read_timeout_ms =
                        Some(parse_ms_nonzero("--serve-read-timeout-ms", &v)?);
                }
                "--serve-stall-ms" => {
                    let v = value(&mut it)?;
                    cfg.serve_stall_ms = Some(parse_ms_nonzero("--serve-stall-ms", &v)?);
                }
                "--quantized" => cfg.serve_quant = true,
                "--dist-addr" => cfg.dist_addr = Some(value(&mut it)?),
                "--dist-workers" => {
                    let v = value(&mut it)?;
                    cfg.dist_workers = Some(parse_count("--dist-workers", &v)?);
                }
                "--dist-push-timeout-ms" => {
                    let v = value(&mut it)?;
                    cfg.dist_push_timeout_ms =
                        Some(parse_ms_nonzero("--dist-push-timeout-ms", &v)?);
                }
                "--dist-sparse-threshold" => {
                    let v = value(&mut it)?;
                    cfg.dist_sparse_threshold =
                        Some(parse_fraction("--dist-sparse-threshold", &v)?);
                }
                _ => cfg.rest.push(arg.clone()),
            }
        }
        Ok(cfg)
    }

    /// [`resolve`](Self::resolve) against the real process environment
    /// and `std::env::args` (program name skipped).
    pub fn from_process() -> Result<Self, String> {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::resolve(|k| std::env::var(k).ok(), &args)
    }

    /// Pushes the resolved config into the runtime: sets the `edsr-par`
    /// thread count (when requested), installs the SIMD kernel ISA
    /// (`edsr_tensor::simd::set_isa` — a pinned ISA the host cannot
    /// execute is reported as an error rather than silently downgraded),
    /// and installs the observability sink. Returns the ring sink when
    /// `obs = ring`, so the caller can drain it; `Err` also means the
    /// JSONL metrics file could not be created.
    pub fn apply(&self) -> std::io::Result<Option<edsr_obs::RingSink>> {
        if let Some(n) = self.threads {
            edsr_par::set_threads(n);
        }
        if let Some(req) = self.isa {
            edsr_tensor::simd::set_isa(req)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::Unsupported, e.to_string()))?;
        }
        edsr_obs::install_mode(self.obs, &self.obs_path)
    }
}

fn parse_threads(source: &str, value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "{source}: expected a thread count >= 1, got {value:?}"
        )),
    }
}

fn parse_isa(source: &str, value: &str) -> Result<IsaRequest, String> {
    IsaRequest::parse(value.trim())
        .ok_or_else(|| format!("{source}: expected auto | scalar | avx2 | avx512, got {value:?}"))
}

fn parse_count(source: &str, value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("{source}: expected a count >= 1, got {value:?}")),
    }
}

fn parse_window(source: &str, value: &str) -> Result<u64, String> {
    value
        .trim()
        .parse::<u64>()
        .map_err(|_| format!("{source}: expected microseconds (u64), got {value:?}"))
}

fn parse_ms(source: &str, value: &str) -> Result<u64, String> {
    value
        .trim()
        .parse::<u64>()
        .map_err(|_| format!("{source}: expected milliseconds (u64), got {value:?}"))
}

fn parse_ms_nonzero(source: &str, value: &str) -> Result<u64, String> {
    match value.trim().parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "{source}: expected milliseconds >= 1, got {value:?}"
        )),
    }
}

fn parse_fraction(source: &str, value: &str) -> Result<f32, String> {
    match value.trim().parse::<f32>() {
        Ok(f) if (0.0..=1.0).contains(&f) => Ok(f),
        _ => Err(format!(
            "{source}: expected a fraction in 0.0..=1.0, got {value:?}"
        )),
    }
}

fn bad_obs(source: &str, value: &str) -> String {
    format!("{source}: expected off | ring | jsonl, got {value:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_env(_: &str) -> Option<String> {
        None
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_when_nothing_set() {
        let cfg = EnvConfig::resolve(no_env, &[]).unwrap();
        assert_eq!(cfg, EnvConfig::default());
        assert_eq!(cfg.obs_path, PathBuf::from("metrics.jsonl"));
    }

    #[test]
    fn threads_cli_beats_env() {
        let env = |k: &str| (k == "EDSR_THREADS").then(|| "8".to_string());
        let cfg = EnvConfig::resolve(env, &args(&["--threads", "2"])).unwrap();
        assert_eq!(cfg.threads, Some(2));
        let cfg = EnvConfig::resolve(env, &[]).unwrap();
        assert_eq!(cfg.threads, Some(8));
        assert!(EnvConfig::resolve(env, &args(&["--threads", "zero"])).is_err());
        assert!(EnvConfig::resolve(no_env, &args(&["--threads", "0"])).is_err());
    }

    #[test]
    fn isa_cli_beats_env_and_validates() {
        use edsr_tensor::simd::{Isa, IsaRequest};
        let env = |k: &str| (k == "EDSR_ISA").then(|| "scalar".to_string());
        let cfg = EnvConfig::resolve(env, &args(&["--isa", "avx2"])).unwrap();
        assert_eq!(cfg.isa, Some(IsaRequest::Fixed(Isa::Avx2)));
        let cfg = EnvConfig::resolve(env, &[]).unwrap();
        assert_eq!(cfg.isa, Some(IsaRequest::Fixed(Isa::Scalar)));
        assert_eq!(EnvConfig::resolve(no_env, &[]).unwrap().isa, None);
        let cfg = EnvConfig::resolve(no_env, &args(&["--isa=auto"])).unwrap();
        assert_eq!(cfg.isa, Some(IsaRequest::Auto));
        let cfg = EnvConfig::resolve(no_env, &args(&["--isa", "avx512"])).unwrap();
        assert_eq!(cfg.isa, Some(IsaRequest::Fixed(Isa::Avx512)));
        assert!(EnvConfig::resolve(no_env, &args(&["--isa", "sse9"])).is_err());
        let bad = |k: &str| (k == "EDSR_ISA").then(|| "neon".to_string());
        assert!(EnvConfig::resolve(bad, &[]).is_err());
        assert!(EnvConfig::resolve(no_env, &args(&["--isa"])).is_err());
    }

    #[test]
    fn bench_quick_cli_beats_env() {
        let env = |k: &str| (k == "EDSR_BENCH_QUICK").then(|| "0".to_string());
        // env says off...
        assert!(!EnvConfig::resolve(env, &[]).unwrap().bench_quick);
        // ...but the flag forces it on.
        assert!(
            EnvConfig::resolve(env, &args(&["--quick"]))
                .unwrap()
                .bench_quick
        );
        let env_on = |k: &str| (k == "EDSR_BENCH_QUICK").then(|| "1".to_string());
        assert!(EnvConfig::resolve(env_on, &[]).unwrap().bench_quick);
    }

    #[test]
    fn checkpoint_cli_beats_env() {
        let env = |k: &str| (k == "EDSR_CHECKPOINT").then(|| "/tmp/env-ckpt".to_string());
        let cfg = EnvConfig::resolve(env, &args(&["--checkpoint", "/tmp/cli-ckpt"])).unwrap();
        assert_eq!(cfg.checkpoint, Some(PathBuf::from("/tmp/cli-ckpt")));
        let cfg = EnvConfig::resolve(env, &[]).unwrap();
        assert_eq!(cfg.checkpoint, Some(PathBuf::from("/tmp/env-ckpt")));
        assert!(EnvConfig::resolve(no_env, &args(&["--checkpoint"])).is_err());
    }

    #[test]
    fn resume_env_and_flag() {
        let env = |k: &str| (k == "EDSR_RESUME").then(|| "false".to_string());
        assert!(!EnvConfig::resolve(env, &[]).unwrap().resume);
        assert!(
            EnvConfig::resolve(env, &args(&["--resume"]))
                .unwrap()
                .resume
        );
        let env_on = |k: &str| (k == "EDSR_RESUME").then(|| "yes".to_string());
        assert!(EnvConfig::resolve(env_on, &[]).unwrap().resume);
    }

    #[test]
    fn obs_mode_cli_beats_env() {
        let env = |k: &str| (k == "EDSR_OBS").then(|| "ring".to_string());
        let cfg = EnvConfig::resolve(env, &args(&["--obs", "jsonl"])).unwrap();
        assert_eq!(cfg.obs, ObsMode::Jsonl);
        assert_eq!(EnvConfig::resolve(env, &[]).unwrap().obs, ObsMode::Ring);
        assert!(EnvConfig::resolve(no_env, &args(&["--obs", "tracing"])).is_err());
    }

    #[test]
    fn obs_path_cli_beats_env() {
        let env = |k: &str| (k == "EDSR_OBS_PATH").then(|| "env.jsonl".to_string());
        let cfg = EnvConfig::resolve(env, &args(&["--obs-path=cli.jsonl"])).unwrap();
        assert_eq!(cfg.obs_path, PathBuf::from("cli.jsonl"));
        assert_eq!(
            EnvConfig::resolve(env, &[]).unwrap().obs_path,
            PathBuf::from("env.jsonl")
        );
    }

    #[test]
    fn serve_batch_cli_beats_env_and_validates() {
        let env = |k: &str| (k == "EDSR_SERVE_BATCH").then(|| "16".to_string());
        let cfg = EnvConfig::resolve(env, &args(&["--serve-batch", "4"])).unwrap();
        assert_eq!(cfg.serve_batch, Some(4));
        assert_eq!(EnvConfig::resolve(env, &[]).unwrap().serve_batch, Some(16));
        assert_eq!(EnvConfig::resolve(no_env, &[]).unwrap().serve_batch, None);
        assert!(EnvConfig::resolve(no_env, &args(&["--serve-batch", "0"])).is_err());
        let bad = |k: &str| (k == "EDSR_SERVE_BATCH").then(|| "lots".to_string());
        assert!(EnvConfig::resolve(bad, &[]).is_err());
    }

    #[test]
    fn serve_window_cli_beats_env_and_validates() {
        let env = |k: &str| (k == "EDSR_SERVE_WINDOW_US").then(|| "250".to_string());
        let cfg = EnvConfig::resolve(env, &args(&["--serve-window-us=1000"])).unwrap();
        assert_eq!(cfg.serve_window_us, Some(1000));
        assert_eq!(
            EnvConfig::resolve(env, &[]).unwrap().serve_window_us,
            Some(250)
        );
        // Zero is a valid window: flush immediately once a request lands.
        let cfg = EnvConfig::resolve(no_env, &args(&["--serve-window-us", "0"])).unwrap();
        assert_eq!(cfg.serve_window_us, Some(0));
        assert!(EnvConfig::resolve(no_env, &args(&["--serve-window-us", "-5"])).is_err());
    }

    #[test]
    fn serve_rotate_cli_beats_env_and_validates() {
        let env = |k: &str| (k == "EDSR_SERVE_ROTATE_MS").then(|| "500".to_string());
        let cfg = EnvConfig::resolve(env, &args(&["--serve-rotate-ms", "50"])).unwrap();
        assert_eq!(cfg.serve_rotate_ms, Some(50));
        assert_eq!(
            EnvConfig::resolve(env, &[]).unwrap().serve_rotate_ms,
            Some(500)
        );
        assert_eq!(
            EnvConfig::resolve(no_env, &[]).unwrap().serve_rotate_ms,
            None
        );
        // A zero poll interval would spin; reject it.
        assert!(EnvConfig::resolve(no_env, &args(&["--serve-rotate-ms", "0"])).is_err());
    }

    #[test]
    fn serve_deadline_cli_beats_env_and_zero_means_disabled() {
        let env = |k: &str| (k == "EDSR_SERVE_DEADLINE_MS").then(|| "250".to_string());
        let cfg = EnvConfig::resolve(env, &args(&["--serve-deadline-ms=40"])).unwrap();
        assert_eq!(cfg.serve_deadline_ms, Some(40));
        assert_eq!(
            EnvConfig::resolve(env, &[]).unwrap().serve_deadline_ms,
            Some(250)
        );
        // Zero is a valid setting: it explicitly disables the deadline.
        let cfg = EnvConfig::resolve(no_env, &args(&["--serve-deadline-ms", "0"])).unwrap();
        assert_eq!(cfg.serve_deadline_ms, Some(0));
        assert!(EnvConfig::resolve(no_env, &args(&["--serve-deadline-ms", "soon"])).is_err());
    }

    #[test]
    fn serve_queue_cli_beats_env_and_validates() {
        let env = |k: &str| (k == "EDSR_SERVE_QUEUE").then(|| "64".to_string());
        let cfg = EnvConfig::resolve(env, &args(&["--serve-queue", "8"])).unwrap();
        assert_eq!(cfg.serve_queue, Some(8));
        assert_eq!(EnvConfig::resolve(env, &[]).unwrap().serve_queue, Some(64));
        assert_eq!(EnvConfig::resolve(no_env, &[]).unwrap().serve_queue, None);
        assert!(EnvConfig::resolve(no_env, &args(&["--serve-queue", "0"])).is_err());
    }

    #[test]
    fn serve_read_timeout_cli_beats_env_and_validates() {
        let env = |k: &str| (k == "EDSR_SERVE_READ_TIMEOUT_MS").then(|| "100".to_string());
        let cfg = EnvConfig::resolve(env, &args(&["--serve-read-timeout-ms", "5"])).unwrap();
        assert_eq!(cfg.serve_read_timeout_ms, Some(5));
        assert_eq!(
            EnvConfig::resolve(env, &[]).unwrap().serve_read_timeout_ms,
            Some(100)
        );
        // A zero read timeout means "block forever" to the socket layer,
        // which would defeat the poll loop; reject it.
        assert!(EnvConfig::resolve(no_env, &args(&["--serve-read-timeout-ms", "0"])).is_err());
    }

    #[test]
    fn serve_stall_cli_beats_env_and_validates() {
        let env = |k: &str| (k == "EDSR_SERVE_STALL_MS").then(|| "2000".to_string());
        let cfg = EnvConfig::resolve(env, &args(&["--serve-stall-ms=300"])).unwrap();
        assert_eq!(cfg.serve_stall_ms, Some(300));
        assert_eq!(
            EnvConfig::resolve(env, &[]).unwrap().serve_stall_ms,
            Some(2000)
        );
        assert!(EnvConfig::resolve(no_env, &args(&["--serve-stall-ms", "0"])).is_err());
    }

    #[test]
    fn serve_quant_env_and_flag() {
        let env = |k: &str| (k == "EDSR_SERVE_QUANT").then(|| "off".to_string());
        assert!(!EnvConfig::resolve(env, &[]).unwrap().serve_quant);
        assert!(
            EnvConfig::resolve(env, &args(&["--quantized"]))
                .unwrap()
                .serve_quant
        );
        let env_on = |k: &str| (k == "EDSR_SERVE_QUANT").then(|| "1".to_string());
        assert!(EnvConfig::resolve(env_on, &[]).unwrap().serve_quant);
        assert!(!EnvConfig::resolve(no_env, &[]).unwrap().serve_quant);
    }

    #[test]
    fn dist_addr_cli_beats_env() {
        let env = |k: &str| (k == "EDSR_DIST_ADDR").then(|| "10.0.0.1:7000".to_string());
        let cfg = EnvConfig::resolve(env, &args(&["--dist-addr", "127.0.0.1:0"])).unwrap();
        assert_eq!(cfg.dist_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(
            EnvConfig::resolve(env, &[]).unwrap().dist_addr.as_deref(),
            Some("10.0.0.1:7000")
        );
        assert_eq!(EnvConfig::resolve(no_env, &[]).unwrap().dist_addr, None);
        // An empty env value means "unset", matching EDSR_CHECKPOINT.
        let empty = |k: &str| (k == "EDSR_DIST_ADDR").then(String::new);
        assert_eq!(EnvConfig::resolve(empty, &[]).unwrap().dist_addr, None);
        assert!(EnvConfig::resolve(no_env, &args(&["--dist-addr"])).is_err());
    }

    #[test]
    fn dist_workers_cli_beats_env_and_validates() {
        let env = |k: &str| (k == "EDSR_DIST_WORKERS").then(|| "4".to_string());
        let cfg = EnvConfig::resolve(env, &args(&["--dist-workers", "2"])).unwrap();
        assert_eq!(cfg.dist_workers, Some(2));
        assert_eq!(EnvConfig::resolve(env, &[]).unwrap().dist_workers, Some(4));
        assert_eq!(EnvConfig::resolve(no_env, &[]).unwrap().dist_workers, None);
        // A parameter server with zero workers can never start a run.
        assert!(EnvConfig::resolve(no_env, &args(&["--dist-workers", "0"])).is_err());
        let bad = |k: &str| (k == "EDSR_DIST_WORKERS").then(|| "many".to_string());
        assert!(EnvConfig::resolve(bad, &[]).is_err());
    }

    #[test]
    fn dist_push_timeout_cli_beats_env_and_validates() {
        let env = |k: &str| (k == "EDSR_DIST_PUSH_TIMEOUT_MS").then(|| "5000".to_string());
        let cfg = EnvConfig::resolve(env, &args(&["--dist-push-timeout-ms=750"])).unwrap();
        assert_eq!(cfg.dist_push_timeout_ms, Some(750));
        assert_eq!(
            EnvConfig::resolve(env, &[]).unwrap().dist_push_timeout_ms,
            Some(5000)
        );
        assert_eq!(
            EnvConfig::resolve(no_env, &[])
                .unwrap()
                .dist_push_timeout_ms,
            None
        );
        // A zero timeout would reissue every outstanding step instantly.
        assert!(EnvConfig::resolve(no_env, &args(&["--dist-push-timeout-ms", "0"])).is_err());
    }

    #[test]
    fn dist_sparse_threshold_cli_beats_env_and_validates() {
        let env = |k: &str| (k == "EDSR_DIST_SPARSE_THRESHOLD").then(|| "0.5".to_string());
        let cfg = EnvConfig::resolve(env, &args(&["--dist-sparse-threshold", "0.1"])).unwrap();
        assert_eq!(cfg.dist_sparse_threshold, Some(0.1));
        assert_eq!(
            EnvConfig::resolve(env, &[]).unwrap().dist_sparse_threshold,
            Some(0.5)
        );
        assert_eq!(
            EnvConfig::resolve(no_env, &[])
                .unwrap()
                .dist_sparse_threshold,
            None
        );
        // Both endpoints are meaningful: 0.0 = always dense, 1.0 = always
        // sparse-eligible.
        assert_eq!(
            EnvConfig::resolve(no_env, &args(&["--dist-sparse-threshold", "0"]))
                .unwrap()
                .dist_sparse_threshold,
            Some(0.0)
        );
        assert!(EnvConfig::resolve(no_env, &args(&["--dist-sparse-threshold", "1.5"])).is_err());
        assert!(EnvConfig::resolve(no_env, &args(&["--dist-sparse-threshold", "-0.1"])).is_err());
        assert!(EnvConfig::resolve(no_env, &args(&["--dist-sparse-threshold", "dense"])).is_err());
    }

    #[test]
    fn unknown_args_preserved_in_order() {
        let cfg = EnvConfig::resolve(
            no_env,
            &args(&["run", "cifar10", "--threads", "3", "edsr", "--seed", "7"]),
        )
        .unwrap();
        assert_eq!(cfg.threads, Some(3));
        assert_eq!(cfg.rest, args(&["run", "cifar10", "edsr", "--seed", "7"]));
    }

    #[test]
    fn inline_equals_form_accepted() {
        let cfg = EnvConfig::resolve(no_env, &args(&["--threads=4", "--obs=jsonl"])).unwrap();
        assert_eq!(cfg.threads, Some(4));
        assert_eq!(cfg.obs, ObsMode::Jsonl);
    }
}
