//! Property-based tests for the selection and noise subsystems.

#![cfg(test)]

use edsr_linalg::coding_length_entropy;
use edsr_tensor::rng::seeded;
use edsr_tensor::Matrix;
use proptest::prelude::*;

use crate::noise::noise_magnitudes;
use crate::select::{SelectionContext, SelectionStrategy};

fn rep_matrix() -> impl Strategy<Value = Matrix> {
    (4usize..24, 2usize..8).prop_flat_map(|(n, d)| {
        proptest::collection::vec(-3.0f32..3.0, n * d)
            .prop_map(move |data| Matrix::from_vec(n, d, data))
    })
}

fn all_strategies() -> Vec<SelectionStrategy> {
    vec![
        SelectionStrategy::Random,
        SelectionStrategy::Distant,
        SelectionStrategy::KMeans,
        SelectionStrategy::MinVar,
        SelectionStrategy::HighEntropy,
        SelectionStrategy::TraceGreedy,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every strategy returns exactly min(budget, n) distinct in-range
    /// indices, for any representation matrix and budget.
    #[test]
    fn selection_budget_and_dedup_invariants(
        reps in rep_matrix(),
        budget in 0usize..32,
    ) {
        let n = reps.rows();
        for strategy in all_strategies() {
            let ctx = SelectionContext { reps: &reps, aug_view_std: None, cluster_hint: 3 };
            let mut rng = seeded(42);
            let sel = strategy.select(&ctx, budget, &mut rng);
            prop_assert_eq!(sel.len(), budget.min(n), "{} count", strategy.name());
            let mut sorted = sel.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), sel.len(), "{} dups", strategy.name());
            prop_assert!(sel.iter().all(|&i| i < n), "{} range", strategy.name());
        }
    }

    /// Selection is deterministic given the same RNG seed.
    #[test]
    fn selection_is_seed_deterministic(reps in rep_matrix()) {
        for strategy in all_strategies() {
            let ctx = SelectionContext { reps: &reps, aug_view_std: None, cluster_hint: 2 };
            let a = strategy.select(&ctx, 5, &mut seeded(7));
            let b = strategy.select(&ctx, 5, &mut seeded(7));
            prop_assert_eq!(a, b, "{} nondeterministic", strategy.name());
        }
    }

    /// Noise magnitudes are finite and non-negative for any k.
    #[test]
    fn noise_magnitudes_finite_nonnegative(
        reps in rep_matrix(),
        k in 0usize..12,
    ) {
        let selected: Vec<usize> = (0..reps.rows()).step_by(2).collect();
        let mags = noise_magnitudes(&reps, &selected, k);
        prop_assert_eq!(mags.len(), selected.len());
        prop_assert!(mags.iter().all(|m| m.is_finite() && *m >= 0.0));
        if k == 0 {
            prop_assert!(mags.iter().all(|&m| m == 0.0));
        }
    }

    /// Trace-greedy achieves the maximal trace surrogate among all
    /// implemented strategies (it is the literal argmax of Eq. 15).
    #[test]
    fn trace_greedy_maximizes_trace(reps in rep_matrix()) {
        let budget = 3.min(reps.rows());
        let ctx = SelectionContext { reps: &reps, aug_view_std: None, cluster_hint: 2 };
        let greedy = SelectionStrategy::TraceGreedy.select(&ctx, budget, &mut seeded(1));
        let greedy_trace = edsr_linalg::trace_surrogate(&reps.select_rows(&greedy));
        for strategy in all_strategies() {
            let sel = strategy.select(&ctx, budget, &mut seeded(2));
            let tr = edsr_linalg::trace_surrogate(&reps.select_rows(&sel));
            prop_assert!(
                tr <= greedy_trace + 1e-3,
                "{} trace {} exceeds greedy {}",
                strategy.name(),
                tr,
                greedy_trace
            );
        }
    }
}

/// Structured (non-proptest) check: on anisotropic data the high-entropy
/// selector's memory has higher coding-length entropy than the average
/// random memory — the paper's core selection claim.
#[test]
fn high_entropy_dominates_random_on_structured_data() {
    let mut rng = seeded(99);
    let mut reps = Matrix::zeros(150, 6);
    for r in 0..150 {
        reps.set(r, 0, edsr_tensor::rng::gaussian(&mut rng) * 5.0);
        reps.set(r, 1, edsr_tensor::rng::gaussian(&mut rng) * 2.0);
        for c in 2..6 {
            reps.set(r, c, edsr_tensor::rng::gaussian(&mut rng) * 0.3);
        }
    }
    let ctx = SelectionContext {
        reps: &reps,
        aug_view_std: None,
        cluster_hint: 3,
    };
    let he = SelectionStrategy::HighEntropy.select(&ctx, 10, &mut seeded(1));
    let h_he = coding_length_entropy(&reps.select_rows(&he), 0.5);
    let mut h_rand = 0.0;
    for t in 0..20 {
        let r = SelectionStrategy::Random.select(&ctx, 10, &mut seeded(100 + t));
        h_rand += coding_length_entropy(&reps.select_rows(&r), 0.5);
    }
    h_rand /= 20.0;
    assert!(
        h_he > h_rand,
        "H(high-entropy)={h_he} vs mean H(random)={h_rand}"
    );
}
