//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this crate vendors the
//! slice of the criterion API the workspace's `benches/micro.rs` uses:
//! [`Criterion::benchmark_group`] / [`Criterion::bench_function`],
//! [`BenchmarkGroup::bench_function`] / `bench_with_input`, [`BenchmarkId`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical engine it runs a short warm-up, then
//! a fixed measurement window, and prints median per-iteration time — good
//! enough to rank the reproduction's hot paths relative to each other.

use std::time::{Duration, Instant};

/// Measurement window per benchmark (kept short; this harness ranks
/// kernels, it does not produce confidence intervals).
const MEASURE_FOR: Duration = Duration::from_millis(300);
const WARMUP_ITERS: u64 = 3;

/// Identifier of one parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id, mirroring criterion's display form.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= MEASURE_FOR {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn report(group: &str, label: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{group}/{label}: no iterations recorded");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let (value, unit) = if per_iter >= 1.0 {
        (per_iter, "s")
    } else if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else if per_iter >= 1e-6 {
        (per_iter * 1e6, "µs")
    } else {
        (per_iter * 1e9, "ns")
    };
    println!(
        "{group}/{label}: {value:.2} {unit}/iter ({} iters)",
        b.iters
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), &b);
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b);
    }

    /// Ends the group (printing is immediate; nothing to flush).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report("bench", &id.to_string(), &b);
    }
}

/// Re-export for code written against criterion's `black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into one runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        let mut ran = 0u64;
        group.bench_function("counts", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > WARMUP_ITERS, "routine never ran past warmup");
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(
            BenchmarkId::new("classify", 200).to_string(),
            "classify/200"
        );
    }
}
