//! Criterion micro-benchmarks over the reproduction's hot paths:
//! selection strategies, SSL losses (forward+backward), kNN
//! classification, PCA/eigendecomposition, k-means, augmentation
//! throughput, and a full EDSR training step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use edsr_cl::{knn_classify, ContinualModel, ModelConfig};
use edsr_core::{SelectionContext, SelectionStrategy};
use edsr_data::{Augmenter, GridSpec};
use edsr_linalg::{kmeans, sym_eigen, Pca};
use edsr_nn::Binder;
use edsr_ssl::SslVariant;
use edsr_tensor::rng::seeded;
use edsr_tensor::{Matrix, Tape};

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    for &n in &[100usize, 400] {
        let mut rng = seeded(1);
        let reps = Matrix::randn(n, 48, 1.0, &mut rng);
        for strategy in [
            SelectionStrategy::Random,
            SelectionStrategy::Distant,
            SelectionStrategy::KMeans,
            SelectionStrategy::HighEntropy,
            SelectionStrategy::TraceGreedy,
        ] {
            group.bench_with_input(BenchmarkId::new(strategy.name(), n), &reps, |b, reps| {
                b.iter(|| {
                    let ctx = SelectionContext {
                        reps,
                        aug_view_std: None,
                        cluster_hint: 5,
                    };
                    let mut sel_rng = seeded(2);
                    black_box(strategy.select(&ctx, 16, &mut sel_rng))
                })
            });
        }
    }
    group.finish();
}

fn bench_ssl_losses(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssl_step");
    for (name, variant) in [
        ("barlowtwins", SslVariant::BarlowTwins { lambda: 0.02 }),
        ("simsiam", SslVariant::SimSiam),
    ] {
        let mut rng = seeded(3);
        let model = ContinualModel::new(&ModelConfig::image(192).with_variant(variant), &mut rng);
        let batch = Matrix::randn(64, 192, 1.0, &mut rng);
        let grid = GridSpec::new(8, 8, 3);
        let aug = Augmenter::standard_image(grid);
        group.bench_function(name, |b| {
            let mut step_rng = seeded(4);
            b.iter(|| {
                let mut tape = Tape::new();
                let mut binder = Binder::new();
                let (_, _, loss) =
                    model.css_on_batch(&mut tape, &mut binder, &aug, &batch, 0, &mut step_rng);
                let grads = tape.backward(loss);
                black_box(grads.get(loss).is_some())
            })
        });
    }
    group.finish();
}

fn bench_knn_classifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_classifier");
    for &n in &[200usize, 1000] {
        let mut rng = seeded(5);
        let train = Matrix::randn(n, 48, 1.0, &mut rng);
        let labels: Vec<usize> = (0..n).map(|i| i % 10).collect();
        let test = Matrix::randn(50, 48, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("classify", n), &n, |b, _| {
            b.iter(|| black_box(knn_classify(&train, &labels, &test, 15)))
        });
    }
    group.finish();
}

fn bench_linalg(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg");
    let mut rng = seeded(6);
    let x = Matrix::randn(200, 48, 1.0, &mut rng);
    group.bench_function("pca_fit_48d", |b| b.iter(|| black_box(Pca::fit(&x, 16))));
    let sym = x.transpose_matmul(&x);
    group.bench_function("jacobi_eigen_48d", |b| {
        b.iter(|| black_box(sym_eigen(&sym)))
    });
    group.bench_function("kmeans_k16", |b| {
        b.iter(|| {
            let mut krng = seeded(7);
            black_box(kmeans(&x, 16, 20, &mut krng))
        })
    });
    group.finish();
}

fn bench_augmentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("augmentation");
    let grid = GridSpec::new(8, 8, 3);
    let mut rng = seeded(8);
    let batch = Matrix::randn(64, grid.dim(), 1.0, &mut rng);
    let image = Augmenter::standard_image(grid);
    group.bench_function("image_two_views_64", |b| {
        let mut arng = seeded(9);
        b.iter(|| black_box(image.two_views(&batch, &mut arng)))
    });
    let tabular = Augmenter::tabular(batch.clone(), 0.4);
    group.bench_function("tabular_two_views_64", |b| {
        let mut arng = seeded(10);
        b.iter(|| black_box(tabular.two_views(&batch, &mut arng)))
    });
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[64usize, 128] {
        let mut rng = seeded(11);
        let a = Matrix::randn(n, n, 1.0, &mut rng);
        let bm = Matrix::randn(n, n, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("square", n), &n, |b, _| {
            b.iter(|| black_box(a.matmul(&bm)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_selection,
    bench_ssl_losses,
    bench_knn_classifier,
    bench_linalg,
    bench_augmentation,
    bench_matmul
);
criterion_main!(benches);
