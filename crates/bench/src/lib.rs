//! # edsr-bench
//!
//! Experiment harness for the EDSR reproduction: one binary per paper
//! table/figure (DESIGN.md §4) plus Criterion micro-benchmarks.
//!
//! Binaries print the same rows/series the paper reports, with paper
//! values shown alongside for shape comparison (absolute numbers differ by
//! design — the substrate is a simulator, see DESIGN.md §2).
//!
//! Run e.g. `cargo run --release -p edsr-bench --bin table3`. Results are
//! written under `results/` as plain text as well.

use std::io::Write as _;
use std::time::Instant;

use edsr_cl::metrics::mean_std;
use edsr_cl::{
    run_multitask, ContinualModel, Method, ModelConfig, MultitaskResult, RunBuilder, RunResult,
    TrainConfig, TrainError,
};
use edsr_core::prelude::seeded;
use edsr_data::Preset;

/// A named factory producing fresh method instances per seed. `Sync`
/// because sweeps fan seeds out over the `edsr-par` pool and every worker
/// constructs its own method instance from the shared factory.
pub type MethodFactory<'a> = (&'a str, Box<dyn Fn() -> Box<dyn Method> + Sync>);

/// Seeds used for image experiments (paper: 4 runs).
pub const IMAGE_SEEDS: [u64; 4] = [11, 22, 33, 44];

/// Seeds used for tabular experiments (paper: 10 runs).
pub const TABULAR_SEEDS: [u64; 10] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];

/// Aggregated Acc/Fgt over seeds, in percent.
#[derive(Debug, Clone, Copy)]
pub struct AccFgt {
    /// Mean final accuracy (percent).
    pub acc: f32,
    /// Std of final accuracy.
    pub acc_std: f32,
    /// Mean final forgetting (percent).
    pub fgt: f32,
    /// Std of final forgetting.
    pub fgt_std: f32,
    /// Mean wall-clock seconds per run.
    pub seconds: f64,
}

impl AccFgt {
    /// Formats as the paper's `acc ± std` cell (`n/a` when every seed
    /// of the sweep failed).
    pub fn acc_cell(&self) -> String {
        if self.acc.is_nan() {
            return "     n/a    ".into();
        }
        format!("{:5.2} ± {:.2}", self.acc, self.acc_std)
    }

    /// Formats as the paper's `fgt ± std` cell (`n/a` when every seed
    /// of the sweep failed).
    pub fn fgt_cell(&self) -> String {
        if self.fgt.is_nan() {
            return "     n/a    ".into();
        }
        format!("{:5.2} ± {:.2}", self.fgt, self.fgt_std)
    }
}

/// Aggregates per-seed run results. An empty slice (every seed failed)
/// yields NaN statistics, which the cell formatters render as `n/a`.
pub fn aggregate(runs: &[RunResult]) -> AccFgt {
    if runs.is_empty() {
        return AccFgt {
            acc: f32::NAN,
            acc_std: f32::NAN,
            fgt: f32::NAN,
            fgt_std: f32::NAN,
            seconds: f64::NAN,
        };
    }
    let accs: Vec<f32> = runs.iter().map(RunResult::final_acc_pct).collect();
    let fgts: Vec<f32> = runs.iter().map(RunResult::final_fgt_pct).collect();
    let (acc, acc_std) = mean_std(&accs);
    let (fgt, fgt_std) = mean_std(&fgts);
    let seconds = runs.iter().map(RunResult::total_seconds).sum::<f64>() / runs.len() as f64;
    AccFgt {
        acc,
        acc_std,
        fgt,
        fgt_std,
        seconds,
    }
}

/// One seed's structured failure inside a sweep.
#[derive(Debug)]
pub struct SeedFailure {
    /// The seed that failed.
    pub seed: u64,
    /// Why (Diverged carries the failing increment).
    pub error: TrainError,
}

/// Per-seed outcomes of one method x preset sweep: the successful runs
/// plus every failed seed's structured error. A failing seed no longer
/// aborts the sweep — it is recorded and the remaining seeds run.
#[derive(Debug, Default)]
pub struct Sweep {
    /// Successful runs, in seed order.
    pub runs: Vec<RunResult>,
    /// Failed seeds with their errors, in seed order.
    pub failures: Vec<SeedFailure>,
}

impl Sweep {
    /// Aggregated Acc/Fgt of the successful seeds (NaN cells when none).
    pub fn aggregate(&self) -> AccFgt {
        aggregate(&self.runs)
    }

    /// Writes one `!!` line per failed seed into the report, naming the
    /// method/seed/increment, and returns how many failed.
    pub fn report_failures(&self, report: &mut Report, label: &str) -> usize {
        for f in &self.failures {
            report.line(format!("  !! {label} seed {}: {}", f.seed, f.error));
        }
        self.failures.len()
    }
}

/// Builds the standard image model config for a preset.
pub fn image_model_config(preset: &Preset) -> ModelConfig {
    ModelConfig::image(preset.grid.dim())
}

/// Runs one method over one preset for the given seeds, building fresh
/// data/model per seed (data seed = seed, model seed = seed + 1000,
/// training stream seed = seed + 2000, matching all experiments).
///
/// Seeds fan out over the `edsr-par` pool. Every seed is fully
/// self-contained (own data, model, RNG streams, method instance), so the
/// per-seed results are identical to the serial loop at any thread count;
/// they are collected back in seed order. A panicking seed is recorded as
/// [`TrainError::Worker`] and the remaining seeds still run.
pub fn run_method_over_seeds(
    preset: &Preset,
    cfg: &TrainConfig,
    seeds: &[u64],
    make_method: impl Fn() -> Box<dyn Method> + Sync,
) -> Sweep {
    run_method_over_seeds_with_model(
        preset,
        cfg,
        seeds,
        &image_model_config(preset),
        &make_method,
    )
}

/// As [`run_method_over_seeds`] with an explicit model config (Table VI
/// swaps the SSL variant).
pub fn run_method_over_seeds_with_model(
    preset: &Preset,
    cfg: &TrainConfig,
    seeds: &[u64],
    model_cfg: &ModelConfig,
    make_method: &(dyn Fn() -> Box<dyn Method> + Sync),
) -> Sweep {
    let outcomes = edsr_par::par_map_collect(seeds.len(), |si| {
        let seed = seeds[si];
        edsr_par::catch_panic(|| {
            let mut data_rng = seeded(seed);
            let (mut seq, augs) = preset.build_with_augmenters(&mut data_rng);
            let mut model = ContinualModel::new(model_cfg, &mut seeded(seed + 1000));
            let mut run_rng = seeded(seed + 2000);
            let mut method = make_method();
            RunBuilder::new(cfg).run(method.as_mut(), &mut model, &mut seq, &augs, &mut run_rng)
        })
        .unwrap_or_else(|msg| Err(TrainError::Worker(msg)))
    });
    let mut sweep = Sweep::default();
    for (&seed, outcome) in seeds.iter().zip(outcomes) {
        match outcome {
            Ok(run) => sweep.runs.push(run),
            Err(error) => sweep.failures.push(SeedFailure { seed, error }),
        }
    }
    sweep
}

/// Runs the Multitask upper bound over seeds, returning mean/std percent
/// plus the per-seed results and any per-seed failures (NaN mean when
/// every seed failed). Seeds fan out over the `edsr-par` pool exactly as
/// in [`run_method_over_seeds`].
pub fn run_multitask_over_seeds(
    preset: &Preset,
    cfg: &TrainConfig,
    seeds: &[u64],
) -> (f32, f32, Vec<MultitaskResult>, Vec<SeedFailure>) {
    let outcomes = edsr_par::par_map_collect(seeds.len(), |si| {
        let seed = seeds[si];
        edsr_par::catch_panic(|| {
            let mut data_rng = seeded(seed);
            let (mut seq, augs) = preset.build_with_augmenters(&mut data_rng);
            let model_cfg = image_model_config(preset);
            let mut model = ContinualModel::new(&model_cfg, &mut seeded(seed + 1000));
            let mut run_rng = seeded(seed + 2000);
            run_multitask(&mut model, &mut seq, &augs, cfg, &mut run_rng)
        })
        .unwrap_or_else(|msg| Err(TrainError::Worker(msg)))
    });
    let mut results = Vec::new();
    let mut failures = Vec::new();
    for (&seed, outcome) in seeds.iter().zip(outcomes) {
        match outcome {
            Ok(r) => results.push(r),
            Err(error) => failures.push(SeedFailure { seed, error }),
        }
    }
    if results.is_empty() {
        return (f32::NAN, f32::NAN, results, failures);
    }
    let accs: Vec<f32> = results.iter().map(MultitaskResult::acc_pct).collect();
    let (m, s) = mean_std(&accs);
    (m, s, results, failures)
}

/// A writer that tees output to stdout and `results/<name>.txt`.
///
/// File problems never abort a sweep (stdout still carries the rows),
/// but they are surfaced on stderr exactly once instead of being
/// silently swallowed.
pub struct Report {
    file: Option<std::fs::File>,
    start: Instant,
}

impl Report {
    /// Creates `results/` on demand, opens `results/<name>.txt`, and
    /// starts the clock. Directory/file errors are reported to stderr
    /// and the report continues stdout-only.
    pub fn new(name: &str) -> Self {
        let file = match std::fs::create_dir_all("results") {
            Ok(()) => {
                let path = format!("results/{name}.txt");
                match std::fs::File::create(&path) {
                    Ok(f) => Some(f),
                    Err(e) => {
                        eprintln!("warning: cannot create {path}: {e}; writing to stdout only");
                        None
                    }
                }
            }
            Err(e) => {
                eprintln!("warning: cannot create results/: {e}; writing to stdout only");
                None
            }
        };
        Self {
            file,
            start: Instant::now(),
        }
    }

    /// Writes one line to stdout and the report file. A failed file
    /// write is reported once and the file is dropped (stdout keeps
    /// going).
    pub fn line(&mut self, text: impl AsRef<str>) {
        let text = text.as_ref();
        println!("{text}");
        if let Some(f) = &mut self.file {
            if let Err(e) = writeln!(f, "{text}") {
                eprintln!("warning: report write failed: {e}; continuing on stdout only");
                self.file = None;
            }
        }
    }

    /// Writes the closing timing line.
    pub fn finish(&mut self) {
        let elapsed = self.start.elapsed().as_secs_f64();
        self.line(format!("\n[completed in {elapsed:.1}s]"));
    }
}

/// Seed-count control: `EDSR_QUICK=1` uses a single seed (smoke tests);
/// `EDSR_SEEDS=n` truncates to `n` seeds (budgeted single-core runs);
/// otherwise the full list is used.
pub fn seeds_for(seeds: &[u64]) -> Vec<u64> {
    if std::env::var("EDSR_QUICK").is_ok() {
        return seeds.iter().take(1).copied().collect();
    }
    if let Ok(n) = std::env::var("EDSR_SEEDS") {
        if let Ok(n) = n.parse::<usize>() {
            return seeds.iter().take(n.max(1)).copied().collect();
        }
    }
    seeds.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_cl::metrics::AccuracyMatrix;

    fn run_result(accs: &[f32]) -> RunResult {
        let mut matrix = AccuracyMatrix::new();
        for (i, &a) in accs.iter().enumerate() {
            // Constant-accuracy history: row i repeats `a` i+1 times.
            matrix.push_row(vec![a; i + 1]);
        }
        RunResult {
            method: "m".into(),
            benchmark: "b".into(),
            matrix,
            task_seconds: vec![1.0; accs.len()],
            task_losses: vec![0.0; accs.len()],
            recoveries: 0,
        }
    }

    #[test]
    fn aggregate_means_and_stds() {
        let runs = vec![run_result(&[0.8, 0.8]), run_result(&[0.6, 0.6])];
        let agg = aggregate(&runs);
        assert!((agg.acc - 70.0).abs() < 1e-4);
        assert!((agg.acc_std - 10.0).abs() < 1e-4);
        assert_eq!(agg.fgt, 0.0);
        assert!((agg.seconds - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cells_format_like_the_paper() {
        let runs = vec![run_result(&[0.9])];
        let agg = aggregate(&runs);
        assert!(agg.acc_cell().contains('±'));
        assert!(agg.fgt_cell().contains('±'));
    }

    #[test]
    fn seeds_for_respects_env_overrides() {
        // Serialize env mutation within this test.
        std::env::remove_var("EDSR_QUICK");
        std::env::set_var("EDSR_SEEDS", "2");
        assert_eq!(seeds_for(&IMAGE_SEEDS), vec![11, 22]);
        std::env::set_var("EDSR_QUICK", "1");
        assert_eq!(seeds_for(&IMAGE_SEEDS), vec![11]);
        std::env::remove_var("EDSR_QUICK");
        std::env::remove_var("EDSR_SEEDS");
        assert_eq!(seeds_for(&IMAGE_SEEDS).len(), 4);
    }

    #[test]
    fn report_writes_results_file() {
        let mut report = Report::new("unit-test-report");
        report.line("hello");
        report.finish();
        let content = std::fs::read_to_string("results/unit-test-report.txt").expect("file");
        assert!(content.contains("hello"));
        assert!(content.contains("completed in"));
        let _ = std::fs::remove_file("results/unit-test-report.txt");
    }
}
