//! **Extension ablations** (beyond the paper's tables; DESIGN.md §7):
//! 1. Eq. 15 readings: PCA-leverage (`HighEntropy`) vs literal trace
//!    maximization (`TraceGreedy`).
//! 2. §IV-F's "potential way": similarity-weighted replay sampling vs
//!    uniform.
//! 3. The role of the CaSSLe-style distillation on new data inside EDSR
//!    (`distill_new` off = replay-only EDSR).
//! 4. Lin et al. \[61\] as a full method (k-means storage + representation-
//!    distance preservation) — the related-work memory-based UCL approach
//!    whose Min-Var selector appears in Table V.

use edsr_bench::{run_method_over_seeds, seeds_for, Report, IMAGE_SEEDS};
use edsr_cl::{LinReplay, Method, TrainConfig};
use edsr_core::{Edsr, EdsrConfig, ReplaySampling, SelectionStrategy};
use edsr_data::cifar100_sim;

fn main() {
    let mut report = Report::new("ablation");
    let seeds = seeds_for(&IMAGE_SEEDS);
    let cfg = TrainConfig::image();
    let preset = cifar100_sim();
    let budget = preset.per_task_budget();

    report.line("Extension ablations on cifar100-sim (Acc / Fgt)");
    type ConfigFactory<'a> = (&'a str, Box<dyn Fn() -> EdsrConfig + Sync>);
    let variants: Vec<ConfigFactory> = vec![
        (
            "EDSR (paper default)",
            Box::new(|| EdsrConfig::paper_default(4, 16, 5)),
        ),
        (
            "TraceGreedy selection",
            Box::new(|| {
                let mut c = EdsrConfig::paper_default(4, 16, 5);
                c.selection = SelectionStrategy::TraceGreedy;
                c
            }),
        ),
        (
            "Similarity-weighted replay",
            Box::new(|| {
                let mut c = EdsrConfig::paper_default(4, 16, 5);
                c.replay_sampling = ReplaySampling::SimilarityWeighted;
                c
            }),
        ),
        (
            "No new-data distillation",
            Box::new(|| {
                let mut c = EdsrConfig::paper_default(4, 16, 5);
                c.distill_new = false;
                c
            }),
        ),
    ];
    // The full Lin et al. method (its Min-Var storage rule appears in
    // Table V; the distance-preservation replay is exercised here).
    {
        let sweep = run_method_over_seeds(&preset, &cfg, &seeds, || {
            Box::new(LinReplay::new(budget, cfg.replay_batch, 1.0)) as Box<dyn Method>
        });
        sweep.report_failures(&mut report, "Lin et al. [61]");
        let agg = sweep.aggregate();
        report.line(format!(
            "{:<28} | Acc {} | Fgt {}",
            "Lin et al. [61]",
            agg.acc_cell(),
            agg.fgt_cell()
        ));
    }

    for (name, make_cfg) in &variants {
        let sweep = run_method_over_seeds(&preset, &cfg, &seeds, || {
            let mut c = make_cfg();
            c.per_task_budget = budget;
            c.replay_batch = cfg.replay_batch;
            c.noise_neighbors = preset.noise_neighbors;
            Box::new(Edsr::new(c)) as Box<dyn Method>
        });
        sweep.report_failures(&mut report, name);
        let agg = sweep.aggregate();
        report.line(format!(
            "{:<28} | Acc {} | Fgt {}",
            name,
            agg.acc_cell(),
            agg.fgt_cell()
        ));
    }
    report.finish();
}
