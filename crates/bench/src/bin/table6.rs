//! **Table VI** — swapping the CSSL objective: SimSiam vs BarlowTwins for
//! Multitask, Finetune, LUMP, CaSSLe, EDSR on CIFAR-100 and Tiny-ImageNet
//! simulations.
//!
//! Paper shape: distillation-based methods (CaSSLe, EDSR) lose more than
//! LUMP when moving to BarlowTwins (batch-coupled loss confuses the
//! distillation), but EDSR stays ahead of CaSSLe thanks to its use of old
//! data. NOTE the simulation's default objective is BarlowTwins (DESIGN.md
//! §2): at MLP scale SimSiam's implicit anti-collapse is weak, so here the
//! *SimSiam* column is the degraded variant — the comparison direction
//! inverts while the within-column method ordering is what we check.

use edsr_bench::{run_method_over_seeds_with_model, seeds_for, Report, IMAGE_SEEDS};
use edsr_cl::{run_multitask, Cassle, ContinualModel, Finetune, Lump, TrainConfig};
use edsr_core::prelude::seeded;
use edsr_core::Edsr;
use edsr_data::{cifar100_sim, tiny_imagenet_sim, Preset};
use edsr_ssl::SslVariant;

fn main() {
    let mut report = Report::new("table6");
    let seeds = seeds_for(&IMAGE_SEEDS);
    let cfg = TrainConfig::image();
    let presets: Vec<Preset> = vec![cifar100_sim(), tiny_imagenet_sim()];
    let variants = [
        ("BarlowTwins", SslVariant::BarlowTwins { lambda: 0.02 }),
        ("SimSiam", SslVariant::SimSiam),
    ];

    report.line("Table VI — different CSSL losses (Acc)");
    for preset in &presets {
        let budget = preset.per_task_budget();
        for (vname, variant) in variants {
            report.line(format!("\n== {} / {} ==", preset.name, vname));
            let model_cfg = edsr_bench::image_model_config(preset).with_variant(variant);

            // Multitask under this variant; failed seeds are reported
            // and excluded from the mean.
            let mut mt = Vec::new();
            for &seed in &seeds {
                let mut data_rng = seeded(seed);
                let (seq, augs) = preset.build_with_augmenters(&mut data_rng);
                let mut model = ContinualModel::new(&model_cfg, &mut seeded(seed + 1000));
                let mut run_rng = seeded(seed + 2000);
                match run_multitask(&mut model, &mut &seq, &augs, &cfg, &mut run_rng) {
                    Ok(r) => mt.push(r.acc_pct()),
                    Err(e) => report.line(format!("  !! Multitask seed {seed}: {e}")),
                }
            }
            let (m, s) = edsr_cl::mean_std(&mt);
            report.line(format!("{:<10} | Acc {:5.2} ± {:.2}", "Multitask", m, s));

            let replay_batch = cfg.replay_batch;
            let noise_k = preset.noise_neighbors;
            let methods: Vec<edsr_bench::MethodFactory> = vec![
                ("Finetune", Box::new(|| Box::new(Finetune::new()))),
                ("LUMP", Box::new(move || Box::new(Lump::new(budget)))),
                ("CaSSLe", Box::new(|| Box::new(Cassle::new()))),
                (
                    "EDSR",
                    Box::new(move || Box::new(Edsr::paper_default(budget, replay_batch, noise_k))),
                ),
            ];
            for (name, make) in &methods {
                let sweep =
                    run_method_over_seeds_with_model(preset, &cfg, &seeds, &model_cfg, &|| make());
                sweep.report_failures(&mut report, name);
                let agg = sweep.aggregate();
                report.line(format!(
                    "{:<10} | Acc {} | Fgt {}",
                    name,
                    agg.acc_cell(),
                    agg.fgt_cell()
                ));
            }
        }
    }
    report.finish();
}
