//! **Fig. 7** — alternative task granularity: CIFAR-100 and Tiny-ImageNet
//! resplit into 10 increments of 10 classes (vs the original 20×5), with
//! 32-per-subset-scaled memory; `Acc_i` curves per increment.
//!
//! Paper shapes: early `Acc_i` *rises* with the first increments (early
//! small datasets are under-learned until the representation matures);
//! EDSR stays on top across both settings and the whole stream.

use edsr_bench::{run_method_over_seeds, seeds_for, Report, IMAGE_SEEDS};
use edsr_cl::{mean_std, Cassle, Finetune, Lump, TrainConfig};
use edsr_core::Edsr;
use edsr_data::{cifar100_sim, tiny_imagenet_sim, Preset};

fn acc_series(preset: &Preset, cfg: &TrainConfig, seeds: &[u64], report: &mut Report) {
    let budget = preset.per_task_budget();
    let replay_batch = cfg.replay_batch;
    let noise_k = preset.noise_neighbors;
    let methods: Vec<edsr_bench::MethodFactory> = vec![
        ("Finetune", Box::new(|| Box::new(Finetune::new()))),
        ("LUMP", Box::new(move || Box::new(Lump::new(budget)))),
        ("CaSSLe", Box::new(|| Box::new(Cassle::new()))),
        (
            "EDSR",
            Box::new(move || Box::new(Edsr::paper_default(budget, replay_batch, noise_k))),
        ),
    ];
    for (name, make) in &methods {
        let sweep = run_method_over_seeds(preset, cfg, seeds, || make());
        sweep.report_failures(report, name);
        let runs = &sweep.runs;
        let Some(first) = runs.first() else {
            report.line(format!("{name:<9}: all seeds failed"));
            continue;
        };
        let n = first.matrix.num_increments();
        let series: Vec<String> = (0..n)
            .map(|i| {
                let vals: Vec<f32> = runs.iter().map(|r| r.matrix.acc_at(i) * 100.0).collect();
                let (m, _) = mean_std(&vals);
                format!("{m:5.1}")
            })
            .collect();
        report.line(format!("{name:<9} Acc_i: {}", series.join(" ")));
    }
}

fn main() {
    let mut report = Report::new("fig7");
    let seeds = seeds_for(&IMAGE_SEEDS);
    let cfg = TrainConfig::image();

    report.line("Fig. 7 — Acc_i per increment under two task splits");
    for base in [cifar100_sim(), tiny_imagenet_sim()] {
        // Original split: 20 tasks x 5 classes.
        report.line(format!(
            "\n== {} original split ({}x{} classes, memory {}) ==",
            base.name,
            base.num_tasks(),
            base.classes_per_task,
            base.memory_total
        ));
        acc_series(&base, &cfg, &seeds, &mut report);

        // Resplit: 10 tasks x 10 classes; memory scales with per-subset
        // budget held constant (paper: "32 samples are stored for each
        // data subset, thus 640 original / 320 new").
        let per_subset = base.per_task_budget();
        let resplit = base
            .with_classes_per_task(10)
            .with_memory_total(per_subset * 10);
        report.line(format!(
            "\n== {} resplit ({}x{} classes, memory {}) ==",
            resplit.name,
            resplit.num_tasks(),
            resplit.classes_per_task,
            resplit.memory_total
        ));
        acc_series(&resplit, &cfg, &seeds, &mut report);
    }
    report.finish();
}
