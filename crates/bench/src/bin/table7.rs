//! **Table VII** — the tabular stream (§IV-E): Multitask, Finetune,
//! CaSSLe, EDSR over the five heterogeneous-dimension tabular datasets,
//! memory = 1% of each increment, 10 seeds.
//!
//! Paper shapes: Multitask is *worse* than the continual methods (the
//! size-imbalanced joint mixture under-trains small datasets); EDSR best
//! Acc and lowest Fgt. LUMP is excluded (mixup cannot span heterogeneous
//! input dims).

use edsr_bench::{aggregate, seeds_for, Report, SeedFailure, TABULAR_SEEDS};
use edsr_cl::{
    run_multitask, tabular_augmenters, Cassle, ContinualModel, Finetune, Method, ModelConfig,
    RunBuilder, TrainConfig,
};
use edsr_core::prelude::seeded;
use edsr_core::Edsr;
use edsr_data::{tabular_sequence, TabularConfig, TABULAR_SPECS};

/// Paper row: (name, acc, fgt or NaN).
const PAPER: &[(&str, f32, f32)] = &[
    ("Multitask", 80.38, f32::NAN),
    ("Finetune", 80.82, 0.79),
    ("CaSSLe", 81.09, 0.69),
    ("EDSR", 81.27, 0.52),
];

fn main() {
    let mut report = Report::new("table7");
    let seeds = seeds_for(&TABULAR_SEEDS);
    let cfg = TrainConfig::tabular();
    let data_cfg = TabularConfig::default();
    let input_dims: Vec<usize> = TABULAR_SPECS.iter().map(|s| s.input_dim).collect();

    report.line("Table VII — learning the tabular stream (Acc / Fgt, 1% memory)");
    report.line(format!(
        "{} seeds; paper values in parentheses\n",
        seeds.len()
    ));

    let mut rows: Vec<(String, String, String)> = Vec::new();

    // Multitask; failed seeds are reported and excluded from the mean.
    let mut mt = Vec::new();
    for &seed in &seeds {
        let mut data_rng = seeded(seed);
        let seq = tabular_sequence(&data_cfg, &mut data_rng);
        let augs = tabular_augmenters(&mut &seq, 0.4).expect("tabular augmenters");
        let model_cfg = ModelConfig::tabular(input_dims.clone());
        let mut model = ContinualModel::new(&model_cfg, &mut seeded(seed + 1000));
        let mut run_rng = seeded(seed + 2000);
        match run_multitask(&mut model, &mut &seq, &augs, &cfg, &mut run_rng) {
            Ok(r) => mt.push(r.acc_pct()),
            Err(e) => report.line(format!("  !! Multitask seed {seed}: {e}")),
        }
    }
    let (m, s) = edsr_cl::mean_std(&mt);
    rows.push(("Multitask".into(), format!("{m:5.2} ± {s:.2}"), "-".into()));

    for name in ["Finetune", "CaSSLe", "EDSR"] {
        let mut runs: Vec<edsr_cl::RunResult> = Vec::new();
        let mut failures: Vec<SeedFailure> = Vec::new();
        for &seed in &seeds {
            let mut data_rng = seeded(seed);
            let seq = tabular_sequence(&data_cfg, &mut data_rng);
            let augs = tabular_augmenters(&mut &seq, 0.4).expect("tabular augmenters");
            let model_cfg = ModelConfig::tabular(input_dims.clone());
            let mut model = ContinualModel::new(&model_cfg, &mut seeded(seed + 1000));
            let mut run_rng = seeded(seed + 2000);
            let mut method: Box<dyn Method> = match name {
                "Finetune" => Box::new(Finetune::new()),
                "CaSSLe" => Box::new(Cassle::new()),
                _ => {
                    // 1% memory per increment: use the largest train
                    // split to size the budget; end_task clamps.
                    let budget =
                        (seq.tasks.iter().map(|t| t.train.len()).max().unwrap_or(100) / 100).max(2);
                    Box::new(Edsr::paper_default(budget, cfg.replay_batch, 10))
                }
            };
            match RunBuilder::new(&cfg).run(
                method.as_mut(),
                &mut model,
                &mut &seq,
                &augs,
                &mut run_rng,
            ) {
                Ok(run) => runs.push(run),
                Err(error) => failures.push(SeedFailure { seed, error }),
            }
        }
        for f in &failures {
            report.line(format!("  !! {name} seed {}: {}", f.seed, f.error));
        }
        let agg = aggregate(&runs);
        rows.push((name.into(), agg.acc_cell(), agg.fgt_cell()));
    }

    report.line(format!(
        "{:<10} | {:>14} {:>9} | {:>14} {:>9}",
        "Method", "Acc", "(paper)", "Fgt", "(paper)"
    ));
    for (row, (name, acc, fgt)) in rows.iter().enumerate() {
        let (_, pa, pf) = PAPER[row];
        let pf_cell = if pf.is_nan() {
            "-".to_string()
        } else {
            format!("({pf:.2})")
        };
        report.line(format!(
            "{:<10} | {:>14} {:>9} | {:>14} {:>9}",
            name,
            acc,
            format!("({pa:.2})"),
            fgt,
            pf_cell
        ));
    }
    report.finish();
}
