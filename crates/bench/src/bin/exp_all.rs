//! Runs every table/figure binary in sequence (same process), writing
//! each report under `results/`. Mirrors DESIGN.md §4's experiment index.
//!
//! A failing or unlaunchable experiment no longer aborts the suite: it
//! is recorded, the remaining experiments run, and the process exits
//! non-zero with a summary of what failed.
//!
//! Usage: `cargo run --release -p edsr-bench --bin exp_all`
//! Set `EDSR_QUICK=1` for a single-seed smoke pass.

use std::process::Command;

fn main() {
    let exe_dir = match std::env::current_exe() {
        Ok(p) => match p.parent() {
            Some(dir) => dir.to_path_buf(),
            None => {
                eprintln!("error: current executable has no parent directory");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: cannot locate current executable: {e}");
            std::process::exit(1);
        }
    };
    let experiments = [
        "table3",
        "table4",
        "table5",
        "table6",
        "table7",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "ablation",
        "arch_ablation",
    ];
    let mut failed: Vec<String> = Vec::new();
    for exp in experiments {
        println!("\n########## {exp} ##########");
        match Command::new(exe_dir.join(exp)).status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("{exp} exited with {status}");
                failed.push(format!("{exp} ({status})"));
            }
            Err(e) => {
                eprintln!("failed to launch {exp}: {e}");
                failed.push(format!("{exp} (launch: {e})"));
            }
        }
    }
    if failed.is_empty() {
        println!("\nAll experiments complete; reports in results/.");
    } else {
        eprintln!(
            "\n{} experiment(s) failed: {}",
            failed.len(),
            failed.join(", ")
        );
        std::process::exit(1);
    }
}
