//! Runs every table/figure binary in sequence (same process), writing
//! each report under `results/`. Mirrors DESIGN.md §4's experiment index.
//!
//! Usage: `cargo run --release -p edsr-bench --bin exp_all`
//! Set `EDSR_QUICK=1` for a single-seed smoke pass.

use std::process::Command;

fn main() {
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(std::path::Path::to_path_buf))
        .expect("current_exe dir");
    let experiments =
        ["table3", "table4", "table5", "table6", "table7", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "ablation", "arch_ablation"];
    for exp in experiments {
        println!("\n########## {exp} ##########");
        let status = Command::new(exe_dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        if !status.success() {
            eprintln!("{exp} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\nAll experiments complete; reports in results/.");
}
