//! **Architecture ablation** (extension beyond the paper's tables): the
//! paper's encoder is a CNN (ResNet-18); the simulation default is an MLP
//! stem (DESIGN.md §2). This harness runs Finetune / CaSSLe / EDSR with
//! both stems on the CIFAR-100 simulation so the substitution's effect is
//! measurable rather than assumed.

use edsr_bench::{run_method_over_seeds_with_model, seeds_for, Report, IMAGE_SEEDS};
use edsr_cl::{Cassle, Finetune, ModelConfig, TrainConfig};
use edsr_core::Edsr;
use edsr_data::cifar100_sim;
use edsr_nn::ConvShape;

fn main() {
    let mut report = Report::new("arch_ablation");
    let seeds = seeds_for(&IMAGE_SEEDS);
    let cfg = TrainConfig::image();
    let preset = cifar100_sim();
    let budget = preset.per_task_budget();
    let shape = ConvShape {
        channels: preset.grid.channels,
        height: preset.grid.height,
        width: preset.grid.width,
    };

    report.line("Architecture ablation on cifar100-sim (Acc / Fgt)");
    for (arch, model_cfg) in [
        ("MLP stem", ModelConfig::image(preset.grid.dim())),
        ("Conv stem", ModelConfig::conv_image(shape, 8)),
    ] {
        report.line(format!("\n== {arch} =="));
        let replay_batch = cfg.replay_batch;
        let noise_k = preset.noise_neighbors;
        let methods: Vec<edsr_bench::MethodFactory> = vec![
            ("Finetune", Box::new(|| Box::new(Finetune::new()))),
            ("CaSSLe", Box::new(|| Box::new(Cassle::new()))),
            (
                "EDSR",
                Box::new(move || Box::new(Edsr::paper_default(budget, replay_batch, noise_k))),
            ),
        ];
        for (name, make) in &methods {
            let sweep =
                run_method_over_seeds_with_model(&preset, &cfg, &seeds, &model_cfg, &|| make());
            sweep.report_failures(&mut report, name);
            let agg = sweep.aggregate();
            report.line(format!(
                "{:<10} | Acc {} | Fgt {} | {:.0}s/run",
                name,
                agg.acc_cell(),
                agg.fgt_cell(),
                agg.seconds
            ));
        }
    }
    report.finish();
}
