//! **Table V** — selection strategy × replay loss grid: {Random, K-means,
//! Min-Var, Distant, High-Entropy} each replayed with `L_dis` and `L_rpl`.
//!
//! Paper shapes: any selection + replay beats no replay; high-entropy is
//! the best / most consistent selector; `L_rpl` generally improves Acc and
//! Fgt over `L_dis` across selectors.

use edsr_bench::{run_method_over_seeds, seeds_for, Report, IMAGE_SEEDS};
use edsr_cl::{Cassle, Method, TrainConfig};
use edsr_core::{table5_strategies, Edsr, EdsrConfig, ReplayLoss};
use edsr_data::{cifar100_sim, cifar10_sim, tiny_imagenet_sim, Preset};

fn main() {
    let mut report = Report::new("table5");
    let seeds = seeds_for(&IMAGE_SEEDS);
    let cfg = TrainConfig::image();
    let presets: Vec<Preset> = vec![cifar10_sim(), cifar100_sim(), tiny_imagenet_sim()];

    report.line("Table V — storage methods x replay loss (Acc / Fgt)");
    for preset in &presets {
        let budget = preset.per_task_budget();
        report.line(format!(
            "\n== {} (per-task budget {budget}) ==",
            preset.name
        ));

        // No-replay reference (CaSSLe).
        let sweep = run_method_over_seeds(preset, &cfg, &seeds, || {
            Box::new(Cassle::new()) as Box<dyn Method>
        });
        sweep.report_failures(&mut report, "No Replay (CaSSLe)");
        let agg = sweep.aggregate();
        report.line(format!(
            "{:<24} | Acc {} | Fgt {}",
            "No Replay (CaSSLe)",
            agg.acc_cell(),
            agg.fgt_cell()
        ));

        for replay in [ReplayLoss::Dis, ReplayLoss::Rpl] {
            report.line(format!("-- replay with {} --", replay.name()));
            for strategy in table5_strategies() {
                let sweep = run_method_over_seeds(preset, &cfg, &seeds, || {
                    let mut c =
                        EdsrConfig::paper_default(budget, cfg.replay_batch, preset.noise_neighbors);
                    c.selection = strategy;
                    c.replay_loss = replay;
                    Box::new(Edsr::new(c)) as Box<dyn Method>
                });
                sweep.report_failures(&mut report, strategy.name());
                let agg = sweep.aggregate();
                report.line(format!(
                    "{:<24} | Acc {} | Fgt {}",
                    strategy.name(),
                    agg.acc_cell(),
                    agg.fgt_cell()
                ));
            }
        }
    }
    report.finish();
}
