//! **Fig. 4** — forgetting matrices `F` (log-scaled heat data) for
//! Finetune, SI, DER, LUMP, CaSSLe, EDSR on each image benchmark.
//!
//! Paper shapes: Finetune/SI/DER show dark (large-forgetting) lower
//! triangles; LUMP lighter; CaSSLe lighter still; EDSR lightest. The
//! printed matrices use the paper's `log(F)` color scale as numbers
//! (`--` marks F ≤ 0.1%, the paper's lightest shade).

use edsr_bench::{run_method_over_seeds, seeds_for, Report, IMAGE_SEEDS};
use edsr_cl::{Cassle, Der, Finetune, Lump, Si, TrainConfig};
use edsr_core::Edsr;
use edsr_data::all_image_presets;

fn main() {
    let mut report = Report::new("fig4");
    // One seed per matrix (the paper also shows single-run heatmaps).
    let seeds = [seeds_for(&IMAGE_SEEDS)[0]];
    let cfg = TrainConfig::image();

    report.line("Fig. 4 — forgetting matrices F (values are log10 of percent forgetting)");
    for preset in all_image_presets() {
        let budget = preset.per_task_budget();
        report.line(format!("\n==== {} ====", preset.name));
        let replay_batch = cfg.replay_batch;
        let noise_k = preset.noise_neighbors;
        let methods: Vec<edsr_bench::MethodFactory> = vec![
            ("Finetune", Box::new(|| Box::new(Finetune::new()))),
            ("SI", Box::new(|| Box::new(Si::new(0.1)))),
            (
                "DER",
                Box::new(move || Box::new(Der::new(budget, replay_batch, 0.5))),
            ),
            ("LUMP", Box::new(move || Box::new(Lump::new(budget)))),
            ("CaSSLe", Box::new(|| Box::new(Cassle::new()))),
            (
                "EDSR",
                Box::new(move || Box::new(Edsr::paper_default(budget, replay_batch, noise_k))),
            ),
        ];
        for (name, make) in &methods {
            let sweep = run_method_over_seeds(&preset, &cfg, &seeds, || make());
            sweep.report_failures(&mut report, name);
            let Some(first) = sweep.runs.first() else {
                report.line(format!("-- {name}: all seeds failed --"));
                continue;
            };
            let f = first.matrix.forgetting_matrix();
            let mean_f: f32 = {
                let vals: Vec<f32> = f
                    .iter()
                    .enumerate()
                    .flat_map(|(i, row)| row[..i].to_vec())
                    .collect();
                if vals.is_empty() {
                    0.0
                } else {
                    vals.iter().sum::<f32>() / vals.len() as f32
                }
            };
            report.line(format!(
                "-- {name} (mean off-diagonal F {:.2}%) --",
                mean_f * 100.0
            ));
            for (i, row) in f.iter().enumerate() {
                let cells: Vec<String> = row
                    .iter()
                    .map(|&v| {
                        let pct = v * 100.0;
                        if pct <= 0.1 {
                            "  --".into()
                        } else {
                            format!("{:4.1}", pct.log10())
                        }
                    })
                    .collect();
                report.line(format!("  i={:2} | {}", i, cells.join(" ")));
            }
        }
    }
    report.finish();
}
