//! Load generator for the `edsr-serve` TCP server: N concurrent clients
//! stream embed + kNN requests at a freshly served snapshot and the
//! per-request latencies land in `BENCH_serve.json` (repo root) as
//! p50/p99 plus aggregate throughput.
//!
//! The measured phase runs twice against the same trained model — once
//! on the f32 backend (v1 snapshot) and once on the int8 backend (v2,
//! `quantize_serve_snapshot`) — so the paired rows quantify what
//! quantization buys: embed/kNN p50/p99, req/s, and snapshot bytes on
//! disk for both formats. If the int8 embed p50 is not faster than f32
//! the binary prints a `WARNING` (treat as a perf regression in the
//! quantized kernels).
//!
//! The snapshot is built in-process (seeded model + synthetic replay
//! memory), so the numbers measure the serving stack — wire protocol,
//! micro-batcher, eval-mode forward, kNN scan — not training.
//! `EDSR_BENCH_QUICK=1` shrinks clients and request counts to a smoke
//! run; `EDSR_SERVE_BATCH` / `EDSR_SERVE_WINDOW_US` tune the batcher.

use std::io::Write as _;
use std::time::Instant;

use edsr_cl::{
    quantize_serve_snapshot, save_quant_serve_snapshot, save_serve_snapshot, CheckpointConfig,
    ContinualModel, ModelConfig, ServeSnapshot,
};
use edsr_core::prelude::seeded;
use edsr_serve::{serve, Client, ServeError, ServerConfig, WireMetric};
use edsr_serve::{Engine, ServerReport};
use edsr_tensor::Matrix;

const INPUT_DIM: usize = 32;

/// Latencies for one request kind, microseconds, unsorted.
#[derive(Default)]
struct Lats {
    embed: Vec<f64>,
    knn: Vec<f64>,
}

/// `p` in [0, 100] over a sorted slice (nearest-rank on the upper side).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn client_loop(
    addr: std::net::SocketAddr,
    client_id: u64,
    requests: usize,
    knn_every: usize,
) -> Result<Lats, ServeError> {
    let mut client = Client::connect(addr)?;
    let inputs = Matrix::randn(requests, INPUT_DIM, 1.0, &mut seeded(7700 + client_id));
    let mut lats = Lats::default();
    let mut last_embedding: Option<Vec<f32>> = None;
    for i in 0..requests {
        // Re-send an earlier row every eighth request so the embedding
        // cache sees hits under load too.
        let row = if i % 8 == 7 { i / 2 } else { i };
        let t0 = Instant::now();
        let emb = client.embed(0, inputs.row(row))?;
        lats.embed.push(t0.elapsed().as_nanos() as f64 / 1e3);
        if knn_every > 0 && i % knn_every == knn_every - 1 {
            let t0 = Instant::now();
            let _ = client.knn(&emb, 5, WireMetric::Cosine)?;
            lats.knn.push(t0.elapsed().as_nanos() as f64 / 1e3);
        }
        last_embedding = Some(emb);
    }
    std::hint::black_box(&last_embedding);
    Ok(lats)
}

fn run_load(
    addr: std::net::SocketAddr,
    clients: usize,
    requests: usize,
    knn_every: usize,
) -> (Lats, f64) {
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                client_loop(addr, c as u64, requests, knn_every).expect("client failed")
            })
        })
        .collect();
    let mut all = Lats::default();
    for w in workers {
        let lats = w.join().expect("client panicked");
        all.embed.extend(lats.embed);
        all.knn.extend(lats.knn);
    }
    let wall = t0.elapsed().as_secs_f64();
    (all, wall)
}

/// One full measured phase: serve `engine`, warm up untimed (so pool
/// spin-up and first-forward tape growth don't pollute the
/// percentiles), run the timed load, drain. Returns sorted embed/kNN
/// latencies, throughput, and the server-side report.
#[allow(clippy::type_complexity)]
fn measured_phase(
    engine: Engine,
    cfg: ServerConfig,
    clients: usize,
    requests: usize,
    knn_every: usize,
) -> Result<(Vec<f64>, Vec<f64>, f64, ServerReport), edsr_core::Error> {
    let handle =
        serve(engine, ("127.0.0.1", 0), cfg).map_err(|e| edsr_core::Error::Data(e.to_string()))?;
    let addr = handle.addr();
    let _ = run_load(addr, clients, 8.min(requests), knn_every);
    let (lats, wall) = run_load(addr, clients, requests, knn_every);
    let mut shutdown_client =
        Client::connect(addr).map_err(|e| edsr_core::Error::Data(e.to_string()))?;
    shutdown_client
        .shutdown()
        .map_err(|e| edsr_core::Error::Data(e.to_string()))?;
    let report: ServerReport = handle
        .join()
        .map_err(|e| edsr_core::Error::Data(e.to_string()))?;
    let mut embed = lats.embed;
    let mut knn = lats.knn;
    embed.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    knn.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let reqs_per_s = (embed.len() + knn.len()) as f64 / wall;
    Ok((embed, knn, reqs_per_s, report))
}

/// One client of the saturation phase: fire embeds as fast as possible
/// against a deliberately under-provisioned server and tally answered
/// vs shed. Shed requests (`ERR_DEADLINE`/`ERR_OVERLOADED`) keep the
/// connection synced, so the loop keeps offering load.
fn saturation_loop(
    addr: std::net::SocketAddr,
    client_id: u64,
    requests: usize,
) -> Result<(Vec<f64>, u64), ServeError> {
    let mut client = Client::connect(addr)?;
    let inputs = Matrix::randn(requests, INPUT_DIM, 1.0, &mut seeded(8800 + client_id));
    let mut ok = Vec::new();
    let mut rejected = 0u64;
    for i in 0..requests {
        let t0 = Instant::now();
        match client.embed(0, inputs.row(i)) {
            Ok(_) => ok.push(t0.elapsed().as_nanos() as f64 / 1e3),
            Err(ServeError::Rejected { code, .. })
                if code == edsr_serve::protocol::ERR_OVERLOADED
                    || code == edsr_serve::protocol::ERR_DEADLINE =>
            {
                rejected += 1;
            }
            Err(e) => return Err(e),
        }
    }
    Ok((ok, rejected))
}

fn build_snapshot() -> ServeSnapshot {
    let mut rng = seeded(6100);
    let model = ContinualModel::new(&ModelConfig::image(INPUT_DIM), &mut rng);
    let memory_inputs = Matrix::randn(64, INPUT_DIM, 1.0, &mut rng);
    let reprs = model.represent_eval(&memory_inputs, 0);
    let tasks = (0..64u64).map(|i| i / 16).collect();
    ServeSnapshot::capture(&model, reprs, tasks, "serve-load", 4).expect("capture snapshot")
}

fn main() -> Result<(), edsr_core::Error> {
    let env_cfg = match edsr_core::EnvConfig::from_process() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = env_cfg.apply() {
        eprintln!("error: could not install metrics sink: {e}");
        std::process::exit(1);
    }
    let quick = env_cfg.bench_quick;
    let clients = if quick { 2 } else { 6 };
    let requests = if quick { 40 } else { 400 };
    let knn_every = 4;

    let mut cfg = ServerConfig::default();
    if let Some(n) = env_cfg.serve_batch {
        cfg.max_batch = n;
    }
    if let Some(us) = env_cfg.serve_window_us {
        cfg.window = std::time::Duration::from_micros(us);
    }
    cfg.max_connections = clients.max(cfg.max_connections);
    let (max_batch_cfg, window_us) = (cfg.max_batch, cfg.window.as_micros());

    // One trained model behind both backends, and both formats on disk
    // so the size row is measured, not estimated.
    let snapshot = build_snapshot();
    let quant =
        quantize_serve_snapshot(&snapshot).map_err(|e| edsr_core::Error::Data(e.to_string()))?;
    let size_dir = std::env::temp_dir().join(format!("edsr-serve-load-{}", std::process::id()));
    let v1_path = save_serve_snapshot(&CheckpointConfig::new(&size_dir, "bench-v1"), &snapshot)
        .map_err(|e| edsr_core::Error::Data(e.to_string()))?;
    let v2_path = save_quant_serve_snapshot(&CheckpointConfig::new(&size_dir, "bench-v2"), &quant)
        .map_err(|e| edsr_core::Error::Data(e.to_string()))?;
    let v1_bytes = std::fs::metadata(&v1_path)?.len();
    let v2_bytes = std::fs::metadata(&v2_path)?.len();
    let _ = std::fs::remove_dir_all(&size_dir);
    let size_ratio = v1_bytes as f64 / v2_bytes.max(1) as f64;

    let f32_engine = Engine::from_snapshot(snapshot, 256).expect("restore v1 snapshot");
    let i8_engine = Engine::from_quant_snapshot(quant, 256).expect("restore v2 snapshot");
    let (embed, knn, reqs_per_s, report) =
        measured_phase(f32_engine, cfg.clone(), clients, requests, knn_every)?;
    let (embed_i8, knn_i8, reqs_per_s_i8, report_i8) =
        measured_phase(i8_engine, cfg, clients, requests, knn_every)?;
    let total_requests = embed.len() + knn.len();

    // --- Saturation phase: a fresh server with a deliberately tight
    // queue and a deadline, offered ~2x the client concurrency of the
    // measured phase. The point is the overload knee: throughput of
    // *answered* requests, their p99, and the shed rate — the shed
    // requests must come back as bounded structured errors, which is
    // exactly what lets this phase terminate.
    let sat_clients = clients * 2;
    let sat_requests = (requests / 2).max(8);
    let sat_cfg = ServerConfig {
        queue_cap: 2,
        deadline: Some(std::time::Duration::from_millis(50)),
        max_connections: sat_clients,
        ..ServerConfig::default()
    };
    let sat_engine = Engine::from_snapshot(build_snapshot(), 256).expect("restore snapshot");
    let sat_handle = serve(sat_engine, ("127.0.0.1", 0), sat_cfg)
        .map_err(|e| edsr_core::Error::Data(e.to_string()))?;
    let sat_addr = sat_handle.addr();
    let t0 = Instant::now();
    let workers: Vec<_> = (0..sat_clients)
        .map(|c| {
            std::thread::spawn(move || {
                saturation_loop(sat_addr, c as u64, sat_requests).expect("saturation client")
            })
        })
        .collect();
    let mut sat_ok = Vec::new();
    let mut sat_rejected = 0u64;
    for w in workers {
        let (ok, rejected) = w.join().expect("saturation client panicked");
        sat_ok.extend(ok);
        sat_rejected += rejected;
    }
    let sat_wall = t0.elapsed().as_secs_f64();
    let mut sat_shutdown =
        Client::connect(sat_addr).map_err(|e| edsr_core::Error::Data(e.to_string()))?;
    sat_shutdown
        .shutdown()
        .map_err(|e| edsr_core::Error::Data(e.to_string()))?;
    let sat_report: ServerReport = sat_handle
        .join()
        .map_err(|e| edsr_core::Error::Data(e.to_string()))?;
    sat_ok.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let sat_offered = (sat_clients * sat_requests) as u64;
    let sat_rate = sat_ok.len() as f64 / sat_wall;
    let sat_rejected_rate = sat_rejected as f64 / sat_offered as f64;

    let json = format!(
        "{{\n  \"clients\": {clients},\n  \"requests_per_client\": {requests},\n  \
         \"total_requests\": {total_requests},\n  \"reqs_per_s\": {reqs_per_s:.1},\n  \
         \"reqs_per_s_i8\": {reqs_per_s_i8:.1},\n  \
         \"max_batch\": {max_batch_cfg},\n  \"window_us\": {window_us},\n  \
         \"embed\": {{\"count\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},\n  \
         \"knn\": {{\"count\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},\n  \
         \"embed_i8\": {{\"count\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},\n  \
         \"knn_i8\": {{\"count\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},\n  \
         \"snapshot_bytes\": {{\"v1\": {v1_bytes}, \"v2\": {v2_bytes}, \
         \"ratio\": {size_ratio:.2}}},\n  \
         \"server\": {{\"requests\": {}, \"batches\": {}, \"batched_requests\": {}, \
         \"max_batch_seen\": {}, \"cache_hits\": {}, \"cache_misses\": {}}},\n  \
         \"server_i8\": {{\"requests\": {}, \"batches\": {}, \"cache_hits\": {}, \
         \"cache_misses\": {}}},\n  \
         \"saturation\": {{\"clients\": {sat_clients}, \"offered\": {sat_offered}, \
         \"answered\": {}, \"rejected\": {}, \"rejected_rate\": {sat_rejected_rate:.4}, \
         \"reqs_per_s\": {sat_rate:.1}, \"p99_us\": {:.1}, \
         \"server_rejected_deadline\": {}, \"server_rejected_overload\": {}}}\n}}\n",
        embed.len(),
        percentile(&embed, 50.0),
        percentile(&embed, 99.0),
        knn.len(),
        percentile(&knn, 50.0),
        percentile(&knn, 99.0),
        embed_i8.len(),
        percentile(&embed_i8, 50.0),
        percentile(&embed_i8, 99.0),
        knn_i8.len(),
        percentile(&knn_i8, 50.0),
        percentile(&knn_i8, 99.0),
        report.requests,
        report.batches,
        report.batched_requests,
        report.max_batch,
        report.cache_hits,
        report.cache_misses,
        report_i8.requests,
        report_i8.batches,
        report_i8.cache_hits,
        report_i8.cache_misses,
        sat_ok.len(),
        sat_rejected,
        percentile(&sat_ok, 99.0),
        sat_report.rejected_deadline,
        sat_report.rejected_overload,
    );
    let mut file = std::fs::File::create("BENCH_serve.json")?;
    file.write_all(json.as_bytes())?;

    println!(
        "{clients} clients x {requests} reqs (f32):  {reqs_per_s:.0} req/s  \
         embed p50 {:.0}us p99 {:.0}us  knn p50 {:.0}us p99 {:.0}us",
        percentile(&embed, 50.0),
        percentile(&embed, 99.0),
        percentile(&knn, 50.0),
        percentile(&knn, 99.0),
    );
    println!(
        "{clients} clients x {requests} reqs (int8): {reqs_per_s_i8:.0} req/s  \
         embed p50 {:.0}us p99 {:.0}us  knn p50 {:.0}us p99 {:.0}us",
        percentile(&embed_i8, 50.0),
        percentile(&embed_i8, 99.0),
        percentile(&knn_i8, 50.0),
        percentile(&knn_i8, 99.0),
    );
    println!("snapshot bytes: v1 {v1_bytes}  v2 {v2_bytes}  ({size_ratio:.2}x smaller quantized)");
    let (f32_p50, i8_p50) = (percentile(&embed, 50.0), percentile(&embed_i8, 50.0));
    if i8_p50 >= f32_p50 {
        eprintln!(
            "WARNING: int8 embed p50 ({i8_p50:.1}us) is not faster than f32 ({f32_p50:.1}us) — \
             quantized inference regressed"
        );
    }
    println!(
        "server: {} requests, {} batches (max {}), cache {}/{} hit/miss",
        report.requests, report.batches, report.max_batch, report.cache_hits, report.cache_misses
    );
    println!(
        "saturation: {sat_clients} clients, {} answered / {} shed of {} offered \
         ({:.1}% shed), {:.0} req/s, p99 {:.0}us",
        sat_ok.len(),
        sat_rejected,
        sat_offered,
        sat_rejected_rate * 100.0,
        sat_rate,
        percentile(&sat_ok, 99.0),
    );
    println!("wrote BENCH_serve.json");
    edsr_par::emit_pool_metrics();
    edsr_obs::flush();
    Ok(())
}
