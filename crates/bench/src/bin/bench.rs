//! Parallel-runtime micro-benchmark: times the four `edsr-par`-wired
//! kernels (matmul, conv forward, batched kNN, PCA fit) at 1 thread and at
//! the configured maximum, and writes `BENCH_par.json` (repo root) with
//! one record per (op, thread count) plus the max-thread speedup. When the
//! configured maximum *is* 1 thread the max-thread rows are skipped — they
//! would re-measure the identical configuration and differ only by timer
//! noise (historically recorded as phantom speedup regressions).
//!
//! `EDSR_BENCH_QUICK=1` shrinks sizes and iteration counts to a smoke run
//! (used by `ci.sh`). The JSON format is documented in DESIGN.md §9.

use std::io::Write as _;
use std::time::Instant;

use edsr_cl::ModelConfig;
use edsr_core::prelude::seeded;
use edsr_core::EnvConfig;
use edsr_linalg::{KnnQuery, Pca};
use edsr_tensor::Matrix;

/// One timed configuration of one op.
struct Record {
    op: &'static str,
    size: String,
    threads: usize,
    ns_per_iter: f64,
    /// `time(1 thread) / time(this)`; 1.0 for the 1-thread row.
    speedup: f64,
}

/// Median-of-iters wall time for one closure, in ns/iter.
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    // One warmup pass (also forces lazy pool spawn out of the timing).
    f();
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

/// Times `f` at 1 thread and at `max_threads`, appending both records.
/// With `max_threads == 1` only the 1-thread record is taken: a second
/// sample of the same configuration carries no information.
fn bench_op(
    records: &mut Vec<Record>,
    op: &'static str,
    size: String,
    iters: usize,
    max_threads: usize,
    f: &mut dyn FnMut(),
) {
    let t1 = edsr_par::with_threads(1, || time_ns(iters, &mut *f));
    records.push(Record {
        op,
        size: size.clone(),
        threads: 1,
        ns_per_iter: t1,
        speedup: 1.0,
    });
    if max_threads == 1 {
        return;
    }
    let tm = edsr_par::with_threads(max_threads, || time_ns(iters, &mut *f));
    records.push(Record {
        op,
        size,
        threads: max_threads,
        ns_per_iter: tm,
        speedup: if tm > 0.0 { t1 / tm } else { f64::NAN },
    });
}

fn main() -> Result<(), edsr_core::Error> {
    // Unified knobs: `--quick` / EDSR_BENCH_QUICK, `--threads` /
    // EDSR_THREADS, `--obs` / EDSR_OBS (CLI > env > default).
    let env_cfg = EnvConfig::from_process().map_err(edsr_core::Error::Config)?;
    env_cfg.apply()?;
    let quick = env_cfg.bench_quick;
    let max_threads = edsr_par::configured_threads();
    let iters = if quick { 3 } else { 15 };
    let mut records = Vec::new();
    let mut rng = seeded(9000);

    // Matmul: square product, comfortably above the parallel threshold.
    let n = if quick { 48 } else { 192 };
    let a = Matrix::randn(n, n, 1.0, &mut rng);
    let b = Matrix::randn(n, n, 1.0, &mut rng);
    bench_op(
        &mut records,
        "matmul",
        format!("{n}x{n}*{n}x{n}"),
        iters,
        max_threads,
        &mut || {
            std::hint::black_box(a.matmul(&b));
        },
    );

    // Conv encoder forward (im2col maps + gather + matmul through the tape).
    let batch = if quick { 8 } else { 32 };
    let shape = edsr_nn::ConvShape {
        channels: 3,
        height: 8,
        width: 8,
    };
    let model_cfg = ModelConfig::conv_image(shape, 8);
    let model = edsr_cl::ContinualModel::new(&model_cfg, &mut seeded(9001));
    let x = Matrix::randn(batch, shape.dim(), 0.5, &mut rng);
    bench_op(
        &mut records,
        "conv_forward",
        format!("{batch}x{}", shape.dim()),
        iters,
        max_threads,
        &mut || {
            std::hint::black_box(model.represent(&x, 0));
        },
    );

    // Batched kNN over representations.
    let (refs, queries) = if quick { (256, 64) } else { (1024, 256) };
    let reference = Matrix::randn(refs, 32, 1.0, &mut rng);
    let qs = Matrix::randn(queries, 32, 1.0, &mut rng);
    bench_op(
        &mut records,
        "knn_search_batch",
        format!("{queries}q/{refs}ref/d32"),
        iters,
        max_threads,
        &mut || {
            std::hint::black_box(KnnQuery::new(&reference, 10).search_batch(&qs));
        },
    );

    // PCA fit (chunked covariance reduction + Jacobi eigen).
    let rows = if quick { 256 } else { 2048 };
    let pca_x = Matrix::randn(rows, 24, 1.0, &mut rng);
    bench_op(
        &mut records,
        "pca_fit",
        format!("{rows}x24"),
        iters,
        max_threads,
        &mut || {
            std::hint::black_box(Pca::fit(&pca_x, 8));
        },
    );

    // The parallelism that was actually measured, not just requested:
    // worker threads the pool really spawned plus the helping caller,
    // alongside what the hardware offers.
    let pool_workers = edsr_par::pool_workers();
    let hardware_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let single_core = hardware_threads == 1;

    // Zero-worker regression gate: with no pool workers, every max-thread
    // row takes the flat fall-through in `edsr_par::par_for_chunks` and
    // runs the exact code of its 1-thread row, so the speedup must sit
    // near 1.0. A large slowdown means chunking overhead leaked back into
    // the zero-worker path. The 0.66 floor leaves headroom for timer
    // noise while still catching a real (>1.5x) regression.
    if pool_workers == 0 {
        for r in records.iter().filter(|r| r.threads > 1) {
            if r.speedup < 0.66 {
                eprintln!(
                    "REGRESSION: {} at {} threads has speedup {:.3} < 0.66 with a \
                     zero-worker pool; the flat fall-through is not engaging",
                    r.op, r.threads, r.speedup
                );
                std::process::exit(1);
            }
        }
    }

    // Hand-rolled JSON (no serde in the workspace).
    let mut json = format!(
        "{{\n  \"max_threads\": {max_threads},\n  \"pool_workers\": {pool_workers},\n  \
         \"hardware_threads\": {hardware_threads},\n  \
         \"single_core_warning\": {single_core},\n  \"records\": [\n"
    );
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"op\": \"{}\", \"size\": \"{}\", \"threads\": {}, \
             \"ns_per_iter\": {:.0}, \"speedup\": {:.3}}}{}\n",
            r.op,
            r.size,
            r.threads,
            r.ns_per_iter,
            r.speedup,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let mut file = std::fs::File::create("BENCH_par.json")?;
    file.write_all(json.as_bytes())?;

    println!(
        "{:<18} {:>22} {:>8} {:>14} {:>8}",
        "op", "size", "threads", "ns/iter", "speedup"
    );
    for r in &records {
        println!(
            "{:<18} {:>22} {:>8} {:>14.0} {:>8.3}",
            r.op, r.size, r.threads, r.ns_per_iter, r.speedup
        );
    }
    println!(
        "\npool: {pool_workers} worker thread(s) + caller \
         (requested max_threads={max_threads}, hardware_threads={hardware_threads})"
    );
    if single_core {
        println!(
            "WARNING: single-core host — max-thread rows measure pool dispatch \
             overhead on one core; speedups ≤ 1.0 are expected and say nothing \
             about multi-core scaling."
        );
    }
    println!("wrote BENCH_par.json ({} records)", records.len());
    edsr_par::emit_pool_metrics();
    edsr_obs::flush();
    Ok(())
}
