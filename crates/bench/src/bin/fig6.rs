//! **Fig. 6** — sensitivity to the number of neighbours used for the
//! replay-noise magnitude `r(x)` in `L_rpl` (the method's only
//! hyper-parameter). `k = 0` is exactly `L_dis`.
//!
//! Paper shapes: Acc rises then falls as k grows (nearby neighbours add
//! useful knowledge; remote ones mislead); a suitable-k run also shows a
//! smaller std than `L_dis`. CaSSLe's flat line is printed for reference.

use edsr_bench::{run_method_over_seeds, seeds_for, Report, IMAGE_SEEDS};
use edsr_cl::{Cassle, Method, TrainConfig};
use edsr_core::{Edsr, EdsrConfig};
use edsr_data::{cifar100_sim, cifar10_sim, tiny_imagenet_sim};

fn main() {
    let mut report = Report::new("fig6");
    let seeds = seeds_for(&IMAGE_SEEDS);
    let cfg = TrainConfig::image();

    report.line("Fig. 6 — effect of the noise-neighbour count k in L_rpl (Acc)");
    for preset in [cifar10_sim(), cifar100_sim(), tiny_imagenet_sim()] {
        let budget = preset.per_task_budget();
        report.line(format!("\n== {} ==", preset.name));

        let sweep = run_method_over_seeds(&preset, &cfg, &seeds, || {
            Box::new(Cassle::new()) as Box<dyn Method>
        });
        sweep.report_failures(&mut report, "CaSSLe");
        let cassle = sweep.aggregate();
        report.line(format!("{:<12} | Acc {}", "CaSSLe", cassle.acc_cell()));

        for k in [0usize, 2, 5, 10, 20, 40, 80] {
            let sweep = run_method_over_seeds(&preset, &cfg, &seeds, || {
                let c = EdsrConfig::paper_default(budget, cfg.replay_batch, k);
                Box::new(Edsr::new(c)) as Box<dyn Method>
            });
            let label = if k == 0 {
                "k=0 (L_dis)".to_string()
            } else {
                format!("k={k}")
            };
            sweep.report_failures(&mut report, &label);
            let agg = sweep.aggregate();
            report.line(format!("{label:<12} | Acc {}", agg.acc_cell()));
        }
    }
    report.finish();
}
