//! **Fig. 8** — memory-budget sweep: Acc for Random vs High-Entropy
//! selection (noise disabled, isolating selection quality) at increasing
//! total memory on CIFAR-100 and Tiny-ImageNet simulations.
//!
//! Paper shapes: more memory helps both; the High-Entropy − Random gap
//! first grows then shrinks with budget (tiny memories can't hold much
//! either way; huge memories make random selection representative too);
//! high-entropy runs have smaller stds.

use edsr_bench::{run_method_over_seeds, seeds_for, Report, IMAGE_SEEDS};
use edsr_cl::{Method, TrainConfig};
use edsr_core::{Edsr, EdsrConfig, ReplayLoss, SelectionStrategy};
use edsr_data::{cifar100_sim, tiny_imagenet_sim};

fn main() {
    let mut report = Report::new("fig8");
    let seeds = seeds_for(&IMAGE_SEEDS);
    let cfg = TrainConfig::image();
    // Paper sweeps 320/640/1280 on 20-task benchmarks (16/32/64 per task);
    // scaled: total 20/40/80/160 (1/2/4/8 per task).
    let budgets = [20usize, 40, 80, 160];

    report.line("Fig. 8 — amount of stored data vs Acc (no replay noise)");
    for base in [cifar100_sim(), tiny_imagenet_sim()] {
        report.line(format!("\n== {} ==", base.name));
        report.line(format!(
            "{:<8} | {:>16} | {:>16} | {:>6}",
            "memory", "Random", "High Entropy", "gap"
        ));
        for &total in &budgets {
            let preset = base.with_memory_total(total);
            let budget = preset.per_task_budget();
            let mut cells = Vec::new();
            for strategy in [SelectionStrategy::Random, SelectionStrategy::HighEntropy] {
                let sweep = run_method_over_seeds(&preset, &cfg, &seeds, || {
                    let mut c = EdsrConfig::paper_default(budget, cfg.replay_batch, 0);
                    c.selection = strategy;
                    c.replay_loss = ReplayLoss::Dis; // noise omitted, per the figure
                    Box::new(Edsr::new(c)) as Box<dyn Method>
                });
                sweep.report_failures(&mut report, &format!("mem {total} {strategy:?}"));
                cells.push(sweep.aggregate());
            }
            report.line(format!(
                "{:<8} | {:>16} | {:>16} | {:>6.2}",
                total,
                cells[0].acc_cell(),
                cells[1].acc_cell(),
                cells[1].acc - cells[0].acc
            ));
        }
    }
    report.finish();
}
