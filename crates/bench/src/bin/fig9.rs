//! **Fig. 9** — efficiency-effectiveness trade-off: training time vs Acc
//! scatter for SI, DER, LUMP, CaSSLe, EDSR on CIFAR-100 and Tiny-ImageNet
//! simulations.
//!
//! Paper shapes: UCL methods (LUMP, CaSSLe, EDSR) spend more time and get
//! more accuracy than the SCL baselines; within UCL, memory users (LUMP,
//! EDSR) are the slowest; EDSR's extra time buys the largest Acc gain.

use edsr_bench::{run_method_over_seeds, seeds_for, Report, IMAGE_SEEDS};
use edsr_cl::{Cassle, Der, Finetune, Lump, Si, TrainConfig};
use edsr_core::Edsr;
use edsr_data::{cifar100_sim, tiny_imagenet_sim};

fn main() {
    let mut report = Report::new("fig9");
    let seeds = seeds_for(&IMAGE_SEEDS);
    let cfg = TrainConfig::image();

    report.line("Fig. 9 — training time (s) vs Acc scatter data");
    for preset in [cifar100_sim(), tiny_imagenet_sim()] {
        let budget = preset.per_task_budget();
        let replay_batch = cfg.replay_batch;
        let noise_k = preset.noise_neighbors;
        report.line(format!("\n== {} ==", preset.name));
        report.line(format!(
            "{:<10} | {:>10} | {:>16}",
            "Method", "time (s)", "Acc"
        ));
        let methods: Vec<edsr_bench::MethodFactory> = vec![
            ("Finetune", Box::new(|| Box::new(Finetune::new()))),
            ("SI", Box::new(|| Box::new(Si::new(0.1)))),
            (
                "DER",
                Box::new(move || Box::new(Der::new(budget, replay_batch, 0.5))),
            ),
            ("LUMP", Box::new(move || Box::new(Lump::new(budget)))),
            ("CaSSLe", Box::new(|| Box::new(Cassle::new()))),
            (
                "EDSR",
                Box::new(move || Box::new(Edsr::paper_default(budget, replay_batch, noise_k))),
            ),
        ];
        for (name, make) in &methods {
            let sweep = run_method_over_seeds(&preset, &cfg, &seeds, || make());
            sweep.report_failures(&mut report, name);
            let agg = sweep.aggregate();
            report.line(format!(
                "{:<10} | {:>10.1} | {:>16}",
                name,
                agg.seconds,
                agg.acc_cell()
            ));
        }
    }
    report.finish();
}
