//! **Fig. 10** — efficiency-effectiveness within EDSR: sweep of the
//! replayed-data batch size (memory budget fixed at the benchmark's
//! Fig.-8-style enlarged value). Reports time and Acc per size.
//!
//! Paper shapes: time grows monotonically with replay size; Acc rises
//! then falls (too much replay crowds out new-data learning); a middle
//! size is the sweet spot.

use edsr_bench::{run_method_over_seeds, seeds_for, Report, IMAGE_SEEDS};
use edsr_cl::{Method, TrainConfig};
use edsr_core::Edsr;
use edsr_data::cifar100_sim;

fn main() {
    let mut report = Report::new("fig10");
    let seeds = seeds_for(&IMAGE_SEEDS);
    // Larger memory so replay size is the binding factor (paper: 640).
    let preset = cifar100_sim().with_memory_total(160);
    let budget = preset.per_task_budget();

    report.line("Fig. 10 — number of replayed data per batch vs time and Acc");
    report.line(format!(
        "benchmark {}, memory {}",
        preset.name, preset.memory_total
    ));
    report.line(format!(
        "{:<8} | {:>10} | {:>16} | {:>16}",
        "replay", "time (s)", "Acc", "Fgt"
    ));
    // Paper sweeps 32..512 with batch 256; scaled to our batch 64.
    for replay in [4usize, 8, 16, 32, 64] {
        let mut cfg = TrainConfig::image();
        cfg.replay_batch = replay;
        let sweep = run_method_over_seeds(&preset, &cfg, &seeds, || {
            Box::new(Edsr::paper_default(budget, replay, preset.noise_neighbors)) as Box<dyn Method>
        });
        sweep.report_failures(&mut report, &format!("replay {replay}"));
        let agg = sweep.aggregate();
        report.line(format!(
            "{:<8} | {:>10.1} | {:>16} | {:>16}",
            replay,
            agg.seconds,
            agg.acc_cell(),
            agg.fgt_cell()
        ));
    }
    report.finish();
}
