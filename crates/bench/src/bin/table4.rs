//! **Table IV** — replay-loss ablation with high-entropy memory:
//! No-replay (CaSSLe) vs replaying the stored data through `L_css`,
//! `L_dis`, or `L_rpl`.
//!
//! Paper shapes: `L_css` replay *hurts* (over-fitting on few unlabeled
//! samples — worse than no replay); `L_dis` and `L_rpl` both help; the
//! noise advantage of `L_rpl` grows with benchmark difficulty.

use edsr_bench::{run_method_over_seeds, seeds_for, Report, IMAGE_SEEDS};
use edsr_cl::{Method, TrainConfig};
use edsr_core::{Edsr, EdsrConfig, ReplayLoss};
use edsr_data::{cifar100_sim, cifar10_sim, tiny_imagenet_sim, Preset};

/// Paper Acc values per (dataset row, replay column).
const PAPER: [[f32; 4]; 3] = [
    [92.28, 91.38, 93.17, 93.14], // CIFAR-10
    [83.67, 73.63, 85.23, 85.42], // CIFAR-100
    [78.76, 62.15, 80.27, 81.19], // Tiny-ImageNet
];

fn main() {
    let mut report = Report::new("table4");
    let seeds = seeds_for(&IMAGE_SEEDS);
    let cfg = TrainConfig::image();
    let presets: Vec<Preset> = vec![cifar10_sim(), cifar100_sim(), tiny_imagenet_sim()];
    let losses = [
        ReplayLoss::None,
        ReplayLoss::Css,
        ReplayLoss::Dis,
        ReplayLoss::Rpl,
    ];

    report.line("Table IV — replaying methods (high-entropy memory), average accuracy Acc");
    report.line(format!(
        "{:<18} | {:>16} {:>16} {:>16} {:>16}",
        "Dataset", "No Replay", "L_css", "L_dis", "L_rpl"
    ));

    for (row, preset) in presets.iter().enumerate() {
        let budget = preset.per_task_budget();
        let mut cells = Vec::new();
        for (col, &loss) in losses.iter().enumerate() {
            let sweep = run_method_over_seeds(preset, &cfg, &seeds, || {
                let mut c =
                    EdsrConfig::paper_default(budget, cfg.replay_batch, preset.noise_neighbors);
                c.replay_loss = loss;
                Box::new(Edsr::new(c)) as Box<dyn Method>
            });
            sweep.report_failures(&mut report, &format!("{} {}", preset.name, loss.name()));
            let agg = sweep.aggregate();
            cells.push(format!("{} ({:.2})", agg.acc_cell(), PAPER[row][col]));
        }
        report.line(format!(
            "{:<18} | {:>16} | {:>16} | {:>16} | {:>16}",
            preset.name, cells[0], cells[1], cells[2], cells[3]
        ));
    }
    report.line("\n(paper values in parentheses)");
    report.finish();
}
