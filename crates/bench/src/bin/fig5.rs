//! **Fig. 5** — plasticity: new-task accuracy `A_{i,i}` at each increment
//! for Finetune, LUMP, CaSSLe, EDSR on CIFAR-100 and Tiny-ImageNet
//! simulations.
//!
//! Paper shapes: curves fluctuate with task difficulty; EDSR/CaSSLe's new
//! accuracies are *not* the highest (stability is bought with plasticity);
//! replay methods (LUMP, EDSR) have smaller variance than memory-free
//! ones.

use edsr_bench::{run_method_over_seeds, seeds_for, Report, IMAGE_SEEDS};
use edsr_cl::{mean_std, Cassle, Finetune, Lump, TrainConfig};
use edsr_core::Edsr;
use edsr_data::{cifar100_sim, tiny_imagenet_sim};

fn main() {
    let mut report = Report::new("fig5");
    let seeds = seeds_for(&IMAGE_SEEDS);
    let cfg = TrainConfig::image();

    report.line("Fig. 5 — new data set accuracy A_{i,i} per increment (mean ± std over seeds)");
    for preset in [cifar100_sim(), tiny_imagenet_sim()] {
        let budget = preset.per_task_budget();
        let replay_batch = cfg.replay_batch;
        let noise_k = preset.noise_neighbors;
        report.line(format!("\n== {} ==", preset.name));
        let methods: Vec<edsr_bench::MethodFactory> = vec![
            ("Finetune", Box::new(|| Box::new(Finetune::new()))),
            ("LUMP", Box::new(move || Box::new(Lump::new(budget)))),
            ("CaSSLe", Box::new(|| Box::new(Cassle::new()))),
            (
                "EDSR",
                Box::new(move || Box::new(Edsr::paper_default(budget, replay_batch, noise_k))),
            ),
        ];
        for (name, make) in &methods {
            let sweep = run_method_over_seeds(&preset, &cfg, &seeds, || make());
            sweep.report_failures(&mut report, name);
            let runs = &sweep.runs;
            let Some(first) = runs.first() else {
                report.line(format!("{name:<9}: all seeds failed"));
                continue;
            };
            let num_tasks = first.matrix.num_increments();
            let series: Vec<String> = (0..num_tasks)
                .map(|i| {
                    let vals: Vec<f32> = runs
                        .iter()
                        .map(|r| r.matrix.new_task_accuracies()[i] * 100.0)
                        .collect();
                    let (m, s) = mean_std(&vals);
                    format!("{m:5.1}±{s:4.1}")
                })
                .collect();
            report.line(format!("{name:<9}: {}", series.join(" ")));
            // Mean std across increments — the paper's variance argument.
            let stds: Vec<f32> = (0..num_tasks)
                .map(|i| {
                    let vals: Vec<f32> = runs
                        .iter()
                        .map(|r| r.matrix.new_task_accuracies()[i] * 100.0)
                        .collect();
                    mean_std(&vals).1
                })
                .collect();
            let (ms, _) = mean_std(&stds);
            report.line(format!(
                "{:<9}  mean new-task std over increments: {ms:.2}",
                ""
            ));
        }
    }
    report.finish();
}
