//! Distributed-training throughput: the same run executed by 1 PS + N
//! in-process workers for several N, with wall clock, tasks/sec and wire
//! traffic per configuration landing in `BENCH_dist.json` (repo root).
//!
//! The lockstep protocol trains each step on exactly one worker, so this
//! measures protocol + codec overhead (and the eval fan-out win), not a
//! gradient-parallel speedup. Every configuration's final parameters are
//! asserted byte-identical to the 1-worker run — a benchmark that also
//! re-proves the determinism contract (DESIGN.md §14).
//! `EDSR_BENCH_QUICK=1` shrinks epochs and the worker-count sweep.

use std::io::Write as _;
use std::time::Instant;

use edsr_dist::{run_local, DistSpec, PsConfig, WorkerOptions};

fn main() -> Result<(), edsr_core::Error> {
    let env_cfg = match edsr_core::EnvConfig::from_process() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = env_cfg.apply() {
        eprintln!("error: could not install metrics sink: {e}");
        std::process::exit(1);
    }
    let quick = env_cfg.bench_quick;
    let epochs = if quick { 1 } else { 3 };
    let worker_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };

    let mut train = edsr_cl::TrainConfig::image();
    train.epochs_per_task = epochs;
    let spec = DistSpec::new("test", "edsr", 11, &train, None);

    let mut baseline_params: Option<Vec<u8>> = None;
    let mut baseline_wall = 0.0f64;
    let mut rows = Vec::new();
    for &n in worker_counts {
        let t0 = Instant::now();
        let (report, _) = run_local(&spec, n, PsConfig::default(), |_| WorkerOptions::default())
            .map_err(|e| edsr_core::Error::Dist(e.to_string()))?;
        let wall = t0.elapsed().as_secs_f64();
        match &baseline_params {
            None => {
                baseline_params = Some(report.params_payload.clone());
                baseline_wall = wall;
            }
            Some(p) => assert_eq!(
                p, &report.params_payload,
                "bit-identity broke at {n} workers"
            ),
        }
        let tasks = report.matrix.num_increments();
        let tasks_per_s = tasks as f64 / wall;
        let steps_per_s = report.stats.steps as f64 / wall;
        let speedup = baseline_wall / wall;
        println!(
            "{n} workers: {wall:.2}s  {tasks_per_s:.2} tasks/s  {steps_per_s:.1} steps/s  \
             {:.1}/{:.1} KiB pulled/pushed  ({speedup:.2}x vs 1 worker)",
            report.stats.pull_bytes as f64 / 1024.0,
            report.stats.push_bytes as f64 / 1024.0,
        );
        rows.push(format!(
            "    {{\"workers\": {n}, \"wall_s\": {wall:.4}, \"tasks\": {tasks}, \
             \"tasks_per_s\": {tasks_per_s:.4}, \"steps\": {}, \"steps_per_s\": {steps_per_s:.1}, \
             \"speedup_vs_1\": {speedup:.4}, \"pull_bytes\": {}, \"push_bytes\": {}, \
             \"reissues\": {}, \"eval_cells\": {}}}",
            report.stats.steps,
            report.stats.pull_bytes,
            report.stats.push_bytes,
            report.stats.reissues,
            report.stats.eval_cells,
        ));
    }

    let json = format!(
        "{{\n  \"preset\": \"test\",\n  \"method\": \"edsr\",\n  \"epochs\": {epochs},\n  \
         \"bit_identical\": true,\n  \"runs\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let mut file = std::fs::File::create("BENCH_dist.json")?;
    file.write_all(json.as_bytes())?;
    println!("wrote BENCH_dist.json");
    edsr_par::emit_pool_metrics();
    edsr_obs::flush();
    Ok(())
}
