//! **Table III** — main comparison on the four image benchmarks:
//! Acc↑ / Fgt↓ for Multitask, Finetune, SI, DER, LUMP, CaSSLe, EDSR.
//!
//! Paper shapes to reproduce: EDSR best Acc and lowest Fgt on every
//! benchmark; CaSSLe second; memory-free/UCL methods (CaSSLe, EDSR, LUMP)
//! forget less than the adapted SCL methods (SI, DER); Multitask is the
//! upper bound.

use edsr_bench::{run_method_over_seeds, run_multitask_over_seeds, seeds_for, Report, IMAGE_SEEDS};
use edsr_cl::{Cassle, Der, Finetune, Lump, Si, TrainConfig};
use edsr_core::Edsr;
use edsr_data::all_image_presets;

/// Paper reference values (Acc, Fgt) per benchmark, Table III order.
const PAPER: &[(&str, [(f32, f32); 4])] = &[
    (
        "Multitask",
        [
            (95.76, f32::NAN),
            (86.31, f32::NAN),
            (85.09, f32::NAN),
            (75.37, f32::NAN),
        ],
    ),
    (
        "Finetune",
        [(89.02, 5.79), (75.88, 5.23), (71.03, 10.01), (68.46, 7.10)],
    ),
    (
        "SI",
        [(91.06, 3.79), (78.93, 8.37), (71.37, 9.99), (68.81, 6.57)],
    ),
    (
        "DER",
        [(90.17, 5.15), (76.70, 9.21), (72.78, 8.58), (68.96, 6.79)],
    ),
    (
        "LUMP",
        [(91.05, 2.11), (83.41, 4.12), (77.58, 4.24), (66.54, 6.11)],
    ),
    (
        "CaSSLe",
        [(92.28, 0.62), (83.67, 1.33), (78.76, 2.48), (70.78, 0.55)],
    ),
    (
        "EDSR",
        [(93.14, 0.12), (85.42, 0.57), (81.19, 1.77), (71.58, 0.24)],
    ),
];

fn main() {
    let mut report = Report::new("table3");
    let seeds = seeds_for(&IMAGE_SEEDS);
    let cfg = TrainConfig::image();

    report.line("Table III — model comparison on four benchmark image simulations");
    report.line(format!(
        "{} seeds per cell; paper values in parentheses\n",
        seeds.len()
    ));

    for (bench_idx, preset) in all_image_presets().into_iter().enumerate() {
        let budget = preset.per_task_budget();
        report.line(format!(
            "== {} ({} tasks x {} classes, memory {}) ==",
            preset.name,
            preset.num_tasks(),
            preset.classes_per_task,
            preset.memory_total
        ));
        report.line(format!(
            "{:<10} | {:>14} {:>9} | {:>14} {:>9}",
            "Model", "Acc", "(paper)", "Fgt", "(paper)"
        ));

        // Multitask upper bound.
        let (mt_acc, mt_std, _, mt_failures) = run_multitask_over_seeds(&preset, &cfg, &seeds);
        for f in &mt_failures {
            report.line(format!("  !! Multitask seed {}: {}", f.seed, f.error));
        }
        let paper_mt = PAPER[0].1[bench_idx].0;
        report.line(format!(
            "{:<10} | {:>6.2} ± {:4.2} {:>9} | {:>14} {:>9}",
            "Multitask",
            mt_acc,
            mt_std,
            format!("({paper_mt:.2})"),
            "-",
            "-"
        ));

        let replay_batch = cfg.replay_batch;
        let noise_k = preset.noise_neighbors;
        let methods: Vec<edsr_bench::MethodFactory> = vec![
            ("Finetune", Box::new(|| Box::new(Finetune::new()))),
            ("SI", Box::new(|| Box::new(Si::new(0.1)))),
            (
                "DER",
                Box::new(move || Box::new(Der::new(budget, replay_batch, 0.5))),
            ),
            ("LUMP", Box::new(move || Box::new(Lump::new(budget)))),
            ("CaSSLe", Box::new(|| Box::new(Cassle::new()))),
            (
                "EDSR",
                Box::new(move || Box::new(Edsr::paper_default(budget, replay_batch, noise_k))),
            ),
        ];

        for (row, (name, make)) in methods.iter().enumerate() {
            let sweep = run_method_over_seeds(&preset, &cfg, &seeds, || make());
            sweep.report_failures(&mut report, name);
            let agg = sweep.aggregate();
            let (paper_acc, paper_fgt) = PAPER[row + 1].1[bench_idx];
            report.line(format!(
                "{:<10} | {} {:>9} | {} {:>9}",
                name,
                agg.acc_cell(),
                format!("({paper_acc:.2})"),
                agg.fgt_cell(),
                format!("({paper_fgt:.2})")
            ));
        }
        report.line("");
    }
    report.finish();
}
