//! GEMM kernel micro-benchmark: naive reference vs the tiled kernel layer
//! for all three products (`a·b`, `aᵀ·b`, `a·bᵀ`), each at 1 thread and at
//! the configured maximum, with one tiled row per supported SIMD ISA level
//! (`scalar`, `avx2`, `avx512`) plus the `auto`-dispatched kernel (which
//! honours `EDSR_ISA`). Writes `BENCH_kernels.json` (repo root).
//!
//! Both implementations run through `edsr_par::par_for_rows` at the
//! max-thread rows, so the comparison isolates the kernel (packing +
//! register tiling) rather than the dispatch. `EDSR_BENCH_QUICK=1` shrinks
//! the size and iteration count to a smoke run.
//!
//! Dispatch gate: when the active ISA is not scalar, the `auto` tiled row
//! must not be slower than the `scalar` tiled row by more than 5% at one
//! thread — confirmed by fresh head-to-head re-measurement so shared-host
//! transients can't trip it — else the process exits non-zero (`ci.sh`
//! runs this as a check).

use std::io::Write as _;
use std::time::Instant;

use edsr_core::prelude::seeded;
use edsr_tensor::kernel;
use edsr_tensor::simd;
use edsr_tensor::Matrix;

/// One timed configuration of one (product, implementation, ISA) triple.
struct Record {
    product: &'static str,
    /// `"naive"` or `"tiled"`.
    kernel: &'static str,
    /// Fixed ISA level of the tiled micro-kernel, or `"auto"` for the
    /// runtime-dispatched one; `"-"` on naive rows (always scalar code).
    isa: &'static str,
    size: String,
    threads: usize,
    ns_per_iter: f64,
    /// Fastest sample — what the kernel costs without scheduler noise
    /// (noise on a shared host only ever adds time). The dispatch gate
    /// compares these instead of the medians.
    ns_min: f64,
    /// `time(naive) / time(tiled)` at the same thread count; 1.0 on the
    /// naive rows.
    speedup_vs_naive: f64,
}

/// Wall times of one closure over `iters` runs (one untimed warmup pass).
struct Timing {
    median: f64,
    min: f64,
}

fn time_ns(iters: usize, mut f: impl FnMut()) -> Timing {
    f();
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Timing {
        median: samples[samples.len() / 2],
        min: samples[0],
    }
}

fn main() -> Result<(), edsr_core::Error> {
    let env_cfg = match edsr_core::EnvConfig::from_process() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = env_cfg.apply() {
        eprintln!("error: could not install metrics sink: {e}");
        std::process::exit(1);
    }
    let quick = env_cfg.bench_quick;
    let max_threads = edsr_par::configured_threads();
    // Quick mode still takes enough samples for a stable minimum — the
    // dispatch gate compares mins, and 3 samples right after a cold start
    // can all land high.
    let iters = if quick { 9 } else { 15 };
    let n = if quick { 48 } else { 192 };
    let size = format!("{n}x{n}*{n}x{n}");

    let mut rng = seeded(9100);
    let a = Matrix::randn(n, n, 1.0, &mut rng);
    let b = Matrix::randn(n, n, 1.0, &mut rng);
    let mut out = vec![0.0f32; n * n];

    // One tiled row per supported fixed ISA level, plus the dispatched
    // kernel ("auto" — what `matmul_tiled` actually runs, honouring
    // `EDSR_ISA`). Unsupported levels are skipped loudly.
    let mut isa_rows: Vec<(&'static str, &'static simd::Kernel)> = Vec::new();
    for isa in simd::Isa::ALL {
        match simd::Kernel::for_isa(isa) {
            Some(kern) => isa_rows.push((isa.name(), kern)),
            None => eprintln!("skipping {}: not supported on this host", isa.name()),
        }
    }
    isa_rows.push(("auto", simd::active()));

    // (product, naive-through-par closure, tiled closure). The naive rows
    // split over the pool with the retained chunk kernels so both columns
    // see the same dispatch.
    type Naive<'m> = Box<dyn FnMut(&mut [f32]) + 'm>;
    type Tiled<'m> = Box<dyn FnMut(&'static simd::Kernel, &mut [f32]) + 'm>;
    let mut products: Vec<(&'static str, Naive, Tiled)> = vec![
        (
            "matmul",
            Box::new(|out: &mut [f32]| {
                edsr_par::par_for_rows(out, n, |rows, chunk| {
                    kernel::naive::matmul_chunk(a.data(), b.data(), n, n, rows, chunk);
                });
            }),
            Box::new(|kern, out: &mut [f32]| {
                kernel::matmul_tiled_with(kern, a.data(), b.data(), out, n, n, n)
            }),
        ),
        (
            "transpose_matmul",
            Box::new(|out: &mut [f32]| {
                edsr_par::par_for_rows(out, n, |rows, chunk| {
                    kernel::naive::transpose_matmul_chunk(a.data(), b.data(), n, n, n, rows, chunk);
                });
            }),
            Box::new(|kern, out: &mut [f32]| {
                kernel::transpose_matmul_tiled_with(kern, a.data(), b.data(), out, n, n, n)
            }),
        ),
        (
            "matmul_transpose",
            Box::new(|out: &mut [f32]| {
                edsr_par::par_for_rows(out, n, |rows, chunk| {
                    kernel::naive::matmul_transpose_chunk(a.data(), b.data(), n, n, rows, chunk);
                });
            }),
            Box::new(|kern, out: &mut [f32]| {
                kernel::matmul_transpose_tiled_with(kern, a.data(), b.data(), out, n, n, n)
            }),
        ),
    ];

    let mut records = Vec::new();
    for (product, naive, tiled) in products.iter_mut() {
        let product = *product;
        for threads in [1usize, max_threads] {
            let t_naive = edsr_par::with_threads(threads, || {
                time_ns(iters, || {
                    out.fill(0.0);
                    naive(&mut out);
                    std::hint::black_box(&out);
                })
            });
            records.push(Record {
                product,
                kernel: "naive",
                isa: "-",
                size: size.clone(),
                threads,
                ns_per_iter: t_naive.median,
                ns_min: t_naive.min,
                speedup_vs_naive: 1.0,
            });
            // The tiled rows are sampled interleaved — one sample per ISA
            // per round — rather than one row at a time. A whole row's
            // window at the quick size is tens of microseconds, so a
            // single scheduler burst could otherwise poison every sample
            // (min included) of whichever row happened to be running
            // while leaving its comparison row clean, tripping the
            // dispatch gate below on pure noise.
            let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(iters); isa_rows.len()];
            edsr_par::with_threads(threads, || {
                for &(_, kern) in &isa_rows {
                    out.fill(0.0);
                    tiled(kern, &mut out); // untimed warmup
                }
                for _ in 0..iters {
                    for (s, &(_, kern)) in samples.iter_mut().zip(&isa_rows) {
                        let t0 = Instant::now();
                        out.fill(0.0);
                        tiled(kern, &mut out);
                        std::hint::black_box(&out);
                        s.push(t0.elapsed().as_nanos() as f64);
                    }
                }
            });
            for (&(isa, _), mut s) in isa_rows.iter().zip(samples) {
                s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let t_tiled = Timing {
                    median: s[s.len() / 2],
                    min: s[0],
                };
                records.push(Record {
                    product,
                    kernel: "tiled",
                    isa,
                    size: size.clone(),
                    threads,
                    ns_per_iter: t_tiled.median,
                    ns_min: t_tiled.min,
                    speedup_vs_naive: if t_tiled.median > 0.0 {
                        t_naive.median / t_tiled.median
                    } else {
                        f64::NAN
                    },
                });
            }
            if threads == max_threads && max_threads == 1 {
                break; // 1-thread host: the max-thread rows would repeat.
            }
        }
    }

    // Dispatch gate: with a non-scalar ISA active, the dispatched kernel
    // must beat (or at worst match, within 5%) the scalar tiled kernel at
    // one thread — otherwise dispatch is mis-selecting or its overhead
    // leaked into the hot loop. Fastest samples are compared, not
    // medians: scheduler noise on a shared host only ever *adds* time,
    // so the minimum is the stable estimate of what each kernel costs.
    // Skipped when the active ISA *is* scalar (forced via
    // `EDSR_ISA=scalar` or a host without AVX2): the two rows then time
    // identical code and differ only by noise.
    if simd::active_isa() != simd::Isa::Scalar {
        let ns_of = |product: &str, isa: &str| {
            records
                .iter()
                .find(|r| {
                    r.product == product && r.kernel == "tiled" && r.isa == isa && r.threads == 1
                })
                .map(|r| r.ns_min)
        };
        let scalar_kern = simd::Kernel::for_isa(simd::Isa::Scalar).expect("scalar always runs");
        let auto_kern = simd::active();
        for product in ["matmul", "transpose_matmul", "matmul_transpose"] {
            let (Some(scalar_ns), Some(auto_ns)) =
                (ns_of(product, "scalar"), ns_of(product, "auto"))
            else {
                continue;
            };
            if auto_ns <= scalar_ns * 1.05 {
                continue;
            }
            // Apparent regression. Shared-host transients — scheduler
            // bursts, AVX frequency licensing downclocking wide kernels
            // below scalar for a stretch — can slow one row across its
            // whole (microseconds-long) sampling window, so confirm with
            // fresh head-to-head re-measurements before failing: a real
            // dispatch regression (mis-selection, overhead in the hot
            // loop) reproduces on every attempt.
            let tiled = &mut products
                .iter_mut()
                .find(|p| p.0 == product)
                .expect("gated products are benchmarked above")
                .2;
            let mut confirmed = true;
            for _ in 0..3 {
                let (mut s_min, mut a_min) = (f64::INFINITY, f64::INFINITY);
                edsr_par::with_threads(1, || {
                    for _ in 0..17 {
                        for (kern, slot) in [(scalar_kern, &mut s_min), (auto_kern, &mut a_min)] {
                            let t0 = Instant::now();
                            out.fill(0.0);
                            tiled(kern, &mut out);
                            std::hint::black_box(&out);
                            *slot = slot.min(t0.elapsed().as_nanos() as f64);
                        }
                    }
                });
                if a_min <= s_min * 1.05 {
                    confirmed = false;
                    break;
                }
            }
            if confirmed {
                eprintln!(
                    "REGRESSION: {product} auto-dispatched tiled kernel ({auto_ns:.0} ns min) \
                     is >5% slower than the scalar tiled kernel ({scalar_ns:.0} ns min) with \
                     ISA {} active, and re-measurement confirms it",
                    simd::active_isa().name()
                );
                std::process::exit(1);
            }
            eprintln!(
                "note: {product} auto row sampled slow ({auto_ns:.0} vs {scalar_ns:.0} ns min) \
                 but re-measured clean; keeping the recorded samples"
            );
        }
    }

    let pool_workers = edsr_par::pool_workers();
    let hardware_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let isa_detected = simd::detect().name();
    let isa_active = simd::active_isa().name();
    let mut json = format!(
        "{{\n  \"max_threads\": {max_threads},\n  \"pool_workers\": {pool_workers},\n  \
         \"hardware_threads\": {hardware_threads},\n  \
         \"isa_detected\": \"{isa_detected}\",\n  \"isa_active\": \"{isa_active}\",\n  \
         \"records\": [\n"
    );
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"product\": \"{}\", \"kernel\": \"{}\", \"isa\": \"{}\", \"size\": \"{}\", \
             \"threads\": {}, \"ns_per_iter\": {:.0}, \"ns_min\": {:.0}, \
             \"speedup_vs_naive\": {:.3}}}{}\n",
            r.product,
            r.kernel,
            r.isa,
            r.size,
            r.threads,
            r.ns_per_iter,
            r.ns_min,
            r.speedup_vs_naive,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let mut file = std::fs::File::create("BENCH_kernels.json")?;
    file.write_all(json.as_bytes())?;

    println!(
        "{:<18} {:>7} {:>7} {:>18} {:>8} {:>14} {:>12} {:>10}",
        "product", "kernel", "isa", "size", "threads", "ns/iter", "ns min", "vs naive"
    );
    for r in &records {
        println!(
            "{:<18} {:>7} {:>7} {:>18} {:>8} {:>14.0} {:>12.0} {:>10.3}",
            r.product,
            r.kernel,
            r.isa,
            r.size,
            r.threads,
            r.ns_per_iter,
            r.ns_min,
            r.speedup_vs_naive
        );
    }
    println!("\nisa: detected={isa_detected} active={isa_active}");
    if hardware_threads == 1 {
        println!(
            "\nWARNING: single-core host — max-thread rows measure pool dispatch \
             overhead on one core."
        );
    }
    println!("wrote BENCH_kernels.json ({} records)", records.len());
    edsr_par::emit_pool_metrics();
    edsr_obs::flush();
    Ok(())
}
