//! GEMM kernel micro-benchmark: naive reference vs the tiled kernel layer
//! for all three products (`a·b`, `aᵀ·b`, `a·bᵀ`), each at 1 thread and at
//! the configured maximum. Writes `BENCH_kernels.json` (repo root).
//!
//! Both implementations run through `edsr_par::par_for_rows` at the
//! max-thread rows, so the comparison isolates the kernel (packing +
//! register tiling) rather than the dispatch. `EDSR_BENCH_QUICK=1` shrinks
//! the size and iteration count to a smoke run.

use std::io::Write as _;
use std::time::Instant;

use edsr_core::prelude::seeded;
use edsr_tensor::kernel;
use edsr_tensor::Matrix;

/// One timed configuration of one (product, implementation) pair.
struct Record {
    product: &'static str,
    /// `"naive"` or `"tiled"`.
    kernel: &'static str,
    size: String,
    threads: usize,
    ns_per_iter: f64,
    /// `time(naive) / time(tiled)` at the same thread count; 1.0 on the
    /// naive rows.
    speedup_vs_naive: f64,
}

/// Median-of-iters wall time in ns/iter (one untimed warmup pass).
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

fn main() -> Result<(), edsr_core::Error> {
    let env_cfg = match edsr_core::EnvConfig::from_process() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = env_cfg.apply() {
        eprintln!("error: could not install metrics sink: {e}");
        std::process::exit(1);
    }
    let quick = env_cfg.bench_quick;
    let max_threads = edsr_par::configured_threads();
    let iters = if quick { 3 } else { 15 };
    let n = if quick { 48 } else { 192 };
    let size = format!("{n}x{n}*{n}x{n}");

    let mut rng = seeded(9100);
    let a = Matrix::randn(n, n, 1.0, &mut rng);
    let b = Matrix::randn(n, n, 1.0, &mut rng);
    let mut out = vec![0.0f32; n * n];

    // (product, naive-through-par closure, tiled closure). The naive rows
    // split over the pool with the retained chunk kernels so both columns
    // see the same dispatch.
    type Kern<'m> = Box<dyn FnMut(&mut [f32]) + 'm>;
    let products: Vec<(&'static str, Kern, Kern)> = vec![
        (
            "matmul",
            Box::new(|out: &mut [f32]| {
                edsr_par::par_for_rows(out, n, |rows, chunk| {
                    kernel::naive::matmul_chunk(a.data(), b.data(), n, n, rows, chunk);
                });
            }),
            Box::new(|out: &mut [f32]| kernel::matmul_tiled(a.data(), b.data(), out, n, n, n)),
        ),
        (
            "transpose_matmul",
            Box::new(|out: &mut [f32]| {
                edsr_par::par_for_rows(out, n, |rows, chunk| {
                    kernel::naive::transpose_matmul_chunk(a.data(), b.data(), n, n, n, rows, chunk);
                });
            }),
            Box::new(|out: &mut [f32]| {
                kernel::transpose_matmul_tiled(a.data(), b.data(), out, n, n, n)
            }),
        ),
        (
            "matmul_transpose",
            Box::new(|out: &mut [f32]| {
                edsr_par::par_for_rows(out, n, |rows, chunk| {
                    kernel::naive::matmul_transpose_chunk(a.data(), b.data(), n, n, rows, chunk);
                });
            }),
            Box::new(|out: &mut [f32]| {
                kernel::matmul_transpose_tiled(a.data(), b.data(), out, n, n, n)
            }),
        ),
    ];

    let mut records = Vec::new();
    for (product, mut naive, mut tiled) in products {
        for threads in [1usize, max_threads] {
            let t_naive = edsr_par::with_threads(threads, || {
                time_ns(iters, || {
                    out.fill(0.0);
                    naive(&mut out);
                    std::hint::black_box(&out);
                })
            });
            let t_tiled = edsr_par::with_threads(threads, || {
                time_ns(iters, || {
                    out.fill(0.0);
                    tiled(&mut out);
                    std::hint::black_box(&out);
                })
            });
            records.push(Record {
                product,
                kernel: "naive",
                size: size.clone(),
                threads,
                ns_per_iter: t_naive,
                speedup_vs_naive: 1.0,
            });
            records.push(Record {
                product,
                kernel: "tiled",
                size: size.clone(),
                threads,
                ns_per_iter: t_tiled,
                speedup_vs_naive: if t_tiled > 0.0 {
                    t_naive / t_tiled
                } else {
                    f64::NAN
                },
            });
            if threads == max_threads && max_threads == 1 {
                break; // 1-thread host: the max-thread rows would repeat.
            }
        }
    }

    let pool_workers = edsr_par::pool_workers();
    let hardware_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut json = format!(
        "{{\n  \"max_threads\": {max_threads},\n  \"pool_workers\": {pool_workers},\n  \
         \"hardware_threads\": {hardware_threads},\n  \"records\": [\n"
    );
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"product\": \"{}\", \"kernel\": \"{}\", \"size\": \"{}\", \
             \"threads\": {}, \"ns_per_iter\": {:.0}, \"speedup_vs_naive\": {:.3}}}{}\n",
            r.product,
            r.kernel,
            r.size,
            r.threads,
            r.ns_per_iter,
            r.speedup_vs_naive,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let mut file = std::fs::File::create("BENCH_kernels.json")?;
    file.write_all(json.as_bytes())?;

    println!(
        "{:<18} {:>7} {:>18} {:>8} {:>14} {:>10}",
        "product", "kernel", "size", "threads", "ns/iter", "vs naive"
    );
    for r in &records {
        println!(
            "{:<18} {:>7} {:>18} {:>8} {:>14.0} {:>10.3}",
            r.product, r.kernel, r.size, r.threads, r.ns_per_iter, r.speedup_vs_naive
        );
    }
    if hardware_threads == 1 {
        println!(
            "\nWARNING: single-core host — max-thread rows measure pool dispatch \
             overhead on one core."
        );
    }
    println!("wrote BENCH_kernels.json ({} records)", records.len());
    edsr_par::emit_pool_metrics();
    edsr_obs::flush();
    Ok(())
}
