//! Scenario-zoo sweep: every generator in `edsr_data::scenarios`
//! (class-incremental, blurry/task-free, domain-incremental, long-tail)
//! × {Finetune, LUMP, EDSR, CompEmb, R2R}, with final accuracy and
//! forgetting per cell landing in `BENCH_scenarios.json` (repo root).
//!
//! Each scenario is additionally round-tripped through the `EDSRDS01`
//! shard format and re-trained from a [`ShardStream`]: the streamed
//! accuracy matrix must equal the in-RAM one bit-for-bit and the loader
//! must never hold more than two shards resident — the JSON records both
//! so the CI gate can assert them without re-deriving.
//!
//! `EDSR_BENCH_QUICK=1` shrinks epochs and the seed list; the table keeps
//! its full scenario × method shape either way.

use std::io::Write as _;

use edsr_cl::{mean_std, ContinualModel, Finetune, Lump, Method, ModelConfig, RunBuilder};
use edsr_core::prelude::seeded;
use edsr_core::{CompEmb, Edsr, R2r};
use edsr_data::{build_scenario, ShardStream, SCENARIO_NAMES};

fn main() -> Result<(), edsr_core::Error> {
    let env_cfg = match edsr_core::EnvConfig::from_process() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = env_cfg.apply() {
        eprintln!("error: could not install metrics sink: {e}");
        std::process::exit(1);
    }
    let quick = env_cfg.bench_quick;
    let seeds: &[u64] = if quick { &[11] } else { &[11, 12] };

    let mut cfg = edsr_cl::TrainConfig::image();
    cfg.epochs_per_task = if quick { 1 } else { 8 };

    let methods: &[&str] = &["Finetune", "LUMP", "EDSR", "CompEmb", "R2R"];
    let mut scenario_rows = Vec::new();

    for &scenario in SCENARIO_NAMES {
        let probe = build_scenario(scenario, seeds[0]).expect("known scenario name");
        let tasks = probe.seq.len();
        let budget = probe.preset.per_task_budget();
        let noise_k = probe.preset.noise_neighbors;
        println!("== {scenario} ({tasks} increments) ==");

        let mut method_rows = Vec::new();
        for &mname in methods {
            let mut accs = Vec::new();
            let mut fgts = Vec::new();
            for &seed in seeds {
                let data = build_scenario(scenario, seed).expect("known scenario name");
                let mut method: Box<dyn Method> = match mname {
                    "Finetune" => Box::new(Finetune::new()),
                    "LUMP" => Box::new(Lump::new(budget)),
                    "EDSR" => Box::new(Edsr::paper_default(budget, cfg.replay_batch, noise_k)),
                    "CompEmb" => Box::new(CompEmb::new(budget, cfg.replay_batch)),
                    "R2R" => Box::new(R2r::new(budget, cfg.replay_batch, 4)),
                    other => unreachable!("unknown method {other}"),
                };
                let mut model = ContinualModel::new(
                    &ModelConfig::image(data.preset.grid.dim()),
                    &mut seeded(seed + 1000),
                );
                let mut run_rng = seeded(seed + 2000);
                let r = RunBuilder::new(&cfg).run(
                    method.as_mut(),
                    &mut model,
                    &mut &data.seq,
                    &data.augmenters,
                    &mut run_rng,
                )?;
                accs.push(r.matrix.final_acc() * 100.0);
                fgts.push(r.matrix.final_fgt() * 100.0);
            }
            let (am, asd) = mean_std(&accs);
            let (fm, fsd) = mean_std(&fgts);
            println!("{mname:<10} | Acc {am:5.2} ± {asd:.2} | Fgt {fm:5.2} ± {fsd:.2}");
            method_rows.push(format!(
                "        {{\"method\": \"{mname}\", \"acc_mean\": {am:.4}, \"acc_std\": {asd:.4}, \
                 \"fgt_mean\": {fm:.4}, \"fgt_std\": {fsd:.4}}}"
            ));
        }

        // Shard round-trip: the streamed run must reproduce the in-RAM
        // accuracy matrix exactly with at most two shards resident.
        let (stream_identical, resident_peak) = stream_check(scenario, seeds[0], &cfg)?;
        assert!(
            stream_identical,
            "{scenario}: streamed accuracy matrix diverged from in-RAM"
        );
        assert!(
            resident_peak <= 2,
            "{scenario}: loader held {resident_peak} shards resident"
        );
        println!("stream     | identical to in-RAM, resident peak {resident_peak}");

        scenario_rows.push(format!(
            "    {{\"scenario\": \"{scenario}\", \"tasks\": {tasks}, \
             \"stream_identical\": {stream_identical}, \"resident_peak\": {resident_peak}, \
             \"methods\": [\n{}\n    ]}}",
            method_rows.join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"quick\": {quick},\n  \"epochs_per_task\": {},\n  \"seeds\": {seeds:?},\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        cfg.epochs_per_task,
        scenario_rows.join(",\n")
    );
    let mut file = std::fs::File::create("BENCH_scenarios.json")?;
    file.write_all(json.as_bytes())?;
    println!("wrote BENCH_scenarios.json");
    edsr_par::emit_pool_metrics();
    edsr_obs::flush();
    Ok(())
}

/// Trains Finetune on `scenario` twice — from the in-RAM sequence and
/// from an `EDSRDS01` shard directory — and compares the accuracy
/// matrices cell-for-cell. Returns `(identical, resident_peak)`.
fn stream_check(
    scenario: &str,
    seed: u64,
    cfg: &edsr_cl::TrainConfig,
) -> Result<(bool, usize), edsr_core::Error> {
    let data = build_scenario(scenario, seed).expect("known scenario name");
    let dir = std::env::temp_dir().join(format!(
        "edsr-scenarios-{}-{scenario}-{seed}",
        std::process::id()
    ));

    let mut ram_model = ContinualModel::new(
        &ModelConfig::image(data.preset.grid.dim()),
        &mut seeded(seed + 1000),
    );
    let mut method = Finetune::new();
    let ram = RunBuilder::new(cfg).run(
        &mut method,
        &mut ram_model,
        &mut &data.seq,
        &data.augmenters,
        &mut seeded(seed + 2000),
    )?;

    edsr_data::write_shard_dir(&dir, &data.seq)?;
    let mut stream = ShardStream::open(&dir)?;
    let mut stream_model = ContinualModel::new(
        &ModelConfig::image(data.preset.grid.dim()),
        &mut seeded(seed + 1000),
    );
    let mut method = Finetune::new();
    let streamed = RunBuilder::new(cfg).run(
        &mut method,
        &mut stream_model,
        &mut stream,
        &data.augmenters,
        &mut seeded(seed + 2000),
    )?;
    let peak = stream.resident_peak();
    let _ = std::fs::remove_dir_all(&dir);

    Ok((ram.matrix.rows() == streamed.matrix.rows(), peak))
}
