//! Parameter and run-state persistence: versioned, integrity-checked
//! binary envelopes.
//!
//! Two weight formats exist:
//!
//! **v1** (`EDSRW001`, legacy, still readable):
//! ```text
//! magic  "EDSRW001"          8 bytes
//! count  u32                 number of parameters
//! per parameter:
//!   name_len u32, name bytes (UTF-8)
//!   rows u32, cols u32
//!   rows*cols f32 values
//! ```
//!
//! **v2** (`EDSRW002`, written by [`save_params`]) wraps the same payload
//! in the generic integrity [envelope](write_envelope):
//! ```text
//! magic    8 bytes            format/kind tag
//! payload  N bytes
//! trailer  u64 payload_len, u32 crc32(payload)
//! ```
//!
//! The trailer makes truncated or bit-flipped files detectable *before*
//! any payload parsing: a checkpoint interrupted mid-write fails the
//! length check ([`CheckpointError::Truncated`]) and corruption fails the
//! CRC ([`CheckpointError::Corrupt`]). Writers go through a temp file +
//! rename so a crash never leaves a half-written file under the final
//! name. The envelope is reused by `edsr-cl`'s run-state checkpoints
//! (its own magic), so every persisted artifact in the workspace shares
//! one validation path.
//!
//! Loading validates names and shapes against the receiving set, so a
//! checkpoint can only be restored into a structurally identical model.

use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::path::Path;

use edsr_tensor::Matrix;

use crate::optim::OptimState;
use crate::params::ParamSet;

const MAGIC_V1: &[u8; 8] = b"EDSRW001";
const MAGIC_V2: &[u8; 8] = b"EDSRW002";

/// Errors produced by checkpoint IO.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying file error.
    Io(io::Error),
    /// The file is not an EDSR checkpoint (bad magic).
    BadMagic,
    /// The file ends before its declared payload (interrupted write).
    Truncated {
        /// Bytes the trailer (or parser) expected.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// The payload's CRC32 does not match its trailer (bit corruption).
    Corrupt {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// Parameter count, name, or shape disagrees with the receiving set.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::BadMagic => write!(f, "not an EDSR checkpoint (bad magic)"),
            CheckpointError::Truncated { expected, got } => {
                write!(
                    f,
                    "checkpoint truncated: expected {expected} payload bytes, found {got}"
                )
            }
            CheckpointError::Corrupt { stored, computed } => {
                write!(
                    f,
                    "checkpoint corrupt: crc32 {computed:08x} != stored {stored:08x}"
                )
            }
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC32 + envelope: shared with the wire layer (edsr-wire). The helpers
// below keep this module's historical public API — `CheckpointError` out,
// same semantics — while the byte-level mechanics live in one place for
// checkpoints, serve snapshots, and the dist protocol alike.
// ---------------------------------------------------------------------------

/// CRC32 (IEEE) of `bytes` — the integrity check in the v2 trailer.
/// Re-exported from `edsr-wire`, the shared implementation.
pub use edsr_wire::crc32;

fn envelope_err(e: edsr_wire::EnvelopeError) -> CheckpointError {
    match e {
        edsr_wire::EnvelopeError::Io(e) => CheckpointError::Io(e),
        edsr_wire::EnvelopeError::BadMagic => CheckpointError::BadMagic,
        edsr_wire::EnvelopeError::Truncated { expected, got } => {
            CheckpointError::Truncated { expected, got }
        }
        edsr_wire::EnvelopeError::Corrupt { stored, computed } => {
            CheckpointError::Corrupt { stored, computed }
        }
    }
}

/// Writes `payload` under `magic` to `path` with the v2 integrity trailer.
///
/// Durability contract (implemented by [`edsr_wire::write_envelope`]):
/// the write goes to `<path>.tmp`, is `fsync`ed to stable storage, and
/// only then renamed into place, so neither a process crash nor a power
/// loss can leave a half-written (or fully-written but unflushed) file
/// under the final name. The parent directory is fsynced best-effort so
/// the rename itself is durable too.
pub fn write_envelope(
    path: impl AsRef<Path>,
    magic: &[u8; 8],
    payload: &[u8],
) -> Result<(), CheckpointError> {
    edsr_wire::write_envelope(path, magic, payload).map_err(envelope_err)
}

/// Reads and validates an envelope written by [`write_envelope`].
///
/// Checks, in order: the magic tag, the declared payload length against
/// the bytes actually present ([`CheckpointError::Truncated`] on any
/// shortfall), and the payload CRC32 ([`CheckpointError::Corrupt`]).
/// Only then is the validated payload returned for parsing.
pub fn read_envelope(path: impl AsRef<Path>, magic: &[u8; 8]) -> Result<Vec<u8>, CheckpointError> {
    edsr_wire::read_envelope(path, magic).map_err(envelope_err)
}

/// As [`read_envelope`], over an in-memory image of the file.
pub fn read_envelope_bytes(bytes: &[u8], magic: &[u8; 8]) -> Result<Vec<u8>, CheckpointError> {
    edsr_wire::read_envelope_bytes(bytes, magic).map_err(envelope_err)
}

// ---------------------------------------------------------------------------
// Little-endian byte codec helpers, shared with edsr-cl's run states.
// ---------------------------------------------------------------------------

/// Appends a `u32` (little-endian).
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` (little-endian).
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f32` (little-endian bits).
pub fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` (little-endian bits).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed byte slice.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

/// Appends a length-prefixed `i8` slice (raw two's-complement bytes).
pub fn put_i8s(buf: &mut Vec<u8>, v: &[i8]) {
    put_u64(buf, v.len() as u64);
    buf.extend(v.iter().map(|&x| x as u8));
}

/// Appends a shape-prefixed matrix.
pub fn put_matrix(buf: &mut Vec<u8>, m: &Matrix) {
    put_u32(buf, m.rows() as u32);
    put_u32(buf, m.cols() as u32);
    for &v in m.data() {
        put_f32(buf, v);
    }
}

/// Sequential reader over a validated payload; every accessor checks
/// bounds and reports structured [`CheckpointError::Truncated`] instead of
/// panicking.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated {
            expected: u64::MAX,
            got: self.bytes.len() as u64,
        })?;
        if end > self.bytes.len() {
            return Err(CheckpointError::Truncated {
                expected: end as u64,
                got: self.bytes.len() as u64,
            });
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f32`.
    pub fn f32(&mut self) -> Result<f32, CheckpointError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads an `f64`.
    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
        let len = self.u64()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed `i8` slice written by [`put_i8s`].
    pub fn i8s(&mut self) -> Result<Vec<i8>, CheckpointError> {
        Ok(self.bytes()?.iter().map(|&b| b as i8).collect())
    }

    /// Reads a shape-prefixed matrix.
    pub fn matrix(&mut self) -> Result<Matrix, CheckpointError> {
        let rows = self.u32()? as usize;
        let cols = self.u32()? as usize;
        let n = rows.checked_mul(cols).ok_or_else(|| {
            CheckpointError::Mismatch(format!("matrix shape overflow: {rows}x{cols}"))
        })?;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.f32()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }
}

// ---------------------------------------------------------------------------
// ParamSet payload codec (shared by v1 and v2 weight files).
// ---------------------------------------------------------------------------

/// Serializes every parameter of `params` into the weight payload layout.
pub fn params_to_bytes(params: &ParamSet) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + params.num_scalars() * 4);
    put_u32(&mut buf, params.len() as u32);
    for id in params.ids() {
        let name = params.name(id).as_bytes();
        put_u32(&mut buf, name.len() as u32);
        buf.extend_from_slice(name);
        put_matrix(&mut buf, params.value(id));
    }
    buf
}

/// Restores a weight payload into `params`, validating names and shapes.
pub fn params_from_bytes(params: &mut ParamSet, payload: &[u8]) -> Result<(), CheckpointError> {
    let mut r = ByteReader::new(payload);
    let count = r.u32()? as usize;
    if count != params.len() {
        return Err(CheckpointError::Mismatch(format!(
            "file has {count} parameters, model has {}",
            params.len()
        )));
    }
    for id in params.ids().collect::<Vec<_>>() {
        let name_len = r.u32()? as usize;
        let name = String::from_utf8_lossy(r.take(name_len)?).into_owned();
        if name != params.name(id) {
            return Err(CheckpointError::Mismatch(format!(
                "parameter name {name:?} does not match model's {:?}",
                params.name(id)
            )));
        }
        let value = r.matrix()?;
        let expected = params.value(id).shape();
        if value.shape() != expected {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {name:?} has shape {}x{}, model expects {}x{}",
                value.rows(),
                value.cols(),
                expected.0,
                expected.1
            )));
        }
        *params.value_mut(id) = value;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Optimizer-state codec (run-state checkpoints persist optimizer moments).
// ---------------------------------------------------------------------------

/// Serializes an exported optimizer state.
pub fn optim_state_to_bytes(state: &OptimState) -> Vec<u8> {
    let mut buf = Vec::new();
    match state {
        OptimState::Sgd { lr, velocity } => {
            put_u32(&mut buf, 1);
            put_f32(&mut buf, *lr);
            put_u32(&mut buf, velocity.len() as u32);
            for m in velocity {
                put_matrix(&mut buf, m);
            }
        }
        OptimState::Adam { lr, t, m, v } => {
            put_u32(&mut buf, 2);
            put_f32(&mut buf, *lr);
            put_u64(&mut buf, *t);
            put_u32(&mut buf, m.len() as u32);
            for mm in m {
                put_matrix(&mut buf, mm);
            }
            for vv in v {
                put_matrix(&mut buf, vv);
            }
        }
    }
    buf
}

/// Deserializes an optimizer state written by [`optim_state_to_bytes`].
pub fn optim_state_from_bytes(payload: &[u8]) -> Result<OptimState, CheckpointError> {
    let mut r = ByteReader::new(payload);
    match r.u32()? {
        1 => {
            let lr = r.f32()?;
            let n = r.u32()? as usize;
            let velocity = (0..n).map(|_| r.matrix()).collect::<Result<Vec<_>, _>>()?;
            Ok(OptimState::Sgd { lr, velocity })
        }
        2 => {
            let lr = r.f32()?;
            let t = r.u64()?;
            let n = r.u32()? as usize;
            let m = (0..n).map(|_| r.matrix()).collect::<Result<Vec<_>, _>>()?;
            let v = (0..n).map(|_| r.matrix()).collect::<Result<Vec<_>, _>>()?;
            Ok(OptimState::Adam { lr, t, m, v })
        }
        k => Err(CheckpointError::Mismatch(format!(
            "unknown optimizer-state kind {k}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Public weight-file API.
// ---------------------------------------------------------------------------

/// Writes all parameter values of `params` to `path` (v2 format:
/// `EDSRW002` envelope with a length/CRC32 trailer, atomic rename).
pub fn save_params(params: &ParamSet, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    write_envelope(path, MAGIC_V2, &params_to_bytes(params))
}

fn read_u32_stream(r: &mut impl Read) -> Result<u32, CheckpointError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Loads a checkpoint written by [`save_params`] into `params`.
///
/// Accepts both the current `EDSRW002` envelope (length/CRC validated
/// before parsing) and the legacy `EDSRW001` stream format. Every
/// parameter's name and shape must match the receiving set (same
/// architecture, same registration order).
pub fn load_params(params: &mut ParamSet, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic == MAGIC_V2 {
        drop(r);
        let payload = read_envelope(path, MAGIC_V2)?;
        return params_from_bytes(params, &payload);
    }
    if &magic != MAGIC_V1 {
        return Err(CheckpointError::BadMagic);
    }
    load_params_v1(params, &mut r)
}

/// Legacy `EDSRW001` streaming loader (no integrity trailer).
fn load_params_v1(params: &mut ParamSet, r: &mut impl Read) -> Result<(), CheckpointError> {
    let count = read_u32_stream(r)? as usize;
    if count != params.len() {
        return Err(CheckpointError::Mismatch(format!(
            "file has {count} parameters, model has {}",
            params.len()
        )));
    }
    for id in params.ids().collect::<Vec<_>>() {
        let name_len = read_u32_stream(r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8_lossy(&name).into_owned();
        if name != params.name(id) {
            return Err(CheckpointError::Mismatch(format!(
                "parameter name {name:?} does not match model's {:?}",
                params.name(id)
            )));
        }
        let rows = read_u32_stream(r)? as usize;
        let cols = read_u32_stream(r)? as usize;
        let expected = params.value(id).shape();
        if (rows, cols) != expected {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {name:?} has shape {rows}x{cols}, model expects {}x{}",
                expected.0, expected.1
            )));
        }
        let mut data = vec![0.0f32; rows * cols];
        for v in &mut data {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        *params.value_mut(id) = Matrix::from_vec(rows, cols, data);
    }
    Ok(())
}

/// Writes a legacy v1 (`EDSRW001`) weight file. Kept for compatibility
/// tests and for producing artifacts older tooling can read; new code
/// should use [`save_params`].
pub fn save_params_v1(params: &ParamSet, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let tmp = path.as_ref().with_extension("tmp");
    {
        let mut w = io::BufWriter::new(File::create(&tmp)?);
        w.write_all(MAGIC_V1)?;
        w.write_all(&params_to_bytes(params))?;
        w.flush()?;
        // Same durability contract as `write_envelope`: data reaches
        // stable storage before the rename publishes the final name.
        w.get_ref().sync_all()?;
    }
    std::fs::rename(&tmp, path.as_ref())?;
    edsr_wire::sync_parent_dir(path.as_ref());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Init, Mlp};
    use edsr_tensor::rng::seeded;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("edsr-ckpt-{name}-{}", std::process::id()));
        p
    }

    fn fresh_model(seed: u64) -> (Mlp, ParamSet) {
        let mut rng = seeded(seed);
        let mut ps = ParamSet::new();
        let mlp = Mlp::new(
            &mut ps,
            "m",
            &[4, 8, 3],
            Activation::Relu,
            Init::He,
            &mut rng,
        );
        (mlp, ps)
    }

    #[test]
    fn roundtrip_preserves_weights_exactly() {
        let (_mlp, ps) = fresh_model(500);
        let path = tmp("roundtrip");
        save_params(&ps, &path).expect("save");
        let (_mlp2, mut ps2) = fresh_model(501); // different init
        let before = ps2.value(ps2.ids().next().unwrap()).clone();
        load_params(&mut ps2, &path).expect("load");
        for (a, b) in ps.ids().zip(ps2.ids()) {
            assert_eq!(ps.value(a), ps2.value(b), "weights differ after roundtrip");
        }
        assert_ne!(&before, ps2.value(ps2.ids().next().unwrap()));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn legacy_v1_files_still_load() {
        let (_mlp, ps) = fresh_model(520);
        let path = tmp("v1-compat");
        save_params_v1(&ps, &path).expect("save v1");
        let (_mlp2, mut ps2) = fresh_model(521);
        load_params(&mut ps2, &path).expect("load v1");
        for (a, b) in ps.ids().zip(ps2.ids()) {
            assert_eq!(
                ps.value(a),
                ps2.value(b),
                "v1 weights differ after roundtrip"
            );
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn truncated_v2_file_is_rejected() {
        let (_mlp, ps) = fresh_model(522);
        let path = tmp("truncated");
        save_params(&ps, &path).expect("save");
        let full = std::fs::read(&path).expect("read back");
        // Cut the file at several points; every cut must be detected.
        for keep in [9, full.len() / 2, full.len() - 5, full.len() - 1] {
            std::fs::write(&path, &full[..keep]).expect("write truncated");
            let (_m, mut ps2) = fresh_model(523);
            let err = load_params(&mut ps2, &path).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. } | CheckpointError::Corrupt { .. }
                ),
                "cut at {keep}: unexpected {err}"
            );
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bitflip_fails_crc() {
        let (_mlp, ps) = fresh_model(524);
        let path = tmp("bitflip");
        save_params(&ps, &path).expect("save");
        let mut bytes = std::fs::read(&path).expect("read back");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write corrupted");
        let (_m, mut ps2) = fresh_model(525);
        let err = load_params(&mut ps2, &path).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_wrong_architecture() {
        let (_mlp, ps) = fresh_model(502);
        let path = tmp("arch");
        save_params(&ps, &path).expect("save");
        let mut rng = seeded(503);
        let mut other = ParamSet::new();
        let _ = Mlp::new(
            &mut other,
            "m",
            &[4, 16, 3],
            Activation::Relu,
            Init::He,
            &mut rng,
        );
        let err = load_params(&mut other, &path).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_wrong_parameter_count() {
        let (_mlp, ps) = fresh_model(504);
        let path = tmp("count");
        save_params(&ps, &path).expect("save");
        let mut rng = seeded(505);
        let mut other = ParamSet::new();
        let _ = Mlp::new(
            &mut other,
            "m",
            &[4, 8, 8, 3],
            Activation::Relu,
            Init::He,
            &mut rng,
        );
        assert!(load_params(&mut other, &path).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_garbage_file() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        let (_mlp, mut ps) = fresh_model(506);
        let err = load_params(&mut ps, &path).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let (_mlp, mut ps) = fresh_model(507);
        let err = load_params(&mut ps, "/nonexistent/edsr.ckpt").unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn envelope_roundtrip_and_validation() {
        let path = tmp("envelope");
        let payload = vec![7u8; 129];
        write_envelope(&path, b"EDSRTEST", &payload).expect("write");
        assert_eq!(read_envelope(&path, b"EDSRTEST").expect("read"), payload);
        // Wrong magic.
        assert!(matches!(
            read_envelope(&path, b"EDSRXXXX").unwrap_err(),
            CheckpointError::BadMagic
        ));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn byte_reader_reports_truncation() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 5);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u32().expect("fits"), 5);
        assert!(matches!(
            r.u64().unwrap_err(),
            CheckpointError::Truncated { .. }
        ));
    }

    #[test]
    fn optimizer_state_roundtrip() {
        let mut rng = seeded(530);
        let m1 = Matrix::randn(2, 3, 1.0, &mut rng);
        let m2 = Matrix::randn(3, 1, 1.0, &mut rng);
        let state = OptimState::Adam {
            lr: 0.25,
            t: 17,
            m: vec![m1.clone(), m2.clone()],
            v: vec![m2.clone(), m1.clone()],
        };
        let bytes = optim_state_to_bytes(&state);
        match optim_state_from_bytes(&bytes).expect("decode") {
            OptimState::Adam { lr, t, m, v } => {
                assert_eq!(lr, 0.25);
                assert_eq!(t, 17);
                assert_eq!(m, vec![m1.clone(), m2.clone()]);
                assert_eq!(v, vec![m2, m1]);
            }
            other => panic!("wrong kind decoded: {other:?}"),
        }
        let sgd = OptimState::Sgd {
            lr: 0.5,
            velocity: vec![Matrix::zeros(1, 4)],
        };
        let decoded = optim_state_from_bytes(&optim_state_to_bytes(&sgd)).expect("decode sgd");
        assert!(matches!(decoded, OptimState::Sgd { lr, ref velocity }
            if lr == 0.5 && velocity.len() == 1));
    }
}
