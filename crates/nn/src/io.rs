//! Parameter persistence: save/load a [`ParamSet`]'s weights to a simple
//! self-describing binary file.
//!
//! Format (all little-endian):
//! ```text
//! magic  "EDSRW001"          8 bytes
//! count  u32                 number of parameters
//! per parameter:
//!   name_len u32, name bytes (UTF-8)
//!   rows u32, cols u32
//!   rows*cols f32 values
//! ```
//!
//! Loading validates names and shapes against the receiving set, so a
//! checkpoint can only be restored into a structurally identical model.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use edsr_tensor::Matrix;

use crate::params::ParamSet;

const MAGIC: &[u8; 8] = b"EDSRW001";

/// Errors produced by checkpoint IO.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying file error.
    Io(io::Error),
    /// The file is not an EDSR checkpoint (bad magic).
    BadMagic,
    /// Parameter count, name, or shape disagrees with the receiving set.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::BadMagic => write!(f, "not an EDSR checkpoint (bad magic)"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes all parameter values of `params` to `path`.
pub fn save_params(params: &ParamSet, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for id in params.ids() {
        let name = params.name(id).as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        let value = params.value(id);
        w.write_all(&(value.rows() as u32).to_le_bytes())?;
        w.write_all(&(value.cols() as u32).to_le_bytes())?;
        for &v in value.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

fn read_u32(r: &mut impl Read) -> Result<u32, CheckpointError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Loads a checkpoint written by [`save_params`] into `params`.
///
/// Every parameter's name and shape must match the receiving set (same
/// architecture, same registration order).
pub fn load_params(params: &mut ParamSet, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let count = read_u32(&mut r)? as usize;
    if count != params.len() {
        return Err(CheckpointError::Mismatch(format!(
            "file has {count} parameters, model has {}",
            params.len()
        )));
    }
    for id in params.ids().collect::<Vec<_>>() {
        let name_len = read_u32(&mut r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8_lossy(&name).into_owned();
        if name != params.name(id) {
            return Err(CheckpointError::Mismatch(format!(
                "parameter name {name:?} does not match model's {:?}",
                params.name(id)
            )));
        }
        let rows = read_u32(&mut r)? as usize;
        let cols = read_u32(&mut r)? as usize;
        let expected = params.value(id).shape();
        if (rows, cols) != expected {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {name:?} has shape {rows}x{cols}, model expects {}x{}",
                expected.0, expected.1
            )));
        }
        let mut data = vec![0.0f32; rows * cols];
        for v in &mut data {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        *params.value_mut(id) = Matrix::from_vec(rows, cols, data);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Init, Mlp};
    use edsr_tensor::rng::seeded;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("edsr-ckpt-{name}-{}", std::process::id()));
        p
    }

    fn fresh_model(seed: u64) -> (Mlp, ParamSet) {
        let mut rng = seeded(seed);
        let mut ps = ParamSet::new();
        let mlp = Mlp::new(&mut ps, "m", &[4, 8, 3], Activation::Relu, Init::He, &mut rng);
        (mlp, ps)
    }

    #[test]
    fn roundtrip_preserves_weights_exactly() {
        let (_mlp, ps) = fresh_model(500);
        let path = tmp("roundtrip");
        save_params(&ps, &path).expect("save");
        let (_mlp2, mut ps2) = fresh_model(501); // different init
        let before = ps2.value(ps2.ids().next().unwrap()).clone();
        load_params(&mut ps2, &path).expect("load");
        for (a, b) in ps.ids().zip(ps2.ids()) {
            assert_eq!(ps.value(a), ps2.value(b), "weights differ after roundtrip");
        }
        assert_ne!(&before, ps2.value(ps2.ids().next().unwrap()));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_wrong_architecture() {
        let (_mlp, ps) = fresh_model(502);
        let path = tmp("arch");
        save_params(&ps, &path).expect("save");
        let mut rng = seeded(503);
        let mut other = ParamSet::new();
        let _ = Mlp::new(&mut other, "m", &[4, 16, 3], Activation::Relu, Init::He, &mut rng);
        let err = load_params(&mut other, &path).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_wrong_parameter_count() {
        let (_mlp, ps) = fresh_model(504);
        let path = tmp("count");
        save_params(&ps, &path).expect("save");
        let mut rng = seeded(505);
        let mut other = ParamSet::new();
        let _ = Mlp::new(&mut other, "m", &[4, 8, 8, 3], Activation::Relu, Init::He, &mut rng);
        assert!(load_params(&mut other, &path).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_garbage_file() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        let (_mlp, mut ps) = fresh_model(506);
        let err = load_params(&mut ps, &path).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let (_mlp, mut ps) = fresh_model(507);
        let err = load_params(&mut ps, "/nonexistent/edsr.ckpt").unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }
}
