//! 2-D convolution, lowered to matmul via the tape's gather op (im2col).
//!
//! The paper's image encoder is a CNN (ResNet-18). The default simulation
//! backbone is an MLP (DESIGN.md §2), but this layer provides a true
//! convolutional stem for the `Conv` encoder variant and the architecture
//! ablation: valid-padding stride-1 convolution over channel-major
//! flattened `C x H x W` samples.
//!
//! Lowering: `im2col` (a pure index gather, so its backward is a scatter
//! handled by the tape) turns the input batch into a
//! `(B·OH·OW) x (C·kh·kw)` patch matrix; a matmul with the
//! `(C·kh·kw) x K` filter bank plus bias gives the responses; a second
//! gather permutes the layout back to channel-major `B x (K·OH·OW)` rows.

use std::cell::RefCell;
use std::sync::Arc;

use edsr_tensor::rng::gaussian;
use edsr_tensor::{Matrix, Tape, Var};
use rand::rngs::StdRng;

use crate::layers::Init;
use crate::params::{Binder, ParamId, ParamSet};

/// Minimum gather-map length before map construction is dispatched to the
/// `edsr-par` pool. Each batch element owns a fixed-size disjoint region of
/// the map, so chunking over batch elements cannot affect the indices
/// produced (DESIGN.md §9). Performance knob only.
const MIN_PAR_MAP_ELEMS: usize = 16 * 1024;

/// Spatial geometry of the convolution input (channel-major flattening,
/// matching `edsr-data`'s `GridSpec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Input channels.
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
}

impl ConvShape {
    /// Flattened input dimensionality.
    pub fn dim(&self) -> usize {
        self.channels * self.height * self.width
    }
}

/// A stride-1, valid-padding 2-D convolution layer.
#[derive(Debug, Clone)]
pub struct Conv2d {
    w: ParamId,
    b: ParamId,
    shape: ConvShape,
    kernel: usize,
    filters: usize,
    /// Gather maps for the last-seen batch size. The maps are pure
    /// functions of `(geometry, batch)`, so caching them makes repeated
    /// same-size forward passes allocation-free (the `Arc`s are shared with
    /// the tape nodes that recorded them).
    maps: RefCell<Option<CachedMaps>>,
}

#[derive(Debug, Clone)]
struct CachedMaps {
    batch: usize,
    im2col: Arc<Vec<usize>>,
    regroup: Arc<Vec<usize>>,
}

impl Conv2d {
    /// Creates the layer (He-initialized filters).
    ///
    /// # Panics
    /// Panics if the kernel does not fit inside the input.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        shape: ConvShape,
        kernel: usize,
        filters: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            kernel >= 1 && kernel <= shape.height && kernel <= shape.width,
            "Conv2d: kernel {kernel} does not fit {}x{}",
            shape.height,
            shape.width
        );
        let fan_in = shape.channels * kernel * kernel;
        let std = Init::He.std(fan_in, filters);
        let mut w = Matrix::zeros(fan_in, filters);
        for v in w.data_mut() {
            *v = gaussian(rng) * std;
        }
        let w = params.register(format!("{name}.w"), w);
        let b = params.register(format!("{name}.b"), Matrix::zeros(1, filters));
        Self {
            w,
            b,
            shape,
            kernel,
            filters,
            maps: RefCell::new(None),
        }
    }

    /// Output spatial height (valid padding, stride 1).
    pub fn out_height(&self) -> usize {
        self.shape.height - self.kernel + 1
    }

    /// Output spatial width.
    pub fn out_width(&self) -> usize {
        self.shape.width - self.kernel + 1
    }

    /// Flattened output dimensionality (`filters · OH · OW`).
    pub fn out_dim(&self) -> usize {
        self.filters * self.out_height() * self.out_width()
    }

    /// Number of filters.
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// Builds the im2col gather map for a batch of `b` rows.
    fn im2col_map(&self, b: usize) -> Vec<usize> {
        let (c, h, w) = (self.shape.channels, self.shape.height, self.shape.width);
        let (oh, ow, k) = (self.out_height(), self.out_width(), self.kernel);
        let sample_stride = c * h * w;
        let per_sample = oh * ow * c * k * k;
        let mut map = vec![0usize; b * per_sample];
        let fill = |range: std::ops::Range<usize>, chunk: &mut [usize]| {
            let mut pos = 0;
            for batch in range {
                for oy in 0..oh {
                    for ox in 0..ow {
                        for ch in 0..c {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let y = oy + ky;
                                    let x = ox + kx;
                                    chunk[pos] = batch * sample_stride + ch * h * w + y * w + x;
                                    pos += 1;
                                }
                            }
                        }
                    }
                }
            }
        };
        if b * per_sample >= MIN_PAR_MAP_ELEMS && b > 1 {
            edsr_par::par_for_rows(&mut map, b, fill);
        } else {
            fill(0..b, &mut map);
        }
        map
    }

    /// Builds the layout-restoring gather map: from `(B·OH·OW) x K`
    /// responses to channel-major `B x (K·OH·OW)` rows.
    fn regroup_map(&self, b: usize) -> Vec<usize> {
        let (oh, ow, k) = (self.out_height(), self.out_width(), self.filters);
        let per_sample = k * oh * ow;
        let mut map = vec![0usize; b * per_sample];
        let fill = |range: std::ops::Range<usize>, chunk: &mut [usize]| {
            let mut pos = 0;
            for batch in range {
                for filter in 0..k {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let response_row = batch * oh * ow + oy * ow + ox;
                            chunk[pos] = response_row * k + filter;
                            pos += 1;
                        }
                    }
                }
            }
        };
        if b * per_sample >= MIN_PAR_MAP_ELEMS && b > 1 {
            edsr_par::par_for_rows(&mut map, b, fill);
        } else {
            fill(0..b, &mut map);
        }
        map
    }

    /// Returns the (cached) gather maps for a batch of `b` rows,
    /// rebuilding them only when the batch size changes.
    fn maps_for(&self, b: usize) -> (Arc<Vec<usize>>, Arc<Vec<usize>>) {
        let mut cache = self.maps.borrow_mut();
        match cache.as_ref() {
            Some(c) if c.batch == b => (Arc::clone(&c.im2col), Arc::clone(&c.regroup)),
            _ => {
                let im2col = Arc::new(self.im2col_map(b));
                let regroup = Arc::new(self.regroup_map(b));
                *cache = Some(CachedMaps {
                    batch: b,
                    im2col: Arc::clone(&im2col),
                    regroup: Arc::clone(&regroup),
                });
                (im2col, regroup)
            }
        }
    }

    /// Records the convolution of a `B x (C·H·W)` batch; returns a
    /// channel-major `B x (K·OH·OW)` node.
    ///
    /// # Panics
    /// Panics if the input width is not `shape.dim()`.
    pub fn forward(&self, tape: &mut Tape, binder: &mut Binder, params: &ParamSet, x: Var) -> Var {
        let (b, d) = tape.value(x).shape();
        assert_eq!(
            d,
            self.shape.dim(),
            "Conv2d: input width {d} != {}",
            self.shape.dim()
        );
        let (oh, ow) = (self.out_height(), self.out_width());
        let patch = self.shape.channels * self.kernel * self.kernel;

        let (im2col, regroup) = self.maps_for(b);
        let cols = tape.gather(x, im2col, b * oh * ow, patch);
        let w = binder.bind(tape, params, self.w);
        let bias = binder.bind(tape, params, self.b);
        let responses = tape.matmul(cols, w);
        let responses = tape.add_row(responses, bias);
        tape.gather(responses, regroup, b, self.out_dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::gradcheck::check_gradients;
    use edsr_tensor::rng::seeded;

    fn layer(seed: u64, shape: ConvShape, kernel: usize, filters: usize) -> (Conv2d, ParamSet) {
        let mut rng = seeded(seed);
        let mut ps = ParamSet::new();
        let conv = Conv2d::new(&mut ps, "c", shape, kernel, filters, &mut rng);
        (conv, ps)
    }

    #[test]
    fn output_shape() {
        let shape = ConvShape {
            channels: 3,
            height: 8,
            width: 8,
        };
        let (conv, ps) = layer(600, shape, 3, 5);
        assert_eq!(conv.out_height(), 6);
        assert_eq!(conv.out_width(), 6);
        assert_eq!(conv.out_dim(), 5 * 36);
        let mut rng = seeded(601);
        let x = Matrix::randn(4, shape.dim(), 1.0, &mut rng);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let vx = tape.leaf(x);
        let y = conv.forward(&mut tape, &mut binder, &ps, vx);
        assert_eq!(tape.value(y).shape(), (4, 180));
    }

    #[test]
    fn identity_kernel_reproduces_input_channel() {
        // 1x1 kernel, single filter, weight selecting channel 0 with gain 1.
        let shape = ConvShape {
            channels: 2,
            height: 3,
            width: 3,
        };
        let (conv, mut ps) = layer(602, shape, 1, 1);
        let (w, b) = (conv.w, conv.b);
        *ps.value_mut(w) = Matrix::from_vec(2, 1, vec![1.0, 0.0]);
        *ps.value_mut(b) = Matrix::zeros(1, 1);
        let x = Matrix::from_vec(1, 18, (0..18).map(|i| i as f32).collect());
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let vx = tape.leaf(x.clone());
        let y = conv.forward(&mut tape, &mut binder, &ps, vx);
        assert_eq!(tape.value(y).data(), &x.data()[..9]);
    }

    #[test]
    fn known_3x3_box_filter() {
        // Single channel 4x4 ramp, 3x3 all-ones kernel: each output is the
        // sum of its 3x3 window.
        let shape = ConvShape {
            channels: 1,
            height: 4,
            width: 4,
        };
        let (conv, mut ps) = layer(603, shape, 3, 1);
        *ps.value_mut(conv.w) = Matrix::filled(9, 1, 1.0);
        *ps.value_mut(conv.b) = Matrix::zeros(1, 1);
        let x = Matrix::from_vec(1, 16, (0..16).map(|i| i as f32).collect());
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let vx = tape.leaf(x);
        let y = conv.forward(&mut tape, &mut binder, &ps, vx);
        // Window sums for top-left 2x2 outputs of a 0..15 ramp.
        let out = tape.value(y);
        assert_eq!(out.shape(), (1, 4));
        assert_eq!(out.data(), &[45.0, 54.0, 81.0, 90.0]);
    }

    #[test]
    fn gradcheck_conv_parameters_and_input() {
        let shape = ConvShape {
            channels: 2,
            height: 3,
            width: 3,
        };
        let mut rng = seeded(604);
        let x = Matrix::randn(2, shape.dim(), 1.0, &mut rng);
        let w0 = Matrix::randn(2 * 4, 3, 0.5, &mut rng); // 2x2 kernel, 3 filters
        let b0 = Matrix::randn(1, 3, 0.1, &mut rng);
        // Hand-roll the conv graph with leaf weights so finite differences
        // reach them.
        let conv_shape = shape;
        check_gradients(&[x.clone(), w0, b0], 1e-2, 3e-2, |t, vars| {
            let mut ps = ParamSet::new();
            let mut rng2 = seeded(605);
            let conv = Conv2d::new(&mut ps, "c", conv_shape, 2, 3, &mut rng2);
            // Overwrite layer weights with the leaf values (structure
            // reuse; gradients flow to the leaves through gather/matmul).
            let b = t.value(vars[0]).rows();
            let cols = t.gather(
                vars[0],
                std::sync::Arc::new(conv.im2col_map(b)),
                b * conv.out_height() * conv.out_width(),
                2 * 4,
            );
            let r = t.matmul(cols, vars[1]);
            let r = t.add_row(r, vars[2]);
            let y = t.gather(
                r,
                std::sync::Arc::new(conv.regroup_map(b)),
                b,
                conv.out_dim(),
            );
            let sq = t.square(y);
            t.mean(sq)
        });
    }

    #[test]
    fn gradients_reach_filters_through_layer_api() {
        let shape = ConvShape {
            channels: 1,
            height: 4,
            width: 4,
        };
        let (conv, mut ps) = layer(606, shape, 3, 2);
        let mut rng = seeded(607);
        let x = Matrix::randn(3, shape.dim(), 1.0, &mut rng);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let vx = tape.leaf(x);
        let y = conv.forward(&mut tape, &mut binder, &ps, vx);
        let sq = tape.square(y);
        let loss = tape.sum(sq);
        let grads = tape.backward(loss);
        ps.zero_grads();
        binder.accumulate_into(&grads, &mut ps);
        assert!(ps.grad(conv.w).frobenius_norm() > 0.0);
        assert!(ps.grad(conv.b).frobenius_norm() > 0.0);
    }

    #[test]
    fn gather_maps_cached_per_batch_size() {
        let shape = ConvShape {
            channels: 2,
            height: 5,
            width: 5,
        };
        let (conv, _ps) = layer(609, shape, 3, 2);
        let (a1, a2) = conv.maps_for(4);
        let (b1, b2) = conv.maps_for(4);
        assert!(
            Arc::ptr_eq(&a1, &b1) && Arc::ptr_eq(&a2, &b2),
            "cache missed"
        );
        let (c1, _) = conv.maps_for(2);
        assert!(
            !Arc::ptr_eq(&a1, &c1),
            "stale map served for new batch size"
        );
        assert_eq!(c1.len(), 2 * conv.out_height() * conv.out_width() * 2 * 9);
    }

    #[test]
    #[should_panic(expected = "kernel")]
    fn oversized_kernel_panics() {
        let shape = ConvShape {
            channels: 1,
            height: 2,
            width: 2,
        };
        let _ = layer(608, shape, 3, 1);
    }
}
