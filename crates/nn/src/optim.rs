//! Optimizers: SGD with momentum (images, per the paper) and Adam
//! (tabular, per the paper), plus a cosine learning-rate schedule.

use edsr_tensor::Matrix;

use crate::params::ParamSet;

/// Exported optimizer moments, persisted inside run-state checkpoints so
/// a resumed sweep continues with identical update dynamics.
#[derive(Debug, Clone)]
pub enum OptimState {
    /// SGD momentum buffers.
    Sgd {
        /// Learning rate at export time (schedules mutate it).
        lr: f32,
        /// Velocity per parameter (empty until the first step).
        velocity: Vec<Matrix>,
    },
    /// Adam first/second moments and step counter.
    Adam {
        /// Learning rate at export time.
        lr: f32,
        /// Bias-correction step counter.
        t: u64,
        /// First moments per parameter.
        m: Vec<Matrix>,
        /// Second moments per parameter.
        v: Vec<Matrix>,
    },
}

/// Gradient-descent optimizer interface over a [`ParamSet`].
///
/// `Send` is a supertrait so a boxed optimizer can live inside state
/// shared across server threads (edsr-dist's coordinator).
pub trait Optimizer: Send {
    /// Applies one update from the accumulated gradients, then leaves the
    /// gradient buffers untouched (call [`ParamSet::zero_grads`] yourself —
    /// the trainer owns the zeroing so losses can be accumulated).
    fn step(&mut self, params: &mut ParamSet);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Overrides the learning rate (used by schedules).
    fn set_lr(&mut self, lr: f32);

    /// Exports the full mutable state (moments + step counters) for
    /// run-state checkpoints.
    fn export_state(&self) -> OptimState;

    /// Restores state exported by [`export_state`](Self::export_state).
    /// Fails when the state kind or buffer count doesn't match.
    fn import_state(&mut self, state: OptimState) -> Result<(), String>;
}

/// Stochastic gradient descent with classical momentum and decoupled L2
/// weight decay.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    fn ensure_state(&mut self, params: &ParamSet) {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .ids()
                .map(|id| {
                    let v = params.value(id);
                    Matrix::zeros(v.rows(), v.cols())
                })
                .collect();
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet) {
        self.ensure_state(params);
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        let velocity = &mut self.velocity;
        params.for_each_mut(|i, value, grad| {
            let vel = &mut velocity[i];
            // v <- mu·v + g + wd·w through the dispatched elementwise
            // kernels (DESIGN.md §15). Each element sees the same
            // mul/add/mul/add rounding chain as the fused scalar loop
            // this replaces, so checkpoints are bit-unchanged.
            edsr_tensor::simd::scale(vel.data_mut(), mu);
            edsr_tensor::simd::add_assign(vel.data_mut(), grad.data());
            edsr_tensor::simd::axpy(vel.data_mut(), value.data(), wd);
            value.add_scaled(vel, -lr);
        });
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn export_state(&self) -> OptimState {
        OptimState::Sgd {
            lr: self.lr,
            velocity: self.velocity.clone(),
        }
    }

    fn import_state(&mut self, state: OptimState) -> Result<(), String> {
        match state {
            OptimState::Sgd { lr, velocity } => {
                self.lr = lr;
                self.velocity = velocity;
                Ok(())
            }
            OptimState::Adam { .. } => Err("cannot import Adam state into an SGD optimizer".into()),
        }
    }
}

/// Adam (Kingma & Ba, 2015) with optional L2 weight decay.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates Adam with the standard β defaults.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn ensure_state(&mut self, params: &ParamSet) {
        if self.m.len() != params.len() {
            let zeros: Vec<Matrix> = params
                .ids()
                .map(|id| {
                    let v = params.value(id);
                    Matrix::zeros(v.rows(), v.cols())
                })
                .collect();
            self.m = zeros.clone();
            self.v = zeros;
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet) {
        self.ensure_state(params);
        self.t += 1;
        let (b1, b2, eps, lr, wd) = (self.beta1, self.beta2, self.eps, self.lr, self.weight_decay);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let (ms, vs) = (&mut self.m, &mut self.v);
        params.for_each_mut(|i, value, grad| {
            let m = &mut ms[i];
            let v = &mut vs[i];
            for (((w, &g0), mi), vi) in value
                .data_mut()
                .iter_mut()
                .zip(grad.data())
                .zip(m.data_mut())
                .zip(v.data_mut())
            {
                let g = g0 + wd * *w;
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        });
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn export_state(&self) -> OptimState {
        OptimState::Adam {
            lr: self.lr,
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    fn import_state(&mut self, state: OptimState) -> Result<(), String> {
        match state {
            OptimState::Adam { lr, t, m, v } => {
                if m.len() != v.len() {
                    return Err(format!(
                        "Adam state has {} first moments but {} second moments",
                        m.len(),
                        v.len()
                    ));
                }
                self.lr = lr;
                self.t = t;
                self.m = m;
                self.v = v;
                Ok(())
            }
            OptimState::Sgd { .. } => Err("cannot import SGD state into an Adam optimizer".into()),
        }
    }
}

/// Cosine learning-rate decay from `base_lr` to `min_lr` over
/// `total_steps`, with optional linear warmup.
#[derive(Debug, Clone)]
pub struct CosineSchedule {
    base_lr: f32,
    min_lr: f32,
    warmup_steps: usize,
    total_steps: usize,
}

impl CosineSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    /// Panics if `total_steps == 0`.
    pub fn new(base_lr: f32, min_lr: f32, warmup_steps: usize, total_steps: usize) -> Self {
        assert!(
            total_steps > 0,
            "CosineSchedule: total_steps must be positive"
        );
        Self {
            base_lr,
            min_lr,
            warmup_steps,
            total_steps,
        }
    }

    /// Learning rate at a given step (clamped past `total_steps`).
    pub fn lr_at(&self, step: usize) -> f32 {
        if step < self.warmup_steps {
            return self.base_lr * (step + 1) as f32 / self.warmup_steps as f32;
        }
        let progress = ((step - self.warmup_steps) as f32
            / (self.total_steps.saturating_sub(self.warmup_steps)).max(1) as f32)
            .min(1.0);
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
        self.min_lr + (self.base_lr - self.min_lr) * cos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Init, Mlp};
    use crate::params::{Binder, ParamSet};
    use edsr_tensor::rng::seeded;
    use edsr_tensor::{Matrix, Tape};

    /// One regression step; returns the loss value.
    fn regression_step<O: Optimizer>(
        mlp: &Mlp,
        ps: &mut ParamSet,
        opt: &mut O,
        x: &Matrix,
        y: &Matrix,
    ) -> f32 {
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let xin = tape.leaf(x.clone());
        let target = tape.leaf(y.clone());
        let out = mlp.forward(&mut tape, &mut binder, ps, xin);
        let loss = tape.mse(out, target);
        let val = tape.value(loss).get(0, 0);
        let grads = tape.backward(loss);
        ps.zero_grads();
        binder.accumulate_into(&grads, ps);
        opt.step(ps);
        val
    }

    fn toy_problem(seed: u64) -> (Matrix, Matrix) {
        let mut rng = seeded(seed);
        let x = Matrix::randn(64, 4, 1.0, &mut rng);
        // Target: a fixed linear map plus nonlinearity.
        let y = Matrix::from_vec(
            64,
            2,
            (0..64)
                .flat_map(|r| {
                    let row = x.row(r);
                    [row[0] - 0.5 * row[1], (row[2] * row[3]).tanh()]
                })
                .collect(),
        );
        (x, y)
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut rng = seeded(120);
        let mut ps = ParamSet::new();
        let mlp = Mlp::new(
            &mut ps,
            "m",
            &[4, 16, 2],
            Activation::Tanh,
            Init::Xavier,
            &mut rng,
        );
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        let (x, y) = toy_problem(121);
        let first = regression_step(&mlp, &mut ps, &mut opt, &x, &y);
        let mut last = first;
        for _ in 0..200 {
            last = regression_step(&mlp, &mut ps, &mut opt, &x, &y);
        }
        assert!(last < first * 0.2, "SGD failed to learn: {first} -> {last}");
    }

    #[test]
    fn adam_reduces_loss() {
        let mut rng = seeded(122);
        let mut ps = ParamSet::new();
        let mlp = Mlp::new(
            &mut ps,
            "m",
            &[4, 16, 2],
            Activation::Tanh,
            Init::Xavier,
            &mut rng,
        );
        let mut opt = Adam::new(0.01, 0.0);
        let (x, y) = toy_problem(123);
        let first = regression_step(&mlp, &mut ps, &mut opt, &x, &y);
        let mut last = first;
        for _ in 0..200 {
            last = regression_step(&mlp, &mut ps, &mut opt, &x, &y);
        }
        assert!(
            last < first * 0.2,
            "Adam failed to learn: {first} -> {last}"
        );
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradients() {
        let mut ps = ParamSet::new();
        let id = ps.register("w", Matrix::filled(2, 2, 1.0));
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        ps.zero_grads();
        opt.step(&mut ps);
        // w <- w - lr * wd * w = 1 - 0.05 = 0.95
        assert!((ps.value(id).get(0, 0) - 0.95).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates() {
        let mut ps = ParamSet::new();
        let id = ps.register("w", Matrix::zeros(1, 1));
        let mut opt = Sgd::new(1.0, 0.5, 0.0);
        // Constant gradient of 1.
        ps.accumulate_grad(id, &Matrix::filled(1, 1, 1.0));
        opt.step(&mut ps); // v=1, w=-1
        opt.step(&mut ps); // v=1.5, w=-2.5 (grad buffer still holds 1)
        assert!((ps.value(id).get(0, 0) + 2.5).abs() < 1e-6);
    }

    #[test]
    fn cosine_schedule_boundaries() {
        let s = CosineSchedule::new(1.0, 0.1, 0, 100);
        assert!((s.lr_at(0) - 1.0).abs() < 1e-5);
        assert!((s.lr_at(100) - 0.1).abs() < 1e-5);
        assert!((s.lr_at(1000) - 0.1).abs() < 1e-5);
        let mid = s.lr_at(50);
        assert!((mid - 0.55).abs() < 0.01, "mid {mid}");
    }

    #[test]
    fn cosine_schedule_warmup_ramps() {
        let s = CosineSchedule::new(1.0, 0.0, 10, 100);
        assert!(s.lr_at(0) < s.lr_at(5));
        assert!(s.lr_at(5) < s.lr_at(9));
        assert!((s.lr_at(9) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn schedule_monotone_after_warmup() {
        let s = CosineSchedule::new(0.5, 0.0, 0, 50);
        let mut prev = f32::INFINITY;
        for step in 0..=50 {
            let lr = s.lr_at(step);
            assert!(lr <= prev + 1e-6, "lr increased at {step}");
            prev = lr;
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::params::ParamSet;
    use edsr_tensor::Matrix;
    use proptest::prelude::*;

    /// One optimizer step along the gradient of f(w) = ½‖w‖² (grad = w)
    /// with a small lr must not increase the loss, for any starting point.
    fn quadratic_descends(opt: &mut dyn Optimizer, start: Vec<f32>) -> (f32, f32) {
        let n = start.len();
        let mut ps = ParamSet::new();
        let id = ps.register("w", Matrix::from_vec(1, n, start));
        let before: f32 = ps.value(id).data().iter().map(|v| v * v).sum();
        let grad = ps.value(id).clone();
        ps.zero_grads();
        ps.accumulate_grad(id, &grad);
        opt.step(&mut ps);
        let after: f32 = ps.value(id).data().iter().map(|v| v * v).sum();
        (before, after)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn sgd_step_descends_quadratic(start in proptest::collection::vec(-5.0f32..5.0, 1..8)) {
            let mut opt = Sgd::new(0.01, 0.0, 0.0);
            let (before, after) = quadratic_descends(&mut opt, start);
            prop_assert!(after <= before + 1e-6, "{before} -> {after}");
        }

        #[test]
        fn adam_step_descends_quadratic(start in proptest::collection::vec(-5.0f32..5.0, 1..8)) {
            prop_assume!(start.iter().all(|v| v.abs() > 0.1));
            let mut opt = Adam::new(0.01, 0.0);
            let (before, after) = quadratic_descends(&mut opt, start);
            prop_assert!(after <= before + 1e-6, "{before} -> {after}");
        }

        #[test]
        fn cosine_schedule_within_bounds(
            base in 0.01f32..1.0,
            floor_frac in 0.0f32..1.0,
            steps in 1usize..200,
            probe in 0usize..400,
        ) {
            let min_lr = base * floor_frac;
            let s = CosineSchedule::new(base, min_lr, 0, steps);
            let lr = s.lr_at(probe);
            prop_assert!(lr >= min_lr - 1e-6 && lr <= base + 1e-6, "lr {} outside [{}, {}]", lr, min_lr, base);
        }
    }
}
