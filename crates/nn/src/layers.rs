//! Layers: linear, activations, and the multi-layer perceptron used for
//! every network in the reproduction (backbone, projector, SimSiam
//! predictor `h`, distillation projector `p_dis`).
//!
//! The paper's image encoder is ResNet-18 + 2-layer MLP; per the
//! substitution policy (DESIGN.md §2) the backbone here is an MLP, which
//! preserves the full training/distillation/selection structure at
//! simulation scale. The tabular encoder in the paper is already an MLP.

use edsr_tensor::rng::gaussian;
use edsr_tensor::{Matrix, Tape, Var};
use rand::rngs::StdRng;

use crate::params::{Binder, ParamId, ParamSet};

/// Elementwise nonlinearity between MLP layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit (the paper's choice).
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// No nonlinearity.
    Identity,
}

impl Activation {
    fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Relu => tape.relu(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Identity => x,
        }
    }
}

/// Weight initialization scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// He/Kaiming: `N(0, 2/fan_in)` — suited to ReLU nets.
    He,
    /// Xavier/Glorot: `N(0, 2/(fan_in + fan_out))`.
    Xavier,
}

impl Init {
    /// Standard deviation for the given fan-in/out.
    pub fn std(self, fan_in: usize, fan_out: usize) -> f32 {
        match self {
            Init::He => (2.0 / fan_in as f32).sqrt(),
            Init::Xavier => (2.0 / (fan_in + fan_out) as f32).sqrt(),
        }
    }
}

/// A fully connected layer `y = x W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a layer, registering its parameters in `params`.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        init: Init,
        rng: &mut StdRng,
    ) -> Self {
        let std = init.std(in_dim, out_dim);
        let mut w = Matrix::zeros(in_dim, out_dim);
        for v in w.data_mut() {
            *v = gaussian(rng) * std;
        }
        let w = params.register(format!("{name}.w"), w);
        let b = params.register(format!("{name}.b"), Matrix::zeros(1, out_dim));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Parameter handles `(weight, bias)`.
    pub fn param_ids(&self) -> (ParamId, ParamId) {
        (self.w, self.b)
    }

    /// Records `x W + b` on the tape.
    pub fn forward(&self, tape: &mut Tape, binder: &mut Binder, params: &ParamSet, x: Var) -> Var {
        let w = binder.bind(tape, params, self.w);
        let b = binder.bind(tape, params, self.b);
        let xw = tape.matmul(x, w);
        tape.add_row(xw, b)
    }
}

/// A multi-layer perceptron with a shared hidden activation and no
/// activation after the final layer.
///
/// With [`with_batch_norm`](Self::with_batch_norm) enabled, hidden
/// pre-activations are standardized per feature over the batch (BN in
/// train mode, no affine) — the normalization SimSiam relies on to avoid
/// representation collapse. Batches with fewer than 2 rows skip the
/// normalization (statistics are undefined).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
    batch_norm: bool,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[64, 128, 32]`
    /// creates two linear layers `64→128→32`.
    ///
    /// # Panics
    /// Panics if fewer than two dims are supplied.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        dims: &[usize],
        activation: Activation,
        init: Init,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "Mlp::new: need at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(params, &format!("{name}.l{i}"), w[0], w[1], init, rng))
            .collect();
        Self {
            layers,
            activation,
            batch_norm: false,
        }
    }

    /// Enables/disables hidden-layer batch standardization.
    pub fn with_batch_norm(mut self, on: bool) -> Self {
        self.batch_norm = on;
        self
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Number of linear layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// All parameter handles, layer by layer.
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.layers
            .iter()
            .flat_map(|l| {
                let (w, b) = l.param_ids();
                [w, b]
            })
            .collect()
    }

    /// Records the (train-mode) forward pass on the tape.
    pub fn forward(&self, tape: &mut Tape, binder: &mut Binder, params: &ParamSet, x: Var) -> Var {
        self.forward_mode(tape, binder, params, x, true)
    }

    /// Records an eval-mode forward: batch standardization is skipped
    /// entirely, so each output row depends only on its own input row.
    /// This matches train-mode behaviour for single-row batches (where
    /// the statistics are undefined and BN is already skipped) and is
    /// what inference servers rely on for batched responses being
    /// bit-identical to single-request responses.
    pub fn forward_eval(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        params: &ParamSet,
        x: Var,
    ) -> Var {
        self.forward_mode(tape, binder, params, x, false)
    }

    fn forward_mode(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        params: &ParamSet,
        x: Var,
        train: bool,
    ) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, binder, params, h);
            if i != last {
                if train && self.batch_norm && tape.value(h).rows() >= 2 {
                    h = tape.col_standardize(h, 1e-5);
                }
                h = self.activation.apply(tape, h);
            }
        }
        h
    }

    /// Convenience inference: runs the MLP on raw data without autograd
    /// bookkeeping for the caller (still uses a scratch tape internally).
    pub fn infer(&self, params: &ParamSet, x: &Matrix) -> Matrix {
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let input = tape.leaf(x.clone());
        let out = self.forward(&mut tape, &mut binder, params, input);
        tape.value(out).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::rng::seeded;

    #[test]
    fn linear_known_values() {
        let mut rng = seeded(110);
        let mut ps = ParamSet::new();
        let layer = Linear::new(&mut ps, "l", 2, 2, Init::He, &mut rng);
        let (w, b) = layer.param_ids();
        *ps.value_mut(w) = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        *ps.value_mut(b) = Matrix::from_vec(1, 2, vec![0.5, -0.5]);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.leaf(Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        let y = layer.forward(&mut tape, &mut binder, &ps, x);
        assert_eq!(tape.value(y).data(), &[4.5, 5.5]);
    }

    #[test]
    fn mlp_shapes() {
        let mut rng = seeded(111);
        let mut ps = ParamSet::new();
        let mlp = Mlp::new(
            &mut ps,
            "m",
            &[8, 16, 4],
            Activation::Relu,
            Init::He,
            &mut rng,
        );
        assert_eq!(mlp.in_dim(), 8);
        assert_eq!(mlp.out_dim(), 4);
        assert_eq!(mlp.depth(), 2);
        assert_eq!(ps.len(), 4);
        let out = mlp.infer(&ps, &Matrix::zeros(5, 8));
        assert_eq!(out.shape(), (5, 4));
    }

    #[test]
    fn identity_activation_is_linear_composition() {
        let mut rng = seeded(112);
        let mut ps = ParamSet::new();
        let mlp = Mlp::new(
            &mut ps,
            "m",
            &[3, 3, 3],
            Activation::Identity,
            Init::Xavier,
            &mut rng,
        );
        // f(a x) == a f(x) - f(0) scaled appropriately only without bias;
        // here check additivity of the *linear part*: f(x+y) - f(0) == (f(x)-f(0)) + (f(y)-f(0)).
        let x = Matrix::from_vec(1, 3, vec![1.0, 0.0, 2.0]);
        let y = Matrix::from_vec(1, 3, vec![-1.0, 3.0, 0.5]);
        let f0 = mlp.infer(&ps, &Matrix::zeros(1, 3));
        let fx = mlp.infer(&ps, &x).sub(&f0);
        let fy = mlp.infer(&ps, &y).sub(&f0);
        let fxy = mlp.infer(&ps, &x.add(&y)).sub(&f0);
        assert!(fxy.max_abs_diff(&fx.add(&fy)) < 1e-4);
    }

    #[test]
    fn relu_activation_nonnegative_hidden() {
        let mut rng = seeded(113);
        let mut ps = ParamSet::new();
        // Single hidden layer straight to output of width equal to hidden:
        // verify ReLU path produces different output from identity path.
        let relu = Mlp::new(
            &mut ps,
            "r",
            &[4, 8, 2],
            Activation::Relu,
            Init::He,
            &mut rng,
        );
        let mut ps2 = ParamSet::new();
        let mut rng2 = seeded(113);
        let ident = Mlp::new(
            &mut ps2,
            "r",
            &[4, 8, 2],
            Activation::Identity,
            Init::He,
            &mut rng2,
        );
        let x = Matrix::from_vec(1, 4, vec![1.0, -2.0, 0.5, -0.1]);
        let a = relu.infer(&ps, &x);
        let b = ident.infer(&ps2, &x);
        assert!(a.max_abs_diff(&b) > 1e-4, "ReLU had no effect");
    }

    #[test]
    fn gradients_flow_through_mlp() {
        let mut rng = seeded(114);
        let mut ps = ParamSet::new();
        let mlp = Mlp::new(
            &mut ps,
            "m",
            &[3, 5, 2],
            Activation::Tanh,
            Init::Xavier,
            &mut rng,
        );
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.leaf(Matrix::randn(4, 3, 1.0, &mut rng));
        let out = mlp.forward(&mut tape, &mut binder, &ps, x);
        let sq = tape.square(out);
        let loss = tape.sum(sq);
        let grads = tape.backward(loss);
        binder.accumulate_into(&grads, &mut ps);
        let total: f32 = mlp
            .param_ids()
            .iter()
            .map(|&id| ps.grad(id).frobenius_norm())
            .sum();
        assert!(total > 1e-4, "no gradient reached parameters");
    }

    #[test]
    fn init_statistics_he() {
        let mut rng = seeded(115);
        let mut ps = ParamSet::new();
        let l = Linear::new(&mut ps, "l", 1000, 10, Init::He, &mut rng);
        let (w, _) = l.param_ids();
        let std_emp = (ps.value(w).map(|v| v * v).mean() - ps.value(w).mean().powi(2)).sqrt();
        let expected = (2.0f32 / 1000.0).sqrt();
        assert!(
            (std_emp - expected).abs() / expected < 0.1,
            "std {std_emp} vs {expected}"
        );
    }

    #[test]
    fn batch_norm_skipped_for_single_row() {
        // Batch statistics are undefined for one sample: the BN path must
        // fall through instead of zeroing the activations.
        let mut rng = seeded(117);
        let mut ps = ParamSet::new();
        let mlp = Mlp::new(
            &mut ps,
            "m",
            &[3, 4, 2],
            Activation::Relu,
            Init::He,
            &mut rng,
        )
        .with_batch_norm(true);
        let single = Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let out = mlp.infer(&ps, &single);
        assert!(out.all_finite());
        assert!(
            out.frobenius_norm() > 0.0,
            "single-row BN zeroed the output"
        );
    }

    #[test]
    fn batch_norm_changes_multi_row_output() {
        let mut rng = seeded(118);
        let mut ps = ParamSet::new();
        let plain = Mlp::new(
            &mut ps,
            "m",
            &[3, 4, 2],
            Activation::Relu,
            Init::He,
            &mut rng,
        );
        let bn = plain.clone().with_batch_norm(true);
        let mut rng2 = seeded(119);
        let x = Matrix::randn(6, 3, 1.0, &mut rng2);
        let a = plain.infer(&ps, &x);
        let b = bn.infer(&ps, &x);
        assert!(a.max_abs_diff(&b) > 1e-5, "BN had no effect on a batch");
    }

    #[test]
    fn eval_forward_is_row_independent() {
        // Eval mode skips batch standardization, so each batched row must
        // be bit-identical to forwarding that row alone.
        let mut rng = seeded(120);
        let mut ps = ParamSet::new();
        let mlp = Mlp::new(
            &mut ps,
            "m",
            &[3, 5, 2],
            Activation::Relu,
            Init::He,
            &mut rng,
        )
        .with_batch_norm(true);
        let x = Matrix::randn(4, 3, 1.0, &mut rng);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let input = tape.leaf(x.clone());
        let batched = mlp.forward_eval(&mut tape, &mut binder, &ps, input);
        let batched = tape.value(batched).clone();
        for i in 0..x.rows() {
            let mut tape = Tape::new();
            let mut binder = Binder::new();
            let row = tape.leaf(Matrix::from_vec(1, 3, x.row(i).to_vec()));
            let solo = mlp.forward_eval(&mut tape, &mut binder, &ps, row);
            let solo = tape.value(solo);
            let a: Vec<u32> = batched.row(i).iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = solo.row(0).iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "row {i} diverged in eval mode");
        }
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_single_dim_panics() {
        let mut rng = seeded(116);
        let mut ps = ParamSet::new();
        let _ = Mlp::new(&mut ps, "m", &[4], Activation::Relu, Init::He, &mut rng);
    }
}
