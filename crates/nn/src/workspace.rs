//! Reusable per-step training workspace.
//!
//! A [`Workspace`] bundles the tapes and binders a training step records
//! onto. Methods receive `&mut Workspace` instead of building fresh
//! `Tape`/`Binder` pairs per step, so after one warmup step every node
//! value and gradient is served from the tapes' scratch pools and the
//! steady-state step performs zero heap allocations in the forward/backward
//! hot path (DESIGN.md §10).
//!
//! The `aux` pair exists for forwards whose outputs are *constants* of the
//! step — frozen-model targets for distillation and replay. Recording them
//! on a second tape lets the main tape borrow the target value (`&Matrix`
//! from `aux_tape.value(..)`) while being extended mutably: disjoint
//! fields of one `&mut Workspace` borrow independently.

use crate::params::Binder;
use edsr_tensor::Tape;

/// Tapes and binders reused across training steps.
#[derive(Default)]
pub struct Workspace {
    /// Tape the step's differentiated computation is recorded on.
    pub tape: Tape,
    /// Binder memoizing live-model parameters onto [`tape`](Self::tape).
    pub binder: Binder,
    /// Side tape for frozen-model forwards (targets, no backward pass).
    pub aux_tape: Tape,
    /// Binder memoizing frozen-model parameters onto the aux tape.
    pub aux_binder: Binder,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recycles all recorded nodes and bindings; call at the start of each
    /// training step.
    pub fn reset(&mut self) {
        self.tape.reset();
        self.binder.reset();
        self.aux_tape.reset();
        self.aux_binder.reset();
    }

    /// Records both tapes' scratch-arena counters and high-water marks as
    /// `edsr-obs` gauges. The main tape's arena is tagged `index * 2`,
    /// the aux tape's `index * 2 + 1`, so per-task emissions stay
    /// distinguishable. No-op (one atomic load) when observability is
    /// off.
    pub fn emit_metrics(&self, index: u64) {
        if !edsr_obs::enabled() {
            return;
        }
        self.tape.scratch().emit_metrics(index * 2);
        self.aux_tape.scratch().emit_metrics(index * 2 + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;
    use edsr_tensor::Matrix;

    #[test]
    fn reset_reuses_buffers_across_steps() {
        let mut ps = ParamSet::new();
        let id = ps.register("w", Matrix::filled(4, 4, 0.5));
        let mut ws = Workspace::new();
        let step = |ws: &mut Workspace| {
            ws.reset();
            let w = ws.binder.bind(&mut ws.tape, &ps, id);
            let sq = ws.tape.square(w);
            let loss = ws.tape.sum(sq);
            let grads = ws.tape.backward(loss);
            assert!(grads.get(w).is_some());
            ws.tape.recycle(grads);
        };
        step(&mut ws); // warmup allocates
        let misses = ws.tape.scratch().misses();
        step(&mut ws);
        step(&mut ws);
        assert_eq!(
            ws.tape.scratch().misses(),
            misses,
            "steady-state workspace step allocated"
        );
    }

    #[test]
    fn binder_rebinds_after_reset() {
        let mut ps = ParamSet::new();
        let id = ps.register("w", Matrix::filled(1, 2, 2.0));
        let mut ws = Workspace::new();
        let a = ws.binder.bind(&mut ws.tape, &ps, id);
        let b = ws.binder.bind(&mut ws.tape, &ps, id);
        assert_eq!(a, b);
        ws.reset();
        ps.value_mut(id).set(0, 0, 7.0);
        let c = ws.binder.bind(&mut ws.tape, &ps, id);
        assert_eq!(
            ws.tape.value(c).get(0, 0),
            7.0,
            "stale binding survived reset"
        );
    }
}
