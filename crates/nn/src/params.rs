//! Parameter storage shared by all models.
//!
//! A [`ParamSet`] owns every trainable matrix of a model together with a
//! same-shape gradient buffer. Layers hold lightweight [`ParamId`] handles.
//! During a training step, a [`Binder`] lends parameter values to a
//! [`Tape`] as leaf nodes (memoized, so a parameter used twice shares one
//! node and its gradients accumulate correctly) and routes gradients back
//! after the backward pass.

use edsr_tensor::{Grads, Matrix, Tape, Var};

/// Handle to one parameter inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

/// Owns parameter values and gradient accumulators.
///
/// `Clone` gives a deep copy — this is how the frozen old model `f̃` is
/// kept: same architecture object, cloned parameter set.
#[derive(Default, Clone)]
pub struct ParamSet {
    values: Vec<Matrix>,
    grads: Vec<Matrix>,
    names: Vec<String>,
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its handle.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Matrix::zeros(value.rows(), value.cols()));
        self.values.push(value);
        self.names.push(name.into());
        id
    }

    /// Number of registered parameters (matrices).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable value of a parameter.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.grads[id.0]
    }

    /// Mutable gradient buffer of a parameter. Lets a caller *install*
    /// a gradient bit-exactly (a parameter server restoring a worker's
    /// pushed gradients) — [`accumulate_grad`](Self::accumulate_grad)
    /// into a zeroed buffer is not equivalent, since `0.0 + (-0.0)`
    /// loses the sign of zero.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.grads[id.0]
    }

    /// Name given at registration.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Adds `g` into the gradient buffer of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Matrix) {
        self.grads[id.0].add_assign(g);
    }

    /// Clears all gradient buffers (keeps allocations).
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Applies `f(value, grad)` to every parameter/gradient pair — the
    /// low-level hook optimizers use.
    pub fn for_each_mut(&mut self, mut f: impl FnMut(usize, &mut Matrix, &Matrix)) {
        for (i, (v, g)) in self.values.iter_mut().zip(&self.grads).enumerate() {
            f(i, v, g);
        }
    }

    /// Deep copy of all values (the frozen "old model" `f̃` snapshot).
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.values.clone()
    }

    /// Restores values from a [`snapshot`](Self::snapshot).
    ///
    /// # Panics
    /// Panics if the snapshot does not match this set's shapes.
    pub fn restore(&mut self, snapshot: &[Matrix]) {
        assert_eq!(
            snapshot.len(),
            self.values.len(),
            "restore: parameter count mismatch"
        );
        for (dst, src) in self.values.iter_mut().zip(snapshot) {
            assert_eq!(dst.shape(), src.shape(), "restore: shape mismatch");
            *dst = src.clone();
        }
    }
}

/// Per-step memoized binding of parameters onto a tape.
#[derive(Default)]
pub struct Binder {
    bound: Vec<Option<Var>>,
}

impl Binder {
    /// Creates an empty binder (for one tape / one step).
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets all bindings (keeping the slot allocation) so the binder can
    /// serve the next step's tape. Pairs with [`Tape::reset`].
    pub fn reset(&mut self) {
        self.bound.iter_mut().for_each(|slot| *slot = None);
    }

    /// Returns the tape node holding `id`'s current value, creating it on
    /// first use within this binder.
    pub fn bind(&mut self, tape: &mut Tape, params: &ParamSet, id: ParamId) -> Var {
        if self.bound.len() <= id.0 {
            self.bound.resize(id.0 + 1, None);
        }
        if let Some(v) = self.bound[id.0] {
            return v;
        }
        let var = tape.leaf_copy(params.value(id));
        self.bound[id.0] = Some(var);
        var
    }

    /// Routes tape gradients back into the parameter set's buffers.
    pub fn accumulate_into(&self, grads: &Grads, params: &mut ParamSet) {
        for (raw, bound) in self.bound.iter().enumerate() {
            if let Some(var) = bound {
                if let Some(g) = grads.get(*var) {
                    params.accumulate_grad(ParamId(raw), g);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::rng::seeded;

    #[test]
    fn register_and_lookup() {
        let mut ps = ParamSet::new();
        let id = ps.register("w", Matrix::filled(2, 3, 1.5));
        assert_eq!(ps.value(id).shape(), (2, 3));
        assert_eq!(ps.name(id), "w");
        assert_eq!(ps.num_scalars(), 6);
    }

    #[test]
    fn zero_grads_clears() {
        let mut ps = ParamSet::new();
        let id = ps.register("w", Matrix::zeros(2, 2));
        ps.accumulate_grad(id, &Matrix::filled(2, 2, 3.0));
        assert_eq!(ps.grad(id).sum(), 12.0);
        ps.zero_grads();
        assert_eq!(ps.grad(id).sum(), 0.0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut rng = seeded(100);
        let mut ps = ParamSet::new();
        let id = ps.register("w", Matrix::randn(3, 3, 1.0, &mut rng));
        let snap = ps.snapshot();
        let original = ps.value(id).clone();
        ps.value_mut(id).scale_inplace(5.0);
        assert!(ps.value(id).max_abs_diff(&original) > 0.1);
        ps.restore(&snap);
        assert_eq!(ps.value(id), &original);
    }

    #[test]
    fn binder_memoizes_shared_parameter() {
        let mut ps = ParamSet::new();
        let id = ps.register("w", Matrix::filled(1, 2, 2.0));
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let a = binder.bind(&mut tape, &ps, id);
        let b = binder.bind(&mut tape, &ps, id);
        assert_eq!(a, b, "parameter bound twice got two nodes");
    }

    #[test]
    fn binder_routes_gradients_back() {
        // L = sum(w ⊙ w) → dL/dw = 2w.
        let mut ps = ParamSet::new();
        let id = ps.register("w", Matrix::from_vec(1, 2, vec![3.0, -1.0]));
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let w = binder.bind(&mut tape, &ps, id);
        let sq = tape.square(w);
        let loss = tape.sum(sq);
        let grads = tape.backward(loss);
        binder.accumulate_into(&grads, &mut ps);
        assert_eq!(ps.grad(id).data(), &[6.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "parameter count mismatch")]
    fn restore_wrong_snapshot_panics() {
        let mut ps = ParamSet::new();
        ps.register("w", Matrix::zeros(1, 1));
        ps.restore(&[]);
    }
}
