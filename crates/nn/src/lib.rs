//! # edsr-nn
//!
//! Neural-network building blocks for the EDSR reproduction: parameter
//! storage ([`ParamSet`]) with tape binding, linear layers and MLPs, and
//! the two optimizers the paper uses (SGD with momentum for images, Adam
//! for tabular data) plus a cosine learning-rate schedule.

pub mod conv;
pub mod io;
pub mod layers;
pub mod optim;
pub mod params;
pub mod workspace;

pub use conv::{Conv2d, ConvShape};
pub use io::{load_params, save_params, CheckpointError};
pub use layers::{Activation, Init, Linear, Mlp};
pub use optim::{Adam, CosineSchedule, OptimState, Optimizer, Sgd};
pub use params::{Binder, ParamId, ParamSet};
pub use workspace::Workspace;

#[cfg(test)]
mod gradcheck_tests {
    use super::*;
    use edsr_tensor::gradcheck::check_gradients;
    use edsr_tensor::rng::seeded;
    use edsr_tensor::Matrix;

    /// Full-network finite-difference check: perturb the *weights* of a
    /// small MLP (exposed as leaf inputs) and verify the analytic
    /// parameter gradients.
    #[test]
    fn mlp_parameter_gradients_match_finite_differences() {
        let mut rng = seeded(130);
        let x = Matrix::randn(3, 2, 1.0, &mut rng);
        let w1 = Matrix::randn(2, 4, 0.7, &mut rng);
        let b1 = Matrix::randn(1, 4, 0.1, &mut rng);
        let w2 = Matrix::randn(4, 2, 0.7, &mut rng);
        let b2 = Matrix::randn(1, 2, 0.1, &mut rng);
        let target = Matrix::randn(3, 2, 1.0, &mut rng);
        check_gradients(&[w1, b1, w2, b2], 1e-3, 3e-2, |t, vars| {
            let xin = t.leaf(x.clone());
            let tgt = t.leaf(target.clone());
            let h = t.matmul(xin, vars[0]);
            let h = t.add_row(h, vars[1]);
            let h = t.tanh(h);
            let o = t.matmul(h, vars[2]);
            let o = t.add_row(o, vars[3]);
            t.mse(o, tgt)
        });
    }

    /// The Binder + Mlp path must produce the same gradients as the
    /// hand-rolled graph above.
    #[test]
    fn binder_gradients_match_manual_graph() {
        use edsr_tensor::Tape;
        let mut rng = seeded(131);
        let mut ps = ParamSet::new();
        let mlp = Mlp::new(
            &mut ps,
            "m",
            &[2, 4, 2],
            Activation::Tanh,
            Init::Xavier,
            &mut rng,
        );
        let x = Matrix::randn(3, 2, 1.0, &mut rng);
        let y = Matrix::randn(3, 2, 1.0, &mut rng);

        // Path A: binder.
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let xin = tape.leaf(x.clone());
        let tgt = tape.leaf(y.clone());
        let out = mlp.forward(&mut tape, &mut binder, &ps, xin);
        let loss = tape.mse(out, tgt);
        let grads = tape.backward(loss);
        ps.zero_grads();
        binder.accumulate_into(&grads, &mut ps);

        // Path B: manual graph with the same weights.
        let ids = mlp.param_ids();
        let mut tape2 = Tape::new();
        let w1 = tape2.leaf(ps.value(ids[0]).clone());
        let b1 = tape2.leaf(ps.value(ids[1]).clone());
        let w2 = tape2.leaf(ps.value(ids[2]).clone());
        let b2 = tape2.leaf(ps.value(ids[3]).clone());
        let xin2 = tape2.leaf(x);
        let tgt2 = tape2.leaf(y);
        let h = tape2.matmul(xin2, w1);
        let h = tape2.add_row(h, b1);
        let h = tape2.tanh(h);
        let o = tape2.matmul(h, w2);
        let o = tape2.add_row(o, b2);
        let loss2 = tape2.mse(o, tgt2);
        let grads2 = tape2.backward(loss2);

        for (&id, var) in ids.iter().zip([w1, b1, w2, b2]) {
            let manual = grads2.get(var).expect("gradient exists");
            assert!(
                ps.grad(id).max_abs_diff(manual) < 1e-5,
                "gradient mismatch for {}",
                ps.name(id)
            );
        }
    }
}
