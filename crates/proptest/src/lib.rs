//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate vendors the
//! subset of proptest the workspace's property tests use:
//!
//! - [`Strategy`] with `prop_map` / `prop_flat_map`
//! - ranges (`-5.0f32..5.0`, `1usize..8`, `1..=6`) and tuples as strategies
//! - [`collection::vec`] with exact or ranged lengths
//! - [`any`] over the primitive integer/bool types and the
//!   [`prop_oneof!`] union of same-valued strategies
//! - the [`proptest!`] block macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`]
//!
//! Semantics differ from upstream in one deliberate way: failing inputs
//! are **not shrunk** — the failing case is reported verbatim with its
//! case number. Sampling is deterministic per test (seeded by a hash of
//! the test name), so failures reproduce exactly across runs.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

/// Result type the generated per-case closure returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the simulator's matrix-heavy
        // property tests fast while still exercising a broad input space.
        Self { cases: 64 }
    }
}

/// FNV-1a hash of the test name → per-test deterministic seed.
pub fn seed_for_test(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A generator of values: the sampling core of the shim.
pub trait Strategy {
    /// The value type produced.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and samples
    /// the produced strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32);

// The vendored rand only samples u32/u64 ranges directly; narrow integer
// ranges go through u32.
macro_rules! impl_narrow_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(u32::from(self.start)..u32::from(self.end)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(u32::from(*self.start())..=u32::from(*self.end())) as $t
            }
        }
    )*};
}

impl_narrow_range_strategy!(u8, u16);

/// Types [`any`] can sample over their full domain.
pub trait ArbitrarySample: Debug {
    /// Draws one uniformly distributed value.
    fn sample_any(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitrarySample for $t {
            fn sample_any(rng: &mut StdRng) -> $t {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl ArbitrarySample for bool {
    fn sample_any(rng: &mut StdRng) -> bool {
        rng.random::<bool>()
    }
}

/// Samples the full domain of `T` (upstream `any::<T>()`).
pub fn any<T: ArbitrarySample>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitrarySample> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::sample_any(rng)
    }
}

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

/// Uniform choice between same-valued strategies (see [`prop_oneof!`]).
pub struct Union<T> {
    branches: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug> Union<T> {
    /// A union over `branches` (must be non-empty).
    pub fn new(branches: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof!: no branches");
        Self { branches }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = rng.random_range(0..self.branches.len());
        self.branches[idx].sample(rng)
    }
}

/// Uniformly picks one of the given strategies per case (upstream's
/// macro, minus weight syntax).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let branches: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strat)),+];
        $crate::Union::new(branches)
    }};
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut StdRng) -> f32 {
        rng.random_range(self.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Collection strategies (only `vec` is needed).
pub mod collection {
    use super::*;

    /// Lengths acceptable to [`vec()`]: exact or ranged.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of `element` samples with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the workspace's tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult, Union,
    };
}

/// Asserts inside a property test; on failure the case (not the whole
/// process) is reported with its inputs' case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r)
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "{}: {:?} != {:?}", format!($($fmt)*), l, r)
            }
        }
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Declares a block of property tests. Grammar matched (the subset the
/// workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn name(x in strategy, y in strategy) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property_test(
                    stringify!($name),
                    &$config,
                    |__proptest_rng| {
                        $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                        let __desc = format!(
                            concat!($(concat!(stringify!($arg), " = {:?}; ")),+),
                            $(&$arg),+
                        );
                        let __case = move || -> $crate::TestCaseResult {
                            $body
                            ::core::result::Result::Ok(())
                        };
                        (__case(), __desc)
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Drives one property test: samples `cases` inputs and executes the body
/// on each. Not part of the public proptest API — called by the macro.
pub fn run_property_test(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut StdRng) -> (TestCaseResult, String),
) {
    let mut rng = StdRng::seed_from_u64(seed_for_test(name));
    let mut rejected = 0u32;
    for case_idx in 0..config.cases {
        let (outcome, describe) = case(&mut rng);
        match outcome {
            Ok(()) => {}
            Err(TestCaseError::Reject) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {case_idx} [{describe}]: {msg}");
            }
        }
    }
    // Upstream errors out when too many cases are rejected; mirror that so
    // a dead assume doesn't silently skip the whole test.
    assert!(
        rejected < config.cases,
        "property `{name}`: every generated case was rejected by prop_assume!"
    );
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sample_in_bounds() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let strat = collection::vec(-2.0f32..2.0, 3usize..7);
        for _ in 0..100 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (-2.0..2.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_inputs(x in 0usize..10, v in collection::vec(0.0f32..1.0, 2..5)) {
            prop_assert!(x < 10);
            prop_assert_eq!(v.len() >= 2, true);
        }

        #[test]
        fn assume_skips_cases(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    proptest! {
        #[test]
        fn default_config_block_works(pair in (1usize..4, 1usize..4)) {
            prop_assert!(pair.0 * pair.1 < 16);
        }

        #[test]
        fn any_and_oneof_sample(x in any::<u16>(), pick in prop_oneof![Just(1usize), 5usize..9]) {
            prop_assert!(u32::from(x) <= u32::from(u16::MAX));
            prop_assert!(pick == 1 || (5..9).contains(&pick));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        crate::run_property_test("always_fails", &ProptestConfig::with_cases(4), |_rng| {
            (Err(TestCaseError::Fail("nope".into())), "x = 0".to_string())
        });
    }
}
