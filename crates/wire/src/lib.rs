//! # edsr-wire
//!
//! The shared wire substrate: every byte-level integrity mechanism the
//! workspace uses, in one place. Extracted from `edsr-serve`'s protocol
//! module and `edsr-nn`'s checkpoint IO so the serving layer and the
//! distributed-training layer (`edsr-dist`) frame and validate bytes
//! identically.
//!
//! Three building blocks:
//!
//! - **Framing** ([`write_frame`] / [`read_frame`]): one message = a
//!   `u32` little-endian payload length followed by the payload, with a
//!   hard [`MAX_FRAME`] cap checked *before* allocation so a corrupt
//!   length prefix cannot OOM a peer.
//! - **CRC32** ([`crc32`]): IEEE 802.3 reflected, table-driven — the
//!   integrity check shared by file envelopes and wire payloads.
//! - **Envelopes** ([`write_envelope`] / [`read_envelope`]): the
//!   `magic + payload + (u64 length, u32 crc32)` on-disk format with
//!   temp-file + fsync + atomic-rename durability, used by parameter
//!   checkpoints, run states, and serve snapshots.
//!
//! Consumers keep their own error types (`ProtocolError`,
//! `CheckpointError`) and map [`FrameError`] / [`EnvelopeError`] into
//! them variant-for-variant, so public APIs and tests above this crate
//! are unchanged by the extraction.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

/// Hard cap on a frame payload (16 MiB): anything larger is rejected
/// before allocation, so a corrupt length prefix cannot OOM the peer.
pub const MAX_FRAME: usize = 1 << 24;

/// Failure while reading or writing a length-prefixed frame.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket/file error.
    Io(io::Error),
    /// The stream ended before the bytes it promised.
    Truncated {
        /// Bytes the reader needed.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// Frame length prefix (or payload) exceeds [`MAX_FRAME`].
    TooLarge(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::Truncated { expected, got } => {
                write!(f, "truncated frame: needed {expected} bytes, {got} present")
            }
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one `u32`-length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME {
        return Err(FrameError::TooLarge(payload.len()));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame's payload into `buf` (cleared and resized; reusing one
/// buffer keeps steady-state reads allocation-free). Returns `Ok(false)`
/// on clean EOF before any length byte; propagates everything else.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<bool, FrameError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(FrameError::Truncated {
                    expected: 4,
                    got: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated {
                expected: len,
                got: 0,
            }
        } else {
            FrameError::Io(e)
        }
    })?;
    Ok(true)
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected), table-driven.
// ---------------------------------------------------------------------------

fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) of `bytes` — the integrity check in envelope trailers and
/// on dist-protocol state digests.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Table construction is allocation-free and cheap to call; the
    // compiler hoists it, and integrity checks are far from any hot loop.
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Envelope: magic + payload + (length, crc32) trailer, atomic write.
// ---------------------------------------------------------------------------

const TRAILER_LEN: u64 = 12; // u64 length + u32 crc

/// Failure while writing or validating an integrity envelope.
#[derive(Debug)]
pub enum EnvelopeError {
    /// Underlying file error.
    Io(io::Error),
    /// The bytes do not open with the expected magic tag.
    BadMagic,
    /// The file ends before its declared payload (interrupted write).
    Truncated {
        /// Bytes the trailer (or parser) expected.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// The payload's CRC32 does not match its trailer (bit corruption).
    Corrupt {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
}

impl std::fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvelopeError::Io(e) => write!(f, "envelope io error: {e}"),
            EnvelopeError::BadMagic => write!(f, "not an EDSR envelope (bad magic)"),
            EnvelopeError::Truncated { expected, got } => {
                write!(
                    f,
                    "envelope truncated: expected {expected} payload bytes, found {got}"
                )
            }
            EnvelopeError::Corrupt { stored, computed } => {
                write!(
                    f,
                    "envelope corrupt: crc32 {computed:08x} != stored {stored:08x}"
                )
            }
        }
    }
}

impl std::error::Error for EnvelopeError {}

impl From<io::Error> for EnvelopeError {
    fn from(e: io::Error) -> Self {
        EnvelopeError::Io(e)
    }
}

/// Writes `payload` under `magic` to `path` with the integrity trailer.
///
/// Durability contract: the write goes to `<path>.tmp`, is `fsync`ed to
/// stable storage, and only then renamed into place, so neither a process
/// crash nor a power loss can leave a half-written (or fully-written but
/// unflushed) file under the final name. Without the fsync, rename-only
/// atomicity still allows the *metadata* rename to reach disk before the
/// *data* blocks — after power loss the final path could hold garbage
/// that passes the existence check and fails CRC. The parent directory
/// is fsynced best-effort so the rename itself is durable too.
pub fn write_envelope(
    path: impl AsRef<Path>,
    magic: &[u8; 8],
    payload: &[u8],
) -> Result<(), EnvelopeError> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    {
        let mut w = io::BufWriter::new(File::create(&tmp)?);
        w.write_all(magic)?;
        w.write_all(payload)?;
        w.write_all(&(payload.len() as u64).to_le_bytes())?;
        w.write_all(&crc32(payload).to_le_bytes())?;
        w.flush()?;
        w.get_ref().sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// Best-effort fsync of `path`'s parent directory, making a just-completed
/// rename durable. Failures are ignored: some filesystems (and most CI
/// sandboxes) reject directory fsync, and the worst case is the pre-fsync
/// status quo — the rename may be lost on power failure, never torn.
pub fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(handle) = File::open(dir) {
            let _ = handle.sync_all();
        }
    }
}

/// Reads and validates an envelope written by [`write_envelope`].
///
/// Checks, in order: the magic tag, the declared payload length against
/// the bytes actually present ([`EnvelopeError::Truncated`] on any
/// shortfall), and the payload CRC32 ([`EnvelopeError::Corrupt`]).
/// Only then is the validated payload returned for parsing.
pub fn read_envelope(path: impl AsRef<Path>, magic: &[u8; 8]) -> Result<Vec<u8>, EnvelopeError> {
    let bytes = std::fs::read(path)?;
    read_envelope_bytes(&bytes, magic)
}

/// As [`read_envelope`], over an in-memory image of the file.
pub fn read_envelope_bytes(bytes: &[u8], magic: &[u8; 8]) -> Result<Vec<u8>, EnvelopeError> {
    if bytes.len() < 8 || &bytes[..8] != magic {
        return Err(EnvelopeError::BadMagic);
    }
    let body = &bytes[8..];
    if (body.len() as u64) < TRAILER_LEN {
        return Err(EnvelopeError::Truncated {
            expected: TRAILER_LEN,
            got: body.len() as u64,
        });
    }
    let (payload_and_len, crc_bytes) = body.split_at(body.len() - 4);
    let (payload, len_bytes) = payload_and_len.split_at(payload_and_len.len() - 8);
    let mut len_arr = [0u8; 8];
    len_arr.copy_from_slice(len_bytes);
    let declared = u64::from_le_bytes(len_arr);
    if declared != payload.len() as u64 {
        return Err(EnvelopeError::Truncated {
            expected: declared,
            got: payload.len() as u64,
        });
    }
    let mut crc_arr = [0u8; 4];
    crc_arr.copy_from_slice(crc_bytes);
    let stored = u32::from_le_bytes(crc_arr);
    let computed = crc32(payload);
    if stored != computed {
        return Err(EnvelopeError::Corrupt { stored, computed });
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_and_clean_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cur = io::Cursor::new(wire);
        let mut buf = Vec::new();
        assert!(read_frame(&mut cur, &mut buf).unwrap());
        assert_eq!(buf, b"hello");
        assert!(read_frame(&mut cur, &mut buf).unwrap());
        assert_eq!(buf, b"");
        assert!(!read_frame(&mut cur, &mut buf).unwrap(), "clean EOF");
    }

    #[test]
    fn frame_rejects_oversize_and_truncation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let mut cur = io::Cursor::new(wire);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut cur, &mut buf),
            Err(FrameError::TooLarge(_))
        ));

        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").unwrap();
        for cut in 1..wire.len() {
            let mut cur = io::Cursor::new(&wire[..cut]);
            assert!(
                matches!(
                    read_frame(&mut cur, &mut buf),
                    Err(FrameError::Truncated { .. }) | Err(FrameError::Io(_))
                ),
                "cut at {cut} must surface a structured error"
            );
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn envelope_roundtrip_detects_truncation_and_corruption() {
        let dir = std::env::temp_dir().join(format!("edsr_wire_env_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.bin");
        let magic = b"EDSRTEST";
        let payload = vec![7u8; 100];
        write_envelope(&path, magic, &payload).unwrap();
        assert_eq!(read_envelope(&path, magic).unwrap(), payload);
        assert!(matches!(
            read_envelope(&path, b"WRONGMAG"),
            Err(EnvelopeError::BadMagic)
        ));

        let full = std::fs::read(&path).unwrap();
        assert!(matches!(
            read_envelope_bytes(&full[..full.len() - 6], magic),
            Err(EnvelopeError::Truncated { .. })
        ));
        let mut flipped = full.clone();
        flipped[10] ^= 0x40;
        assert!(matches!(
            read_envelope_bytes(&flipped, magic),
            Err(EnvelopeError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
