//! Deterministic fault injection for robustness tests.
//!
//! A [`FaultPlan`] pins faults to exact `(increment, step)` coordinates —
//! either hand-placed or drawn from a seed — and [`FaultInjector`] wraps
//! any [`Method`] to fire them: poisoning the loss/parameters with NaN or
//! corrupting the input batch. Checkpoint-file faults (truncation, bit
//! flips) are applied directly to files via [`truncate_file`] /
//! [`flip_byte`]. Everything is deterministic so a failing test replays
//! exactly.

use std::path::Path;

use edsr_data::{Augmenter, Dataset};
use edsr_nn::{Optimizer, Workspace};
use edsr_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::model::ContinualModel;
use crate::trainer::Method;

/// One planned fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Poison the model (one parameter entry → NaN) and report a NaN
    /// loss at step `step` of increment `task` — the shape of a genuine
    /// numeric blow-up: recovery must roll the weights back.
    NanLoss {
        /// Increment index.
        task: usize,
        /// Step index within the increment (counted across epochs).
        step: usize,
    },
    /// Replace the input batch with NaNs at step `step` of increment
    /// `task` — a bad data read: the forward pass yields a non-finite
    /// loss, `apply_step` must refuse to apply the gradients.
    CorruptBatch {
        /// Increment index.
        task: usize,
        /// Step index within the increment (counted across epochs).
        step: usize,
    },
}

impl Fault {
    fn coordinates(&self) -> (usize, usize) {
        match *self {
            Fault::NanLoss { task, step } | Fault::CorruptBatch { task, step } => (task, step),
        }
    }
}

/// A deterministic set of faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// The planned faults.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// A single NaN-loss fault.
    pub fn nan_loss_at(task: usize, step: usize) -> Self {
        Self {
            faults: vec![Fault::NanLoss { task, step }],
        }
    }

    /// A single corrupt-batch fault.
    pub fn corrupt_batch_at(task: usize, step: usize) -> Self {
        Self {
            faults: vec![Fault::CorruptBatch { task, step }],
        }
    }

    /// Draws `count` faults uniformly over `tasks × steps_per_task`
    /// coordinates, alternating fault kinds — same seed, same plan.
    pub fn seeded(seed: u64, tasks: usize, steps_per_task: usize, count: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let faults = (0..count)
            .map(|i| {
                let task = rng.random_range(0..tasks.max(1));
                let step = rng.random_range(0..steps_per_task.max(1));
                if i % 2 == 0 {
                    Fault::NanLoss { task, step }
                } else {
                    Fault::CorruptBatch { task, step }
                }
            })
            .collect();
        Self { faults }
    }

    fn find(&self, task: usize, step: usize) -> Option<Fault> {
        self.faults
            .iter()
            .copied()
            .find(|f| f.coordinates() == (task, step))
    }
}

/// Truncates `path` to its first `keep` bytes (simulates a write cut
/// short by a crash).
pub fn truncate_file(path: impl AsRef<Path>, keep: usize) -> std::io::Result<()> {
    let bytes = std::fs::read(&path)?;
    let keep = keep.min(bytes.len());
    std::fs::write(&path, &bytes[..keep])
}

/// XORs one byte of `path` with `mask` (simulates bit rot).
pub fn flip_byte(path: impl AsRef<Path>, offset: usize, mask: u8) -> std::io::Result<()> {
    let mut bytes = std::fs::read(&path)?;
    if let Some(b) = bytes.get_mut(offset) {
        *b ^= mask;
    }
    std::fs::write(&path, &bytes)
}

/// Wraps a method and fires the plan's faults at their coordinates.
pub struct FaultInjector<M> {
    inner: M,
    plan: FaultPlan,
    current_task: usize,
    step_in_task: usize,
    injected: usize,
}

impl<M: Method> FaultInjector<M> {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: M, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            current_task: 0,
            step_in_task: 0,
            injected: 0,
        }
    }

    /// Faults actually fired so far (tests assert the plan executed).
    pub fn injected(&self) -> usize {
        self.injected
    }

    /// The wrapped method.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Method> Method for FaultInjector<M> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn begin_task(
        &mut self,
        model: &mut ContinualModel,
        task_idx: usize,
        train: &Dataset,
        rng: &mut StdRng,
    ) {
        self.current_task = task_idx;
        self.step_in_task = 0;
        self.inner.begin_task(model, task_idx, train, rng);
    }

    fn train_step(
        &mut self,
        model: &mut ContinualModel,
        opt: &mut dyn Optimizer,
        augs: &[Augmenter],
        batch: &Matrix,
        task_idx: usize,
        ws: &mut Workspace,
        rng: &mut StdRng,
    ) -> f32 {
        let step = self.step_in_task;
        self.step_in_task += 1;
        match self.plan.find(task_idx, step) {
            Some(Fault::NanLoss { .. }) => {
                self.injected += 1;
                // Poison a real weight so recovery has something to undo.
                if let Some(id) = model.params.ids().next() {
                    model.params.value_mut(id).set(0, 0, f32::NAN);
                }
                f32::NAN
            }
            Some(Fault::CorruptBatch { .. }) => {
                self.injected += 1;
                let poisoned = Matrix::filled(batch.rows(), batch.cols(), f32::NAN);
                self.inner
                    .train_step(model, opt, augs, &poisoned, task_idx, ws, rng)
            }
            None => self
                .inner
                .train_step(model, opt, augs, batch, task_idx, ws, rng),
        }
    }

    fn end_task(
        &mut self,
        model: &mut ContinualModel,
        task_idx: usize,
        train: &Dataset,
        aug: &Augmenter,
        rng: &mut StdRng,
    ) {
        self.inner.end_task(model, task_idx, train, aug, rng);
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        self.inner.save_state()
    }

    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        self.inner.load_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(5, 4, 100, 6);
        let b = FaultPlan::seeded(5, 4, 100, 6);
        assert_eq!(a.faults, b.faults);
        let c = FaultPlan::seeded(6, 4, 100, 6);
        assert_ne!(a.faults, c.faults, "different seeds should differ");
        assert!(a.faults.iter().all(|f| {
            let (t, s) = f.coordinates();
            t < 4 && s < 100
        }));
    }

    #[test]
    fn file_faults_modify_bytes() {
        let path = std::env::temp_dir().join(format!("edsr-fault-{}", std::process::id()));
        std::fs::write(&path, [1u8, 2, 3, 4, 5]).expect("write");
        truncate_file(&path, 3).expect("truncate");
        assert_eq!(std::fs::read(&path).expect("read"), vec![1, 2, 3]);
        flip_byte(&path, 1, 0xFF).expect("flip");
        assert_eq!(std::fs::read(&path).expect("read"), vec![1, 0xFD, 3]);
        let _ = std::fs::remove_file(&path);
    }
}
