//! Unit tests for the trainer module (config plumbing, evaluation rows,
//! sequence mechanics) on deliberately tiny workloads.

#![cfg(test)]

use edsr_data::{Augmenter, Dataset, GridSpec, Task, TaskSequence};
use edsr_nn::Optimizer;
use edsr_tensor::rng::seeded;
use edsr_tensor::Matrix;
use rand::rngs::StdRng;

use crate::methods::Finetune;
use crate::model::{ContinualModel, ModelConfig};
use crate::trainer::{
    evaluate_row, run_multitask, tabular_augmenters, Method, Observer, OptimizerKind, RunBuilder,
    StepRecord, TrainConfig,
};

/// Two-increment toy stream with clearly clustered 8-d inputs.
fn toy_sequence(seed: u64) -> TaskSequence {
    let mut rng = seeded(seed);
    let mut make_task = |offset: f32| {
        let mut inputs = Matrix::randn(24, 8, 0.2, &mut rng);
        let mut labels = Vec::new();
        for r in 0..24 {
            let class = r % 2;
            labels.push(class);
            inputs.add_at(r, class, offset + 2.0);
        }
        let data = Dataset::new("toy", inputs, labels);
        Task {
            train: data.clone(),
            test: data.subset(&(0..8).collect::<Vec<_>>()),
            classes: vec![0, 1],
        }
    };
    TaskSequence {
        name: "toy".into(),
        tasks: vec![make_task(0.0), make_task(1.0)],
    }
}

fn toy_augmenters(n: usize) -> Vec<Augmenter> {
    (0..n).map(|_| Augmenter::Identity).collect()
}

fn tiny_cfg() -> TrainConfig {
    TrainConfig {
        epochs_per_task: 2,
        batch_size: 8,
        replay_batch: 4,
        lr: 1e-3,
        momentum: 0.9,
        weight_decay: 0.0,
        optimizer: OptimizerKind::Adam,
        eval_k: 3,
        multitask_epoch_multiplier: 1,
        cosine_floor: 1.0,
    }
}

#[test]
fn cosine_floor_schedules_lr_without_breaking_training() {
    let seq = toy_sequence(20);
    let augs = toy_augmenters(seq.len());
    let mut model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(21));
    let mut method = Finetune::new();
    let mut cfg = tiny_cfg();
    cfg.epochs_per_task = 4;
    cfg.cosine_floor = 0.05;
    let mut rng = seeded(22);
    let result = RunBuilder::new(&cfg)
        .run(&mut method, &mut model, &mut &seq, &augs, &mut rng)
        .expect("run");
    assert_eq!(result.matrix.num_increments(), 2);
    assert!(result.task_losses.iter().all(|l| l.is_finite()));
}

#[test]
fn optimizer_kind_builds_requested_optimizer() {
    let mut cfg = tiny_cfg();
    cfg.optimizer = OptimizerKind::Sgd;
    assert!((cfg.build_optimizer().lr() - cfg.lr).abs() < 1e-9);
    cfg.optimizer = OptimizerKind::Adam;
    assert!((cfg.build_optimizer().lr() - cfg.lr).abs() < 1e-9);
}

#[test]
fn evaluate_row_length_matches_upto() {
    let seq = toy_sequence(1);
    let model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(2));
    let row0 = evaluate_row(&model, &mut &seq, 0, 3).expect("eval row 0");
    assert_eq!(row0.len(), 1);
    let row1 = evaluate_row(&model, &mut &seq, 1, 3).expect("eval row 1");
    assert_eq!(row1.len(), 2);
    assert!(row1.iter().all(|a| (0.0..=1.0).contains(a)));
}

#[test]
fn run_sequence_fills_matrix_times_and_losses() {
    let seq = toy_sequence(3);
    let augs = toy_augmenters(seq.len());
    let mut model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(4));
    let mut method = Finetune::new();
    let cfg = tiny_cfg();
    let mut rng = seeded(5);
    let result = RunBuilder::new(&cfg)
        .run(&mut method, &mut model, &mut &seq, &augs, &mut rng)
        .expect("run");
    assert_eq!(result.matrix.num_increments(), 2);
    assert_eq!(result.task_seconds.len(), 2);
    assert_eq!(result.task_losses.len(), 2);
    assert!(result.task_seconds.iter().all(|&t| t >= 0.0));
    assert_eq!(result.benchmark, "toy");
}

#[test]
fn run_sequence_rejects_wrong_augmenter_count() {
    let seq = toy_sequence(6);
    let augs = toy_augmenters(1);
    let mut model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(7));
    let mut method = Finetune::new();
    let cfg = tiny_cfg();
    let mut rng = seeded(8);
    let err = RunBuilder::new(&cfg)
        .run(&mut method, &mut model, &mut &seq, &augs, &mut rng)
        .unwrap_err();
    assert!(
        matches!(err, crate::error::TrainError::InvalidConfig(_)),
        "{err}"
    );
    assert!(err.to_string().contains("one per task"), "{err}");
}

#[test]
fn run_multitask_reports_all_tasks() {
    let seq = toy_sequence(9);
    let augs = toy_augmenters(seq.len());
    let mut model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(10));
    let cfg = tiny_cfg();
    let mut rng = seeded(11);
    let mt = run_multitask(&mut model, &mut &seq, &augs, &cfg, &mut rng).expect("multitask");
    assert_eq!(mt.per_task_acc.len(), 2);
    let mean = mt.per_task_acc.iter().sum::<f32>() / 2.0;
    assert!((mt.acc - mean).abs() < 1e-6);
}

#[test]
fn tabular_augmenters_reference_each_increment() {
    let seq = toy_sequence(12);
    let augs = tabular_augmenters(&mut &seq, 0.5).expect("tabular augmenters");
    assert_eq!(augs.len(), seq.len());
    for (aug, task) in augs.iter().zip(&seq.tasks) {
        match aug {
            Augmenter::TabularCrop {
                reference,
                corruption_prob,
            } => {
                assert_eq!(reference.rows(), task.train.len());
                assert_eq!(*corruption_prob, 0.5);
            }
            other => panic!("expected TabularCrop, got {other:?}"),
        }
    }
}

/// Method hooks fire in the documented order with the right task ids.
#[test]
fn method_lifecycle_hooks_fire_in_order() {
    #[derive(Default)]
    struct Spy {
        events: Vec<String>,
    }
    impl Method for Spy {
        fn name(&self) -> String {
            "Spy".into()
        }
        fn begin_task(&mut self, _m: &mut ContinualModel, t: usize, _d: &Dataset, _r: &mut StdRng) {
            self.events.push(format!("begin{t}"));
        }
        fn train_step(
            &mut self,
            model: &mut ContinualModel,
            opt: &mut dyn Optimizer,
            augs: &[Augmenter],
            batch: &Matrix,
            task_idx: usize,
            ws: &mut edsr_nn::Workspace,
            rng: &mut StdRng,
        ) -> f32 {
            self.events.push(format!("step{task_idx}"));
            // Delegate to keep the model training for real.
            Finetune::new().train_step(model, opt, augs, batch, task_idx, ws, rng)
        }
        fn end_task(
            &mut self,
            _m: &mut ContinualModel,
            t: usize,
            _d: &Dataset,
            _a: &Augmenter,
            _r: &mut StdRng,
        ) {
            self.events.push(format!("end{t}"));
        }
    }

    let seq = toy_sequence(13);
    let augs = toy_augmenters(seq.len());
    let mut model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(14));
    let mut spy = Spy::default();
    let mut cfg = tiny_cfg();
    cfg.epochs_per_task = 1;
    let mut rng = seeded(15);
    RunBuilder::new(&cfg)
        .run(&mut spy, &mut model, &mut &seq, &augs, &mut rng)
        .expect("run");

    assert_eq!(spy.events.first().map(String::as_str), Some("begin0"));
    let end0 = spy
        .events
        .iter()
        .position(|e| e == "end0")
        .expect("end0 fired");
    let begin1 = spy
        .events
        .iter()
        .position(|e| e == "begin1")
        .expect("begin1 fired");
    assert!(end0 < begin1, "task 1 began before task 0 ended");
    assert_eq!(spy.events.last().map(String::as_str), Some("end1"));
    assert!(spy.events.iter().filter(|e| e.starts_with("step0")).count() >= 1);
}

/// Observer hooks fire in run order with consistent payloads: one
/// run_start, per-task start/select/eval/end, per-step records with
/// in-range indices, and a final run_end carrying the result.
#[test]
fn observer_hooks_fire_in_order_with_consistent_payloads() {
    #[derive(Default)]
    struct Recorder {
        events: Vec<String>,
        steps: Vec<StepRecord>,
    }
    impl Observer for Recorder {
        fn on_run_start(&mut self, method: &str, benchmark: &str, tasks: usize, start: usize) {
            self.events
                .push(format!("run_start {method} {benchmark} {tasks} {start}"));
        }
        fn on_task_start(&mut self, task_idx: usize) {
            self.events.push(format!("task_start {task_idx}"));
        }
        fn on_epoch_start(&mut self, task_idx: usize, epoch: usize, lr: f32) {
            assert!(lr > 0.0);
            self.events.push(format!("epoch {task_idx} {epoch}"));
        }
        fn on_step(&mut self, record: &StepRecord) {
            self.steps.push(*record);
        }
        fn on_select(&mut self, task_idx: usize, seconds: f64) {
            assert!(seconds >= 0.0);
            self.events.push(format!("select {task_idx}"));
        }
        fn on_eval(&mut self, task_idx: usize, row: &[f32]) {
            assert_eq!(row.len(), task_idx + 1);
            self.events.push(format!("eval {task_idx}"));
        }
        fn on_task_end(&mut self, task_idx: usize, seconds: f64, mean_loss: f32) {
            assert!(seconds >= 0.0 && mean_loss.is_finite());
            self.events.push(format!("task_end {task_idx}"));
        }
        fn on_run_end(&mut self, result: &crate::trainer::RunResult) {
            self.events
                .push(format!("run_end {}", result.matrix.num_increments()));
        }
    }

    let seq = toy_sequence(30);
    let augs = toy_augmenters(seq.len());
    let mut model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(31));
    let mut method = Finetune::new();
    let cfg = tiny_cfg();
    let mut rng = seeded(32);
    let mut rec = Recorder::default();
    RunBuilder::new(&cfg)
        .observer(&mut rec)
        .run(&mut method, &mut model, &mut &seq, &augs, &mut rng)
        .expect("observed run");

    assert_eq!(
        rec.events.first().map(String::as_str),
        Some("run_start Finetune toy 2 0")
    );
    assert_eq!(rec.events.last().map(String::as_str), Some("run_end 2"));
    for t in 0..2 {
        let start = rec
            .events
            .iter()
            .position(|e| *e == format!("task_start {t}"));
        let select = rec.events.iter().position(|e| *e == format!("select {t}"));
        let eval = rec.events.iter().position(|e| *e == format!("eval {t}"));
        let end = rec
            .events
            .iter()
            .position(|e| *e == format!("task_end {t}"));
        assert!(
            start < select && select < eval && eval < end,
            "task {t} lifecycle out of order: {:?}",
            rec.events
        );
    }
    assert!(!rec.steps.is_empty());
    assert!(rec.steps.iter().all(|s| s.task < 2 && s.loss.is_finite()));
}

/// The deprecated free functions are one-line shims: same result as the
/// builder for identical seeds.
#[test]
#[allow(deprecated)]
fn deprecated_run_sequence_matches_builder() {
    let seq = toy_sequence(33);
    let augs = toy_augmenters(seq.len());
    let cfg = tiny_cfg();

    let mut model_a = ContinualModel::new(&ModelConfig::image(8), &mut seeded(34));
    let mut method_a = Finetune::new();
    let mut rng_a = seeded(35);
    let via_shim =
        crate::trainer::run_sequence(&mut method_a, &mut model_a, &seq, &augs, &cfg, &mut rng_a)
            .expect("shim run");

    let mut model_b = ContinualModel::new(&ModelConfig::image(8), &mut seeded(34));
    let mut method_b = Finetune::new();
    let mut rng_b = seeded(35);
    let via_builder = RunBuilder::new(&cfg)
        .run(&mut method_b, &mut model_b, &mut &seq, &augs, &mut rng_b)
        .expect("builder run");

    assert_eq!(via_shim.matrix.rows(), via_builder.matrix.rows());
    assert_eq!(via_shim.task_losses, via_builder.task_losses);
}

/// GridSpec sanity for the toy dims used above (regression guard for the
/// ModelConfig::image(8) shortcut).
#[test]
fn image_model_accepts_arbitrary_flat_dims() {
    let g = GridSpec::new(2, 2, 2);
    assert_eq!(g.dim(), 8);
    let model = ContinualModel::new(&ModelConfig::image(g.dim()), &mut seeded(16));
    let x = Matrix::zeros(3, 8);
    assert_eq!(model.represent(&x, 0).rows(), 3);
}
