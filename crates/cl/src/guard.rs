//! Divergence guard for the training loop.
//!
//! Unsupervised losses at simulation scale can blow up (bad LR, poisoned
//! batch, numeric edge case). [`StepGuard`] watches every step's loss,
//! keeps a known-good parameter snapshot at epoch boundaries, and on
//! divergence rolls the model back and backs the learning rate off — a
//! bounded number of times before surfacing [`TrainError::Diverged`].

use edsr_nn::{Optimizer, ParamSet};
use edsr_tensor::Matrix;

use crate::error::TrainError;

/// Tunables of the divergence guard.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// Recovery attempts per increment before giving up.
    pub max_retries: usize,
    /// LR multiplier applied on each recovery (0 < backoff < 1).
    pub lr_backoff: f32,
    /// A finite loss counts as exploded when its magnitude exceeds
    /// `explode_factor × (1 + |running mean|)`.
    pub explode_factor: f32,
    /// Recovery fails once backing off would push the LR below this.
    pub min_lr: f32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            max_retries: 4,
            lr_backoff: 0.5,
            explode_factor: 1e3,
            min_lr: 1e-8,
        }
    }
}

/// Epoch-granular rollback state.
///
/// Usage protocol (what `run_sequence` does):
/// 1. [`begin_task`](Self::begin_task) before an increment's first step;
/// 2. per step, check [`is_divergent`](Self::is_divergent) — healthy
///    losses go to [`observe`](Self::observe);
/// 3. on divergence, [`recover`](Self::recover) and re-run the epoch;
/// 4. after a clean epoch, [`commit`](Self::commit) the parameters.
///
/// Optimizer moments are *not* rolled back: gradients are only ever
/// applied when finite (see `apply_step`), so moments stay finite; stale
/// moments after a rollback wash out within a few steps at the reduced
/// LR.
pub struct StepGuard {
    cfg: GuardConfig,
    last_good: Vec<Matrix>,
    loss_mean: Option<f32>,
    retries: usize,
    lr_scale: f32,
}

impl StepGuard {
    /// Creates a guard whose first rollback target is `params` as-is.
    pub fn new(cfg: GuardConfig, params: &ParamSet) -> Self {
        Self {
            cfg,
            last_good: params.snapshot(),
            loss_mean: None,
            retries: 0,
            lr_scale: 1.0,
        }
    }

    /// Cumulative LR multiplier from recoveries (1.0 = never backed off).
    /// Schedulers must fold this into every LR they set, or an epoch
    /// boundary would silently undo the backoff.
    pub fn lr_scale(&self) -> f32 {
        self.lr_scale
    }

    /// Restores a persisted LR scale (run-state resume).
    pub fn set_lr_scale(&mut self, scale: f32) {
        self.lr_scale = if scale.is_finite() && scale > 0.0 {
            scale.min(1.0)
        } else {
            1.0
        };
    }

    /// Recovery attempts consumed in the current increment.
    pub fn retries(&self) -> usize {
        self.retries
    }

    /// Starts an increment: fresh rollback target, fresh retry budget.
    pub fn begin_task(&mut self, params: &ParamSet) {
        self.last_good = params.snapshot();
        self.loss_mean = None;
        self.retries = 0;
    }

    /// True when `loss` is non-finite or explosively larger than the
    /// running mean of healthy losses.
    pub fn is_divergent(&self, loss: f32) -> bool {
        if !loss.is_finite() {
            return true;
        }
        match self.loss_mean {
            Some(mean) => loss.abs() > self.cfg.explode_factor * (1.0 + mean.abs()),
            None => false,
        }
    }

    /// Feeds a healthy loss into the running mean.
    pub fn observe(&mut self, loss: f32) {
        self.loss_mean = Some(match self.loss_mean {
            Some(mean) => 0.9 * mean + 0.1 * loss,
            None => loss,
        });
    }

    /// Marks the current parameters as the rollback target (call at the
    /// end of every clean epoch).
    pub fn commit(&mut self, params: &ParamSet) {
        self.last_good = params.snapshot();
    }

    /// Rolls `params` back to the last good snapshot and backs the LR
    /// off; errors once the retry budget or the LR floor is exhausted.
    ///
    /// `method`, `task`, `epoch`, and `last_loss` only label the error.
    pub fn recover(
        &mut self,
        params: &mut ParamSet,
        opt: &mut dyn Optimizer,
        method: &str,
        task: usize,
        epoch: usize,
        last_loss: f32,
    ) -> Result<(), TrainError> {
        self.retries += 1;
        let new_lr = opt.lr() * self.cfg.lr_backoff;
        if self.retries > self.cfg.max_retries || new_lr < self.cfg.min_lr {
            return Err(TrainError::Diverged {
                method: method.to_string(),
                task,
                epoch,
                retries: self.retries - 1,
                last_loss,
                lr: opt.lr(),
            });
        }
        params.restore(&self.last_good);
        self.lr_scale *= self.cfg.lr_backoff;
        opt.set_lr(new_lr);
        self.loss_mean = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_nn::Sgd;
    use edsr_tensor::rng::seeded;

    fn small_params() -> ParamSet {
        let mut ps = ParamSet::new();
        let mut rng = seeded(900);
        ps.register("w", Matrix::randn(2, 2, 1.0, &mut rng));
        ps
    }

    #[test]
    fn nonfinite_losses_are_divergent() {
        let guard = StepGuard::new(GuardConfig::default(), &small_params());
        assert!(guard.is_divergent(f32::NAN));
        assert!(guard.is_divergent(f32::INFINITY));
        assert!(!guard.is_divergent(1.5));
    }

    #[test]
    fn explosion_relative_to_running_mean() {
        let mut guard = StepGuard::new(GuardConfig::default(), &small_params());
        // No history yet: any finite loss is accepted.
        assert!(!guard.is_divergent(1e9));
        guard.observe(1.0);
        assert!(guard.is_divergent(1e9));
        assert!(!guard.is_divergent(100.0));
    }

    #[test]
    fn recover_rolls_back_and_halves_lr() {
        let mut ps = small_params();
        let before = ps.snapshot();
        let mut guard = StepGuard::new(GuardConfig::default(), &ps);
        // Corrupt the live parameters, as a diverged step would.
        for id in ps.ids().collect::<Vec<_>>() {
            ps.value_mut(id).scale_inplace(f32::NAN);
        }
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        guard
            .recover(&mut ps, &mut opt, "t", 0, 0, f32::NAN)
            .expect("budget left");
        let id = ps.ids().next().expect("param");
        assert_eq!(
            ps.value(id).max_abs_diff(&before[0]),
            0.0,
            "rollback incomplete"
        );
        assert!((opt.lr() - 0.05).abs() < 1e-9);
        assert!((guard.lr_scale() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let ps = small_params();
        let cfg = GuardConfig {
            max_retries: 2,
            ..GuardConfig::default()
        };
        let mut guard = StepGuard::new(cfg, &ps);
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let mut ps = small_params();
        assert!(guard
            .recover(&mut ps, &mut opt, "t", 1, 0, f32::NAN)
            .is_ok());
        assert!(guard
            .recover(&mut ps, &mut opt, "t", 1, 0, f32::NAN)
            .is_ok());
        let err = guard
            .recover(&mut ps, &mut opt, "t", 1, 3, f32::NAN)
            .unwrap_err();
        match err {
            TrainError::Diverged {
                task,
                epoch,
                retries,
                ..
            } => {
                assert_eq!((task, epoch, retries), (1, 3, 2));
            }
            other => panic!("expected Diverged, got {other}"),
        }
    }

    #[test]
    fn lr_floor_stops_recovery() {
        let ps = small_params();
        let cfg = GuardConfig {
            max_retries: 100,
            min_lr: 1e-3,
            ..GuardConfig::default()
        };
        let mut guard = StepGuard::new(cfg, &ps);
        let mut opt = Sgd::new(2e-3, 0.0, 0.0);
        let mut ps = small_params();
        assert!(guard.recover(&mut ps, &mut opt, "t", 0, 0, 1e9).is_ok()); // 1e-3: at floor
        assert!(guard.recover(&mut ps, &mut opt, "t", 0, 0, 1e9).is_err()); // 5e-4: below
    }
}
