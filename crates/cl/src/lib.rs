//! # edsr-cl
//!
//! The continual-learning harness of the EDSR reproduction: the
//! [`ContinualModel`] (encoder + SSL head + distillation head), episodic
//! [`MemoryBuffer`], the kNN evaluation protocol and Acc/Fgt metrics
//! (paper Eq. 17–18), the sequence [`trainer`], and all baseline methods
//! of Table III (Finetune, SI, DER, LUMP, CaSSLe, Multitask).

pub mod checkpoint;
pub mod error;
pub mod eval;
pub mod fault;
pub mod guard;
pub mod memory;
pub mod methods;
pub mod metrics;
pub mod model;
pub mod trainer;

pub use checkpoint::{
    latest_valid_run_state, latest_valid_serve_snapshot, list_serve_snapshots,
    load_any_serve_snapshot, load_run_state, memory_representations, quantize_serve_snapshot,
    save_quant_serve_snapshot, save_run_state, save_serve_snapshot, serve_snapshot_path,
    AnyServeSnapshot, CheckpointConfig, RunState, ServeSnapshot, UnreadableSnapshot,
    SERVE_SNAPSHOT_MAGIC,
};
pub use error::TrainError;
pub use eval::{accuracy, knn_classify};
pub use fault::{Fault, FaultInjector, FaultPlan};
pub use guard::{GuardConfig, StepGuard};
pub use memory::{MemoryBatch, MemoryBuffer, MemoryItem};
pub use methods::{Cassle, Der, Finetune, LinReplay, Lump, Si};
pub use metrics::{mean_std, AccuracyMatrix};
pub use model::{ContinualModel, FrozenModel, ModelConfig};
pub use trainer::{
    apply_step, compute_step_grads, epoch_base_lr, evaluate_cell, evaluate_row, image_augmenters,
    run_multitask, tabular_augmenters, GradCapture, Method, MultitaskResult, NoopObserver,
    Observer, OptimizerKind, RunBuilder, RunOptions, RunResult, StepRecord, TrainConfig,
};
#[allow(deprecated)] // legacy entry points stay reachable during migration
pub use trainer::{
    evaluate_cell_seq, evaluate_row_seq, run_multitask_seq, run_sequence, run_sequence_with,
    tabular_augmenters_seq,
};

#[cfg(test)]
mod fault_tests;
#[cfg(test)]
mod trainer_tests;
