//! # edsr-cl
//!
//! The continual-learning harness of the EDSR reproduction: the
//! [`ContinualModel`] (encoder + SSL head + distillation head), episodic
//! [`MemoryBuffer`], the kNN evaluation protocol and Acc/Fgt metrics
//! (paper Eq. 17–18), the sequence [`trainer`], and all baseline methods
//! of Table III (Finetune, SI, DER, LUMP, CaSSLe, Multitask).

pub mod eval;
pub mod memory;
pub mod methods;
pub mod metrics;
pub mod model;
pub mod trainer;

pub use eval::{accuracy, knn_classify};
pub use memory::{MemoryBatch, MemoryBuffer, MemoryItem};
pub use methods::{Cassle, Der, Finetune, LinReplay, Lump, Si};
pub use metrics::{mean_std, AccuracyMatrix};
pub use model::{ContinualModel, FrozenModel, ModelConfig};
pub use trainer::{
    apply_step, evaluate_row, image_augmenters, run_multitask, run_sequence,
    tabular_augmenters, Method, MultitaskResult, OptimizerKind, RunResult, TrainConfig,
};

#[cfg(test)]
mod trainer_tests;
